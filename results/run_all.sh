#!/bin/bash
# Sequential experiment schedule sized for a single-CPU budget box.
# Full 900 s runs where affordable, 600 s elsewhere; trials reduced from
# the paper's 10 (recorded in EXPERIMENTS.md).
set -x
cd /root/repo
B="cargo run --release -q -p ldr-bench --bin"
$B fig2 -- --full --trials 3                                      > results/fig2.txt 2> results/fig2.log
$B fig7 -- --full --trials 3 --duration 600                       > results/fig7.txt 2> results/fig7.log
$B table1 -- --full --trials 2 --duration 600 --pauses 0,120,600  > results/table1.txt 2> results/table1.log
$B fig3 -- --full --trials 2 --duration 600 --pauses 0,120,600,900 > results/fig3.txt 2> results/fig3.log
$B fig4 -- --full --trials 3 --duration 600                       > results/fig4.txt 2> results/fig4.log
$B fig5 -- --full --trials 2 --duration 600 --pauses 0,120,600,900 > results/fig5.txt 2> results/fig5.log
$B fig6 -- --full --trials 2 --duration 600 --pauses 0,120,600,900 > results/fig6.txt 2> results/fig6.log
$B ablation -- --full --trials 3 --duration 900 --pauses 0,120,600 > results/ablation.txt 2> results/ablation.log
echo DONE > results/ALL_DONE
