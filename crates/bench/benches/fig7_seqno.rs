//! `cargo bench` guard for **Fig. 7** (mean destination sequence
//! number): a scaled-down LDR-vs-AODV run that asserts the headline
//! property — AODV's numbers grow well past LDR's — while measuring
//! simulation cost. Paper-scale series come from the `fig7` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldr_bench::scenario::{Protocol, Scenario, SimFlavor};
use std::hint::black_box;
use std::time::Duration;

fn scenario(seed: u64) -> Scenario {
    Scenario {
        n_nodes: 20,
        terrain: (900.0, 300.0),
        n_flows: 6,
        pause_secs: 0, // maximum mobility: maximum breaks
        duration_secs: 60,
        trials: 1,
        seed_base: seed,
        flavor: SimFlavor::Default,
        audit: false,
        spatial_grid: true,
        workers: 1,
        recycle_pools: true,
        profile: false,
    }
}

fn bench_seqno_growth(c: &mut Criterion) {
    // One-time shape check, so a regression in either protocol's
    // sequence-number behaviour fails the bench run loudly.
    let ldr = ldr_bench::run_once(Protocol::Ldr, &scenario(3), 3).mean_own_seqno;
    let aodv = ldr_bench::run_once(Protocol::Aodv, &scenario(3), 3).mean_own_seqno;
    assert!(aodv > ldr, "AODV sequence numbers ({aodv:.1}) must outgrow LDR's ({ldr:.1})");

    let mut g = c.benchmark_group("fig7_seqno_scaled");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for proto in [Protocol::Ldr, Protocol::Aodv] {
        g.bench_with_input(BenchmarkId::from_parameter(proto.name()), &proto, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let m = ldr_bench::run_once(p, &scenario(seed), seed);
                black_box(m.mean_own_seqno)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seqno_growth);
criterion_main!(benches);
