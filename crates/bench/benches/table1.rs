//! `cargo bench` guard for **Table 1**: runs a scaled-down version of
//! the Table-1 pipeline (all four protocols, one pause time, reduced
//! node count and duration) and reports wall time per full simulation.
//! The paper-scale numbers are produced by `cargo run --release -p
//! ldr-bench --bin table1 -- --full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldr_bench::scenario::{Protocol, Scenario, SimFlavor};
use std::hint::black_box;
use std::time::Duration;

fn scaled_scenario(seed: u64) -> Scenario {
    Scenario {
        n_nodes: 20,
        terrain: (900.0, 300.0),
        n_flows: 4,
        pause_secs: 60,
        duration_secs: 30,
        trials: 1,
        seed_base: seed,
        flavor: SimFlavor::Default,
        audit: false,
        spatial_grid: true,
        workers: 1,
        recycle_pools: true,
        profile: false,
    }
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_scaled");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for proto in Protocol::PAPER_SET {
        g.bench_with_input(BenchmarkId::from_parameter(proto.name()), &proto, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let m = ldr_bench::run_once(p, &scaled_scenario(seed), seed);
                black_box(m.data_delivered)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
