//! Micro-benchmarks of the hot paths: the loop-freedom conditions, the
//! routing table (Procedure 3), message codecs, the event queue and the
//! RNG. These bound the per-event cost of the simulator and the
//! per-packet cost of an LDR node.

use criterion::{criterion_group, criterion_main, Criterion};
use ldr::invariants::{fdc_violated, ndc_accepts, sdc_allows, strengthen, Invariants, Solicited};
use ldr::messages::{Rrep, Rreq};
use ldr::route_table::RouteTable;
use ldr::seqno::SeqNo;
use manet_sim::event::{Event, EventQueue};
use manet_sim::packet::NodeId;
use manet_sim::rng::SimRng;
use manet_sim::time::SimTime;
use std::hint::black_box;

fn sn(c: u32) -> SeqNo {
    SeqNo { epoch: 1, counter: c }
}

fn bench_invariants(c: &mut Criterion) {
    let mine = Invariants { sn: Some(sn(5)), d: 4, fd: 3 };
    let sol = Solicited { sn: Some(sn(5)), fd: 4, rr: false };
    c.bench_function("invariants/ndc", |b| {
        b.iter(|| ndc_accepts(black_box(mine), black_box(sn(5)), black_box(2)))
    });
    c.bench_function("invariants/fdc", |b| {
        b.iter(|| fdc_violated(black_box(mine), black_box(sol)))
    });
    c.bench_function("invariants/sdc", |b| b.iter(|| sdc_allows(black_box(mine), black_box(sol))));
    c.bench_function("invariants/strengthen", |b| {
        b.iter(|| strengthen(black_box(mine), black_box(sol)))
    });
}

fn bench_route_table(c: &mut Criterion) {
    c.bench_function("route_table/advertise_100_dests", |b| {
        b.iter(|| {
            let mut rt = RouteTable::new();
            let now = SimTime::from_secs(1);
            let exp = SimTime::from_secs(10);
            for i in 0..100u16 {
                rt.consider_advertisement(
                    NodeId(i),
                    sn(u32::from(i % 4)),
                    u32::from(i % 7),
                    NodeId(i % 10),
                    now,
                    exp,
                );
            }
            black_box(rt.len())
        })
    });
    let mut rt = RouteTable::new();
    for i in 0..100u16 {
        rt.consider_advertisement(
            NodeId(i),
            sn(1),
            2,
            NodeId(i % 10),
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        );
    }
    c.bench_function("route_table/successor_snapshot", |b| {
        b.iter(|| black_box(rt.successors(SimTime::from_secs(2))))
    });
}

fn bench_messages(c: &mut Criterion) {
    let rreq = Rreq {
        dst: NodeId(7),
        sn_dst: Some(sn(9)),
        rreqid: 42,
        src: NodeId(3),
        sn_src: sn(4),
        fd: 5,
        dist: 2,
        ttl: 7,
        t_bit: true,
        n_bit: false,
        d_bit: false,
    };
    let bytes = rreq.encode();
    c.bench_function("messages/rreq_encode", |b| b.iter(|| black_box(rreq.encode())));
    c.bench_function("messages/rreq_decode", |b| b.iter(|| black_box(Rreq::decode(&bytes))));
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(9),
        src: NodeId(3),
        rreqid: 42,
        dist: 2,
        lifetime_ms: 3000,
        n_bit: false,
    };
    c.bench_function("messages/rrep_encode", |b| b.iter(|| black_box(rrep.encode())));
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1000", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::from_seed(1);
            for _ in 0..1000 {
                q.schedule(
                    SimTime::from_nanos(rng.below(1_000_000_000)),
                    Event::MacKick(NodeId(0)),
                );
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = SimRng::from_seed(7);
    c.bench_function("rng/next_u64", |b| b.iter(|| black_box(rng.next_u64())));
    c.bench_function("rng/exponential", |b| b.iter(|| black_box(rng.exponential(100.0))));
}

/// End-to-end LDR runs with the trace layer off versus on. With no
/// sink attached the `Ctx::trace` closures are never evaluated, so the
/// disabled run bounds the layer's cost at zero-sink configurations.
fn bench_trace_overhead(c: &mut Criterion) {
    use ldr::{Ldr, LdrConfig};
    use manet_sim::config::SimConfig;
    use manet_sim::mobility::StaticMobility;
    use manet_sim::time::SimDuration;
    use manet_sim::trace::MemoryTrace;
    use manet_sim::world::World;

    fn build() -> World {
        let cfg =
            SimConfig { duration: SimDuration::from_secs(10), seed: 21, ..SimConfig::default() };
        let mut factory = Ldr::factory(LdrConfig::default());
        let mut w =
            World::new(cfg, Box::new(StaticMobility::line(6, 200.0)), |id, n| factory(id, n));
        for i in 0..20u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 200), NodeId(0), NodeId(5), 512);
        }
        w
    }

    c.bench_function("trace/run_disabled", |b| {
        b.iter(|| {
            let w = build();
            black_box(w.run().data_delivered)
        })
    });
    c.bench_function("trace/run_memory_sink", |b| {
        b.iter(|| {
            let mut w = build();
            w.set_trace(Box::new(MemoryTrace::new()));
            black_box(w.run().data_delivered)
        })
    });
}

criterion_group!(
    benches,
    bench_invariants,
    bench_route_table,
    bench_messages,
    bench_event_queue,
    bench_rng,
    bench_trace_overhead
);
criterion_main!(benches);
