//! `cargo bench` guard for **Figs. 2–6** (delivery ratio vs pause
//! time): scaled-down sweeps over two pause extremes per protocol,
//! asserting the runs complete and reporting simulation throughput.
//! Paper-scale series come from the `fig2`–`fig6` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldr_bench::scenario::{Protocol, Scenario, SimFlavor};
use std::hint::black_box;
use std::time::Duration;

fn scenario(pause: u64, seed: u64) -> Scenario {
    Scenario {
        n_nodes: 20,
        terrain: (900.0, 300.0),
        n_flows: 6,
        pause_secs: pause,
        duration_secs: 30,
        trials: 1,
        seed_base: seed,
        flavor: SimFlavor::Default,
        audit: false,
        spatial_grid: true,
        workers: 1,
        recycle_pools: true,
        profile: false,
    }
}

fn bench_delivery(c: &mut Criterion) {
    let mut g = c.benchmark_group("delivery_vs_pause_scaled");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for proto in Protocol::PAPER_SET {
        for pause in [0u64, 120] {
            let id = format!("{}/pause{}", proto.name(), pause);
            g.bench_with_input(BenchmarkId::from_parameter(id), &(proto, pause), |b, &(p, pa)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let m = ldr_bench::run_once(p, &scenario(pa, seed), seed);
                    black_box(m.delivery_ratio())
                })
            });
        }
    }
    g.finish();
}

fn bench_fig6_alt_flavor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_alt_flavor_scaled");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("DSR-d7/alt", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sc = scenario(60, seed);
            sc.flavor = SimFlavor::Alt;
            let m = ldr_bench::run_once(Protocol::Dsr7, &sc, seed);
            black_box(m.delivery_ratio())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_delivery, bench_fig6_alt_flavor);
criterion_main!(benches);
