//! Ablation benchmark: LDR with each §4 optimisation disabled
//! individually, at reduced scale. The design-level question each arm
//! answers is recorded in DESIGN.md; paper-scale numbers come from the
//! `ablation` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldr_bench::scenario::{Ablation, Protocol, Scenario, SimFlavor};
use std::hint::black_box;
use std::time::Duration;

fn scenario(seed: u64) -> Scenario {
    Scenario {
        n_nodes: 20,
        terrain: (900.0, 300.0),
        n_flows: 5,
        pause_secs: 30,
        duration_secs: 40,
        trials: 1,
        seed_base: seed,
        flavor: SimFlavor::Default,
        audit: false,
        spatial_grid: true,
        workers: 1,
        recycle_pools: true,
        profile: false,
    }
}

fn bench_ablation(c: &mut Criterion) {
    let variants = [
        Protocol::Ldr,
        Protocol::LdrWithout(Ablation::MultipleRreps),
        Protocol::LdrWithout(Ablation::RequestAsError),
        Protocol::LdrWithout(Ablation::ReducedDistance),
        Protocol::LdrWithout(Ablation::MinimumLifetime),
        Protocol::LdrWithout(Ablation::OptimalTtl),
        Protocol::LdrNoOpts,
    ];
    let mut g = c.benchmark_group("ldr_ablation_scaled");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for proto in variants {
        g.bench_with_input(BenchmarkId::from_parameter(proto.name()), &proto, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let m = ldr_bench::run_once(p, &scenario(seed), seed);
                black_box((m.delivery_ratio(), m.rreq_tx()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
