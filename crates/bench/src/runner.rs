//! Executes scenarios: one deterministic run per `(protocol, scenario,
//! trial)`, with trials parallelised across the bounded
//! [work-stealing pool](crate::workpool) — never one OS thread per
//! trial, and never more than the host's cores even when each trial's
//! kernel itself runs multi-worker.

use crate::report::Summary;
use crate::scenario::{Protocol, Scenario};
use crate::workpool::{self, PoolStats};
use manet_sim::config::SimConfig;
use manet_sim::faults::{FaultIntensity, FaultPlan};
use manet_sim::metrics::Metrics;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::rng::SimRng;
use manet_sim::telemetry::TelemetryConfig;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

/// Runs one trial and returns its metrics. Fully deterministic in
/// `(protocol, scenario, seed)`.
pub fn run_once(protocol: Protocol, scenario: &Scenario, seed: u64) -> Metrics {
    run_once_faulted(protocol, scenario, seed, None)
}

/// Runs one trial under an optional deterministic fault schedule.
/// Fully deterministic in `(protocol, scenario, seed, plan)`.
pub fn run_once_faulted(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Metrics {
    build_world(protocol, scenario, seed, plan).run()
}

/// Builds the fully-configured (but not yet run) world for one trial —
/// shared by [`run_once_faulted`] and the perfbench timing loop (which
/// needs the world alive after the run to read
/// [`World::events_executed`]).
pub fn build_world(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
) -> World {
    build_world_telemetry(protocol, scenario, seed, plan, None)
}

/// Like [`build_world`], with the observation-pure telemetry layer
/// (flight recorder + time-series sampler) configured. Attaching a
/// trace sink is the caller's job ([`World::set_trace`]).
///
/// [`World::set_trace`]: manet_sim::world::World::set_trace
pub fn build_world_telemetry(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
    telemetry: Option<TelemetryConfig>,
) -> World {
    let cfg = SimConfig {
        phy: scenario.flavor.phy(),
        duration: SimDuration::from_secs(scenario.duration_secs),
        seed,
        audit_interval: scenario.audit.then(|| SimDuration::from_secs(1)),
        audit_every_event: false,
        invariant_audit: false,
        fault_plan: plan,
        spatial_grid: scenario.spatial_grid,
        telemetry,
        workers: scenario.workers,
        recycle_pools: scenario.recycle_pools,
        profile: scenario.profile,
    };
    let mobility = RandomWaypoint::new(
        scenario.n_nodes,
        scenario.terrain(),
        SimDuration::from_secs(scenario.pause_secs),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut factory = protocol.factory();
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(scenario.n_flows));
    world
}

/// The fault schedule trial `seed` runs at intensity `level`: random,
/// but a pure function of `(scenario, seed, level)`, and shared across
/// protocols so the comparison is apples-to-apples.
pub fn trial_fault_plan(scenario: &Scenario, seed: u64, level: u32) -> FaultPlan {
    let intensity = FaultIntensity::level(
        scenario.n_nodes as u16,
        SimDuration::from_secs(scenario.duration_secs),
        level,
    );
    FaultPlan::random(&mut SimRng::stream(seed, "faultbench-plan"), &intensity)
}

/// The seed trial `k` of a scenario runs at: `seed_base` advanced by
/// `k` with **wrapping** arithmetic. The pre-PR-9 `seed_base + k`
/// overflowed (a debug-build abort, and UB-adjacent silent wrap in
/// release) when `seed_base` sat near `u64::MAX`; wrapping is the
/// intended modular semantics, and distinct trials always get distinct
/// seeds because the offsets `0..trials` are distinct modulo 2⁶⁴.
pub fn trial_seed(seed_base: u64, k: u32) -> u64 {
    seed_base.wrapping_add(u64::from(k))
}

/// All trial seeds for a scenario, with an explicit collision check —
/// if a future seed-derivation change ever maps two trials to one
/// seed, the sweep must refuse to silently run duplicate cells.
pub fn trial_seeds(scenario: &Scenario) -> Vec<u64> {
    let seeds: Vec<u64> = (0..scenario.trials).map(|k| trial_seed(scenario.seed_base, k)).collect();
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    let before = sorted.len();
    sorted.dedup();
    assert_eq!(sorted.len(), before, "trial seed collision: seed_base={}", scenario.seed_base);
    seeds
}

/// Trial-pool width for a scenario: the host's cores divided by the
/// inner kernel workers each trial itself spawns, so the product never
/// oversubscribes the machine (the pre-PR-9 runner spawned
/// `trials × workers` threads with no cap at all).
pub fn pool_threads(scenario: &Scenario) -> usize {
    let cores = workpool::host_cores();
    let inner = scenario.workers.max(1);
    (cores / inner).clamp(1, cores)
}

/// Shared trial loop: derives the seeds, fans `run(k, seed)` out over
/// the bounded pool, folds successes into the summary, and records a
/// panicking trial as a [`crate::report::TrialFailure`] instead of
/// aborting the batch.
fn run_trials_core(
    protocol: Protocol,
    scenario: &Scenario,
    run: &(dyn Fn(u32, u64) -> Metrics + Sync),
) -> (Summary, PoolStats) {
    let seeds = trial_seeds(scenario);
    let jobs: Vec<_> =
        seeds.iter().enumerate().map(|(i, &seed)| move || run(i as u32, seed)).collect();
    let (results, stats) = workpool::run_jobs(pool_threads(scenario), jobs);
    let mut summary = Summary::new(protocol.name());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(m) => summary.add(&m),
            Err(panic_msg) => summary.record_failure(seeds[i], panic_msg),
        }
    }
    (summary, stats)
}

/// Runs all trials of a scenario at a fault-intensity level (across
/// the bounded worker pool) and aggregates them into a [`Summary`].
/// A panicking trial is recorded in [`Summary::failed`]; the remaining
/// trials still run.
pub fn run_fault_trials(protocol: Protocol, scenario: &Scenario, level: u32) -> Summary {
    run_trials_core(protocol, scenario, &|_k, seed| {
        let plan = trial_fault_plan(scenario, seed, level);
        run_once_faulted(protocol, scenario, seed, Some(plan))
    })
    .0
}

/// Runs all trials of a scenario (across the bounded worker pool) and
/// aggregates them into a [`Summary`]. A panicking trial is recorded
/// in [`Summary::failed`]; the remaining trials still run.
pub fn run_trials(protocol: Protocol, scenario: &Scenario) -> Summary {
    run_trials_core(protocol, scenario, &|_k, seed| run_once(protocol, scenario, seed)).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(protocol: Protocol) -> Metrics {
        let scenario = Scenario {
            n_nodes: 20,
            terrain: (800.0, 300.0),
            n_flows: 4,
            pause_secs: 30,
            duration_secs: 60,
            trials: 1,
            seed_base: 7,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        run_once(protocol, &scenario, 7)
    }

    #[test]
    fn every_protocol_delivers_in_a_small_mobile_network() {
        for p in Protocol::PAPER_SET {
            let m = tiny(p);
            assert!(m.data_originated > 100, "{}: no traffic originated", p.name());
            assert!(
                m.delivery_ratio() > 0.5,
                "{} delivered only {:.1}% ({} of {})",
                p.name(),
                m.delivery_ratio() * 100.0,
                m.data_delivered,
                m.data_originated
            );
        }
    }

    #[test]
    fn ldr_runs_loop_free() {
        let m = tiny(Protocol::Ldr);
        assert_eq!(m.loop_violations, 0, "LDR must be loop-free at every audit");
    }

    #[test]
    fn runs_are_deterministic() {
        let scenario = Scenario { duration_secs: 30, trials: 1, ..Scenario::n50(4, 0) };
        let a = run_once(Protocol::Ldr, &scenario, 3);
        let b = run_once(Protocol::Ldr, &scenario, 3);
        assert_eq!(a.data_delivered, b.data_delivered);
        assert_eq!(a.total_control_tx(), b.total_control_tx());
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn trials_aggregate_into_summary() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 3,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: false,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        let s = run_trials(Protocol::Aodv, &scenario);
        assert_eq!(s.trials(), 3);
        assert!(s.delivery.mean() > 0.0);
    }

    #[test]
    fn fault_level_zero_is_empty_and_matches_fault_free_trials() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 2,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        assert!(trial_fault_plan(&scenario, scenario.seed_base, 0).is_empty());
        let faulted = run_fault_trials(Protocol::Ldr, &scenario, 0);
        let plain = run_trials(Protocol::Ldr, &scenario);
        assert_eq!(faulted.faults_injected, 0);
        assert_eq!(faulted.node_restarts, 0);
        assert_eq!(faulted.delivery.mean(), plain.delivery.mean());
        assert_eq!(faulted.latency.mean(), plain.latency.mean());
        assert_eq!(faulted.loop_violations, plain.loop_violations);
    }

    #[test]
    fn fault_trials_are_deterministic_and_protocol_agnostic() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 2,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        // The per-trial plan depends only on (scenario, seed, level),
        // never the protocol, so every row faces the same schedule.
        let p1 = trial_fault_plan(&scenario, 107, 2);
        let p2 = trial_fault_plan(&scenario, 107, 2);
        assert!(!p1.is_empty());
        assert_eq!(p1.entries(), p2.entries());
        let a = run_fault_trials(Protocol::Aodv, &scenario, 2);
        let b = run_fault_trials(Protocol::Aodv, &scenario, 2);
        assert!(a.faults_injected > 0, "level 2 must actually inject faults");
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.node_restarts, b.node_restarts);
        assert_eq!(a.delivery.mean(), b.delivery.mean());
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn threaded_trials_equal_sequential_aggregation() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 3,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        let threaded = run_trials(Protocol::Ldr, &scenario);
        let mut sequential = Summary::new(Protocol::Ldr.name());
        for k in 0..scenario.trials {
            let m = run_once(Protocol::Ldr, &scenario, trial_seed(scenario.seed_base, k));
            sequential.add(&m);
        }
        assert_eq!(threaded.trials(), sequential.trials());
        assert!(threaded.failed.is_empty());
        assert_eq!(threaded.delivery.mean(), sequential.delivery.mean());
        assert_eq!(threaded.latency.mean(), sequential.latency.mean());
        assert_eq!(threaded.net_load.mean(), sequential.net_load.mean());
        assert_eq!(threaded.rreq_tx.mean(), sequential.rreq_tx.mean());
        assert_eq!(threaded.loop_violations, sequential.loop_violations);
    }

    #[test]
    fn seeds_near_u64_max_wrap_without_panicking_or_colliding() {
        // The pre-PR-9 derivation `seed_base + k` aborted here in
        // debug builds and silently wrapped in release. Wrapping is
        // now the contract, and the seeds must stay pairwise distinct
        // across the boundary.
        let scenario = Scenario { seed_base: u64::MAX - 1, trials: 4, ..Scenario::n50(4, 0) };
        let seeds = trial_seeds(&scenario);
        assert_eq!(seeds, vec![u64::MAX - 1, u64::MAX, 0, 1]);
        assert_eq!(trial_seed(u64::MAX, 1), 0);
    }

    #[test]
    fn a_panicking_trial_is_recorded_and_the_rest_survive() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 30,
            trials: 3,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: false,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        let (summary, _) = run_trials_core(Protocol::Ldr, &scenario, &|k, seed| {
            if k == 1 {
                panic!("injected fault in trial {k}");
            }
            run_once(Protocol::Ldr, &scenario, seed)
        });
        assert_eq!(summary.trials(), 2, "the two healthy trials must complete");
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].seed, trial_seed(scenario.seed_base, 1));
        assert!(summary.failed[0].panic_msg.contains("injected fault in trial 1"));
    }

    #[test]
    fn trial_pool_is_bounded_by_host_cores_not_trials_times_workers() {
        // workers = 4 inner kernel threads per trial: the pre-PR-9
        // runner would have run all trials at once (trials × workers
        // OS threads). The pool must instead divide the host's cores
        // by the inner width.
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 30,
            trials: 5,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: false,
            spatial_grid: true,
            workers: 4,
            recycle_pools: true,
            profile: false,
        };
        let cores = crate::workpool::host_cores();
        let cap = pool_threads(&scenario);
        assert!(cap <= cores, "pool cap must never exceed the host");
        assert!(
            cap * scenario.workers <= cores.max(scenario.workers),
            "trial-level × kernel-level threads would oversubscribe: {cap} × {}",
            scenario.workers
        );
        let (summary, stats) = run_trials_core(Protocol::Aodv, &scenario, &|_k, seed| {
            run_once(Protocol::Aodv, &scenario, seed)
        });
        assert_eq!(summary.trials(), 5);
        assert!(
            stats.peak_live_workers <= cap,
            "peak live trial threads {} exceeded the cap {cap}",
            stats.peak_live_workers
        );
    }
}
