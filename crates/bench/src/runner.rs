//! Executes scenarios: one deterministic run per `(protocol, scenario,
//! trial)`, with trials parallelised across threads.

use crate::report::Summary;
use crate::scenario::{Protocol, Scenario};
use manet_sim::config::SimConfig;
use manet_sim::faults::{FaultIntensity, FaultPlan};
use manet_sim::metrics::Metrics;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::rng::SimRng;
use manet_sim::telemetry::TelemetryConfig;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

/// Runs one trial and returns its metrics. Fully deterministic in
/// `(protocol, scenario, seed)`.
pub fn run_once(protocol: Protocol, scenario: &Scenario, seed: u64) -> Metrics {
    run_once_faulted(protocol, scenario, seed, None)
}

/// Runs one trial under an optional deterministic fault schedule.
/// Fully deterministic in `(protocol, scenario, seed, plan)`.
pub fn run_once_faulted(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Metrics {
    build_world(protocol, scenario, seed, plan).run()
}

/// Builds the fully-configured (but not yet run) world for one trial —
/// shared by [`run_once_faulted`] and the perfbench timing loop (which
/// needs the world alive after the run to read
/// [`World::events_executed`]).
pub fn build_world(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
) -> World {
    build_world_telemetry(protocol, scenario, seed, plan, None)
}

/// Like [`build_world`], with the observation-pure telemetry layer
/// (flight recorder + time-series sampler) configured. Attaching a
/// trace sink is the caller's job ([`World::set_trace`]).
///
/// [`World::set_trace`]: manet_sim::world::World::set_trace
pub fn build_world_telemetry(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
    telemetry: Option<TelemetryConfig>,
) -> World {
    let cfg = SimConfig {
        phy: scenario.flavor.phy(),
        duration: SimDuration::from_secs(scenario.duration_secs),
        seed,
        audit_interval: scenario.audit.then(|| SimDuration::from_secs(1)),
        audit_every_event: false,
        invariant_audit: false,
        fault_plan: plan,
        spatial_grid: scenario.spatial_grid,
        telemetry,
        workers: scenario.workers,
    };
    let mobility = RandomWaypoint::new(
        scenario.n_nodes,
        scenario.terrain(),
        SimDuration::from_secs(scenario.pause_secs),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut factory = protocol.factory();
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(scenario.n_flows));
    world
}

/// The fault schedule trial `seed` runs at intensity `level`: random,
/// but a pure function of `(scenario, seed, level)`, and shared across
/// protocols so the comparison is apples-to-apples.
pub fn trial_fault_plan(scenario: &Scenario, seed: u64, level: u32) -> FaultPlan {
    let intensity = FaultIntensity::level(
        scenario.n_nodes as u16,
        SimDuration::from_secs(scenario.duration_secs),
        level,
    );
    FaultPlan::random(&mut SimRng::stream(seed, "faultbench-plan"), &intensity)
}

/// Runs all trials of a scenario at a fault-intensity level (in
/// parallel threads) and aggregates them into a [`Summary`].
pub fn run_fault_trials(protocol: Protocol, scenario: &Scenario, level: u32) -> Summary {
    let results: Vec<Metrics> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..scenario.trials)
            .map(|k| {
                let sc = scenario.clone();
                scope.spawn(move || {
                    let seed = sc.seed_base + u64::from(k);
                    let plan = trial_fault_plan(&sc, seed, level);
                    run_once_faulted(protocol, &sc, seed, Some(plan))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("trial thread panicked")).collect()
    });
    let mut summary = Summary::new(protocol.name());
    for m in &results {
        summary.add(m);
    }
    summary
}

/// Runs all trials of a scenario (in parallel threads) and aggregates
/// them into a [`Summary`].
pub fn run_trials(protocol: Protocol, scenario: &Scenario) -> Summary {
    let results: Vec<Metrics> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..scenario.trials)
            .map(|k| {
                let sc = scenario.clone();
                scope.spawn(move || run_once(protocol, &sc, sc.seed_base + u64::from(k)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("trial thread panicked")).collect()
    });
    let mut summary = Summary::new(protocol.name());
    for m in &results {
        summary.add(m);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(protocol: Protocol) -> Metrics {
        let scenario = Scenario {
            n_nodes: 20,
            terrain: (800.0, 300.0),
            n_flows: 4,
            pause_secs: 30,
            duration_secs: 60,
            trials: 1,
            seed_base: 7,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
        };
        run_once(protocol, &scenario, 7)
    }

    #[test]
    fn every_protocol_delivers_in_a_small_mobile_network() {
        for p in Protocol::PAPER_SET {
            let m = tiny(p);
            assert!(m.data_originated > 100, "{}: no traffic originated", p.name());
            assert!(
                m.delivery_ratio() > 0.5,
                "{} delivered only {:.1}% ({} of {})",
                p.name(),
                m.delivery_ratio() * 100.0,
                m.data_delivered,
                m.data_originated
            );
        }
    }

    #[test]
    fn ldr_runs_loop_free() {
        let m = tiny(Protocol::Ldr);
        assert_eq!(m.loop_violations, 0, "LDR must be loop-free at every audit");
    }

    #[test]
    fn runs_are_deterministic() {
        let scenario = Scenario { duration_secs: 30, trials: 1, ..Scenario::n50(4, 0) };
        let a = run_once(Protocol::Ldr, &scenario, 3);
        let b = run_once(Protocol::Ldr, &scenario, 3);
        assert_eq!(a.data_delivered, b.data_delivered);
        assert_eq!(a.total_control_tx(), b.total_control_tx());
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn trials_aggregate_into_summary() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 3,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: false,
            spatial_grid: true,
            workers: 1,
        };
        let s = run_trials(Protocol::Aodv, &scenario);
        assert_eq!(s.trials(), 3);
        assert!(s.delivery.mean() > 0.0);
    }

    #[test]
    fn fault_level_zero_is_empty_and_matches_fault_free_trials() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 2,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
        };
        assert!(trial_fault_plan(&scenario, scenario.seed_base, 0).is_empty());
        let faulted = run_fault_trials(Protocol::Ldr, &scenario, 0);
        let plain = run_trials(Protocol::Ldr, &scenario);
        assert_eq!(faulted.faults_injected, 0);
        assert_eq!(faulted.node_restarts, 0);
        assert_eq!(faulted.delivery.mean(), plain.delivery.mean());
        assert_eq!(faulted.latency.mean(), plain.latency.mean());
        assert_eq!(faulted.loop_violations, plain.loop_violations);
    }

    #[test]
    fn fault_trials_are_deterministic_and_protocol_agnostic() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 2,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
        };
        // The per-trial plan depends only on (scenario, seed, level),
        // never the protocol, so every row faces the same schedule.
        let p1 = trial_fault_plan(&scenario, 107, 2);
        let p2 = trial_fault_plan(&scenario, 107, 2);
        assert!(!p1.is_empty());
        assert_eq!(p1.entries(), p2.entries());
        let a = run_fault_trials(Protocol::Aodv, &scenario, 2);
        let b = run_fault_trials(Protocol::Aodv, &scenario, 2);
        assert!(a.faults_injected > 0, "level 2 must actually inject faults");
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.node_restarts, b.node_restarts);
        assert_eq!(a.delivery.mean(), b.delivery.mean());
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn threaded_trials_equal_sequential_aggregation() {
        let scenario = Scenario {
            n_nodes: 15,
            terrain: (700.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 40,
            trials: 3,
            seed_base: 100,
            flavor: crate::scenario::SimFlavor::Default,
            audit: true,
            spatial_grid: true,
            workers: 1,
        };
        let threaded = run_trials(Protocol::Ldr, &scenario);
        let mut sequential = Summary::new(Protocol::Ldr.name());
        for k in 0..scenario.trials {
            let m = run_once(Protocol::Ldr, &scenario, scenario.seed_base + u64::from(k));
            sequential.add(&m);
        }
        assert_eq!(threaded.trials(), sequential.trials());
        assert_eq!(threaded.delivery.mean(), sequential.delivery.mean());
        assert_eq!(threaded.latency.mean(), sequential.latency.mean());
        assert_eq!(threaded.net_load.mean(), sequential.net_load.mean());
        assert_eq!(threaded.rreq_tx.mean(), sequential.rreq_tx.mean());
        assert_eq!(threaded.loop_violations, sequential.loop_violations);
    }
}
