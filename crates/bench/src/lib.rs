//! # ldr-bench — experiment harness for the LDR reproduction
//!
//! Reruns the paper's evaluation (§4): scenario definitions, protocol
//! selection, multi-trial runs with 95% confidence intervals, and the
//! table/figure printers used by the `table1`, `fig2`–`fig7` and
//! `ablation` binaries. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod forensics;
pub mod perf;
pub mod perf_parallel;
pub mod profiling;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod telemetry_export;
pub mod workpool;

pub use report::Summary;
pub use runner::{
    build_world, build_world_telemetry, run_fault_trials, run_once, run_once_faulted, run_trials,
    trial_fault_plan,
};
pub use scenario::{Protocol, Scenario, SimFlavor};
