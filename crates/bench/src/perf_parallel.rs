//! Wall-clock benchmark for the deterministic parallel event kernel
//! ("perfbench-parallel"): times the paper-scale scenarios — plus a
//! wide sparse variant where the spatial partitioner actually finds
//! disjoint components — at several worker counts against the
//! sequential kernel, on identical fixed seeds.
//!
//! Because parallel runs are byte-identical to sequential runs, each
//! cell measures exactly one thing — how fast the same answer is
//! computed — and the benchmark enforces that premise by comparing
//! every parallel trial's [`Metrics`] with `==` against its sequential
//! twin (a mismatch is a fatal determinism bug, not a perf artefact).
//!
//! Results go to a machine-readable `BENCH_5.json` (schema documented
//! in `DESIGN.md` §14) and a human-readable table
//! (`results/perfbench-parallel.txt`). The report records
//! `host_cores` ([`std::thread::available_parallelism`]) because the
//! speedups are only meaningful relative to it: on a single-core host
//! every worker count can only add overhead, and the honest numbers
//! say so.

use crate::perf::run_timed;
use crate::scenario::{Protocol, Scenario};
use std::fmt::Write as _;

/// One `(scenario, protocol, workers)` cell: trials at that worker
/// count, with the identity cross-check against the sequential twin.
#[derive(Clone, Debug)]
pub struct WorkerCell {
    /// Worker threads the kernel was configured with (≥ 2).
    pub workers: usize,
    /// Per-trial wall-clock seconds.
    pub wall_s: Vec<f64>,
    /// Per-trial windows the kernel fanned out.
    pub parallel_windows: Vec<u64>,
    /// Whether every trial's metrics equalled its sequential twin.
    pub metrics_identical: bool,
}

impl WorkerCell {
    /// Mean wall-clock seconds per trial.
    pub fn mean_s(&self) -> f64 {
        mean(&self.wall_s)
    }
}

/// One protocol's row: the sequential baseline plus one cell per
/// worker count.
#[derive(Clone, Debug)]
pub struct ParallelRow {
    /// Protocol display name.
    pub protocol: String,
    /// Per-trial sequential (workers = 1) wall-clock seconds.
    pub seq_wall_s: Vec<f64>,
    /// Kernel events per sequential trial (identical in every cell —
    /// the differential tests enforce it; recorded once).
    pub seq_events: Vec<u64>,
    /// One cell per benchmarked worker count.
    pub cells: Vec<WorkerCell>,
}

impl ParallelRow {
    /// Mean sequential wall-clock seconds per trial.
    pub fn seq_mean_s(&self) -> f64 {
        mean(&self.seq_wall_s)
    }
    /// Sequential over parallel wall-clock at `workers` (higher =
    /// parallel faster), if that cell was benchmarked.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        let cell = self.cells.iter().find(|c| c.workers == workers)?;
        let p = cell.mean_s();
        Some(if p > 0.0 { self.seq_mean_s() / p } else { f64::INFINITY })
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One benchmark scenario's results across protocols.
#[derive(Clone, Debug)]
pub struct ParallelScenarioReport {
    /// Short scenario label (e.g. `n100-f30-p0`).
    pub name: String,
    /// The scenario timed.
    pub scenario: Scenario,
    /// One row per protocol.
    pub rows: Vec<ParallelRow>,
}

/// The full perfbench-parallel report.
#[derive(Clone, Debug)]
pub struct ParallelPerfReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// CPU cores the host exposed to this process (the denominator any
    /// speedup must be read against).
    pub host_cores: usize,
    /// Worker counts benchmarked.
    pub worker_counts: Vec<usize>,
    /// All scenario blocks.
    pub scenarios: Vec<ParallelScenarioReport>,
}

/// The benchmark scenarios: the two paper-scale cases (dense — most
/// windows collapse to one spatial component, so these measure the
/// window driver's overhead honestly) and a wide sparse 100-node case
/// whose clusters sit far enough apart for the partitioner to fan out.
pub fn parallel_cases(duration_secs: u64, trials: u32) -> Vec<(String, Scenario)> {
    let mut n50 = Scenario::n50(10, 0);
    n50.duration_secs = duration_secs;
    n50.trials = trials;
    let mut n100 = Scenario::n100(30, 0);
    n100.duration_secs = duration_secs;
    n100.trials = trials;
    let mut wide = Scenario::n100(30, 0);
    wide.terrain = (9000.0, 600.0);
    wide.duration_secs = duration_secs;
    wide.trials = trials;
    vec![
        ("n50-f10-p0".to_string(), n50),
        ("n100-f30-p0".to_string(), n100),
        ("n100-wide-f30-p0".to_string(), wide),
    ]
}

/// Times every `(scenario, protocol, worker-count)` cell against the
/// sequential baseline on seeds `seed_base + k`. Prints one progress
/// line per row to stderr.
pub fn run_parallel_perfbench(
    cases: &[(String, Scenario)],
    worker_counts: &[usize],
    mode: &str,
) -> ParallelPerfReport {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut scenarios = Vec::new();
    for (name, scenario) in cases {
        let mut rows = Vec::new();
        for protocol in Protocol::PAPER_SET {
            let mut row = ParallelRow {
                protocol: protocol.name(),
                seq_wall_s: Vec::new(),
                seq_events: Vec::new(),
                cells: worker_counts
                    .iter()
                    .map(|&w| WorkerCell {
                        workers: w,
                        wall_s: Vec::new(),
                        parallel_windows: Vec::new(),
                        metrics_identical: true,
                    })
                    .collect(),
            };
            for k in 0..scenario.trials {
                let seed = crate::runner::trial_seed(scenario.seed_base, k);
                let mut seq_sc = scenario.clone();
                seq_sc.workers = 1;
                let s = run_timed(protocol, &seq_sc, seed);
                row.seq_wall_s.push(s.wall_s);
                row.seq_events.push(s.events);
                for (ci, &w) in worker_counts.iter().enumerate() {
                    let mut par_sc = scenario.clone();
                    par_sc.workers = w;
                    let p = run_timed(protocol, &par_sc, seed);
                    row.cells[ci].metrics_identical &= p.metrics == s.metrics;
                    row.cells[ci].wall_s.push(p.wall_s);
                    row.cells[ci].parallel_windows.push(p.parallel_windows);
                }
            }
            let cells: Vec<String> = row
                .cells
                .iter()
                .map(|c| {
                    format!(
                        "w{} {:.3}s ({:.2}x, {} pw)",
                        c.workers,
                        c.mean_s(),
                        row.speedup_at(c.workers).unwrap_or(f64::NAN),
                        c.parallel_windows.iter().sum::<u64>(),
                    )
                })
                .collect();
            eprintln!(
                "perfbench-parallel {name} {:<10} seq {:.3}s | {}",
                row.protocol,
                row.seq_mean_s(),
                cells.join(" | "),
            );
            rows.push(row);
        }
        scenarios.push(ParallelScenarioReport {
            name: name.clone(),
            scenario: scenario.clone(),
            rows,
        });
    }
    ParallelPerfReport {
        mode: mode.to_string(),
        host_cores,
        worker_counts: worker_counts.to_vec(),
        scenarios,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl ParallelPerfReport {
    /// Whether any parallel trial's metrics differed from its
    /// sequential twin — the fatal condition.
    pub fn any_mismatch(&self) -> bool {
        self.scenarios
            .iter()
            .flat_map(|sc| sc.rows.iter())
            .flat_map(|r| r.cells.iter())
            .any(|c| !c.metrics_identical)
    }

    /// Total windows fanned out across every cell and trial (0 means
    /// the parallel path never engaged anywhere — suspicious on the
    /// wide scenario).
    pub fn total_parallel_windows(&self) -> u64 {
        self.scenarios
            .iter()
            .flat_map(|sc| sc.rows.iter())
            .flat_map(|r| r.cells.iter())
            .flat_map(|c| c.parallel_windows.iter())
            .sum()
    }

    /// The best speedup over the sequential baseline across every
    /// `(scenario, protocol, workers)` cell.
    pub fn max_speedup(&self) -> f64 {
        self.scenarios
            .iter()
            .flat_map(|sc| sc.rows.iter())
            .flat_map(|r| r.cells.iter().map(|c| r.speedup_at(c.workers).unwrap_or(0.0)))
            .fold(0.0, f64::max)
    }

    /// Renders the report as `BENCH_5.json` (hand-rolled, stable key
    /// order; schema in `DESIGN.md` §14).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"perfbench-parallel\",\n");
        s.push_str("  \"schema\": 1,\n");
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(
            s,
            "  \"worker_counts\": [{}],",
            self.worker_counts.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
        );
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"name\": \"{}\",", sc.name);
            let _ = writeln!(s, "      \"n_nodes\": {},", sc.scenario.n_nodes);
            let _ = writeln!(
                s,
                "      \"terrain\": [{}, {}],",
                json_f64(sc.scenario.terrain.0),
                json_f64(sc.scenario.terrain.1)
            );
            let _ = writeln!(s, "      \"n_flows\": {},", sc.scenario.n_flows);
            let _ = writeln!(s, "      \"duration_secs\": {},", sc.scenario.duration_secs);
            let _ = writeln!(s, "      \"trials\": {},", sc.scenario.trials);
            let _ = writeln!(s, "      \"seed_base\": {},", sc.scenario.seed_base);
            s.push_str("      \"protocols\": [\n");
            for (j, row) in sc.rows.iter().enumerate() {
                s.push_str("        {\n");
                let _ = writeln!(s, "          \"protocol\": \"{}\",", row.protocol);
                let _ = writeln!(
                    s,
                    "          \"seq_wall_s\": [{}],",
                    row.seq_wall_s.iter().map(|&x| json_f64(x)).collect::<Vec<_>>().join(", ")
                );
                let _ = writeln!(
                    s,
                    "          \"seq_events\": [{}],",
                    row.seq_events.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
                );
                let _ =
                    writeln!(s, "          \"seq_mean_wall_s\": {},", json_f64(row.seq_mean_s()));
                s.push_str("          \"workers\": [\n");
                for (ci, cell) in row.cells.iter().enumerate() {
                    s.push_str("            {\n");
                    let _ = writeln!(s, "              \"workers\": {},", cell.workers);
                    let _ = writeln!(
                        s,
                        "              \"wall_s\": [{}],",
                        cell.wall_s.iter().map(|&x| json_f64(x)).collect::<Vec<_>>().join(", ")
                    );
                    let _ = writeln!(
                        s,
                        "              \"parallel_windows\": [{}],",
                        cell.parallel_windows
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    let _ =
                        writeln!(s, "              \"mean_wall_s\": {},", json_f64(cell.mean_s()));
                    let _ = writeln!(
                        s,
                        "              \"speedup\": {},",
                        json_f64(row.speedup_at(cell.workers).unwrap_or(f64::NAN))
                    );
                    let _ = writeln!(
                        s,
                        "              \"metrics_identical\": {}",
                        cell.metrics_identical
                    );
                    s.push_str(if ci + 1 < row.cells.len() {
                        "            },\n"
                    } else {
                        "            }\n"
                    });
                }
                s.push_str("          ]\n");
                s.push_str(if j + 1 < sc.rows.len() { "        },\n" } else { "        }\n" });
            }
            s.push_str("      ]\n");
            s.push_str(if i + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the human-readable table
    /// (`results/perfbench-parallel.txt`).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "perfbench-parallel ({} mode): parallel kernel vs sequential, identical seeds \
             ({} host core(s))",
            self.mode, self.host_cores
        );
        for sc in &self.scenarios {
            let _ = writeln!(
                s,
                "\n{} — {} nodes on {:.0}×{:.0} m, {} flows, {} s simulated, {} trial(s)",
                sc.name,
                sc.scenario.n_nodes,
                sc.scenario.terrain.0,
                sc.scenario.terrain.1,
                sc.scenario.n_flows,
                sc.scenario.duration_secs,
                sc.scenario.trials
            );
            let mut header = format!("{:<12} {:>12}", "protocol", "seq s/trial");
            for w in &self.worker_counts {
                let _ = write!(
                    header,
                    " {:>11} {:>8} {:>8}",
                    format!("w{w} s/trial"),
                    "speedup",
                    "par.win"
                );
            }
            let _ = write!(header, " {:>10}", "identical");
            let _ = writeln!(s, "{header}");
            for row in &sc.rows {
                let mut line = format!("{:<12} {:>12.3}", row.protocol, row.seq_mean_s());
                for cell in &row.cells {
                    let _ = write!(
                        line,
                        " {:>11.3} {:>7.2}x {:>8}",
                        cell.mean_s(),
                        row.speedup_at(cell.workers).unwrap_or(f64::NAN),
                        cell.parallel_windows.iter().sum::<u64>(),
                    );
                }
                let identical = row.cells.iter().all(|c| c.metrics_identical);
                let _ = write!(line, " {:>10}", if identical { "yes" } else { "NO" });
                let _ = writeln!(s, "{line}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cases() -> Vec<(String, Scenario)> {
        let mut sc = Scenario::n50(3, 0);
        sc.n_nodes = 12;
        sc.terrain = (700.0, 300.0);
        sc.duration_secs = 8;
        sc.trials = 1;
        vec![("tiny".to_string(), sc)]
    }

    #[test]
    fn parallel_and_sequential_metrics_agree_and_report_renders() {
        let report = run_parallel_perfbench(&tiny_cases(), &[2], "test");
        assert!(!report.any_mismatch(), "parallel run diverged from sequential");
        assert!(report.host_cores >= 1);
        let json = report.to_json();
        for key in [
            "\"bench\": \"perfbench-parallel\"",
            "\"schema\": 1",
            "\"host_cores\"",
            "\"parallel_windows\"",
            "\"speedup\"",
            "\"metrics_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "unbalanced JSON");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "unbalanced JSON");
        let table = report.to_table();
        assert!(table.contains("LDR") && table.contains("speedup"), "table:\n{table}");
    }

    #[test]
    fn parallel_cases_cover_paper_and_wide_topologies() {
        let cases = parallel_cases(900, 3);
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].1.n_nodes, 50);
        assert_eq!(cases[1].1.terrain, (2200.0, 600.0));
        assert_eq!(cases[2].1.terrain, (9000.0, 600.0), "wide sparse case");
        for (_, sc) in &cases {
            assert_eq!(sc.pause_secs, 0, "bench at max mobility");
        }
    }
}
