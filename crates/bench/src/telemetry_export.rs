//! One-call telemetry export: runs a trial with the flight recorder,
//! time-series sampler and JSONL trace sink attached, and renders (or
//! writes) the two schema-versioned documents.
//!
//! The attached telemetry is observation-pure — the exported run's
//! [`Metrics`] are byte-identical to the same `(scenario, seed)` run
//! without telemetry, and re-exporting the same run reproduces both
//! files byte-for-byte (`telemetry_purity.rs` enforces both).

use crate::runner::build_world_telemetry;
use crate::scenario::{Protocol, Scenario};
use manet_sim::faults::FaultPlan;
use manet_sim::metrics::Metrics;
use manet_sim::prof::prof_to_jsonl;
use manet_sim::telemetry::{series_to_jsonl, JsonlTrace, TelemetryConfig};
use manet_sim::time::{SimDuration, SimTime};
use std::fs;
use std::path::{Path, PathBuf};

/// Where [`export_run`] wrote its documents.
#[derive(Clone, Debug)]
pub struct ExportPaths {
    /// The `manet-trace` event file.
    pub trace: PathBuf,
    /// The `manet-series` sampler file.
    pub series: PathBuf,
    /// The `manet-prof` profiler file, when [`Scenario::profile`] was
    /// on.
    pub prof: Option<PathBuf>,
}

/// An exported run, still in memory.
#[derive(Clone, Debug)]
pub struct RenderedRun {
    /// The run's metrics (identical to an untelemetered run).
    pub metrics: Metrics,
    /// The full `manet-trace` JSONL document.
    pub trace: String,
    /// The full `manet-series` JSONL document.
    pub series: String,
    /// The `manet-prof` JSONL document, when [`Scenario::profile`] was
    /// on. Only its `count`/`hist` section is deterministic
    /// ([`manet_sim::prof::deterministic_section`]); the `timing`
    /// lines carry wall nanoseconds and are never byte-gated.
    pub prof: Option<String>,
}

/// Runs one telemetry-attached trial and returns the rendered JSONL
/// documents without touching the filesystem.
pub fn render_run(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
) -> RenderedRun {
    let telemetry = TelemetryConfig::default();
    let mut world = build_world_telemetry(protocol, scenario, seed, plan, Some(telemetry));
    let sink = JsonlTrace::shared(seed, scenario.n_nodes);
    world.set_trace(Box::new(sink.clone()));
    world.run_until(SimTime::ZERO + SimDuration::from_secs(scenario.duration_secs));
    world.finalize();
    let interval = world.sample_interval().unwrap_or(SimDuration::from_secs(1));
    let series = series_to_jsonl(seed, interval, world.telemetry_series());
    let metrics = world.metrics().clone();
    let trace = match sink.lock() {
        Ok(guard) => guard.contents().to_string(),
        Err(poisoned) => poisoned.into_inner().contents().to_string(),
    };
    let prof = world.prof_snapshot().map(|snap| {
        prof_to_jsonl(
            seed,
            scenario.n_nodes,
            scenario.workers.max(1),
            &protocol.name(),
            &scenario.label(),
            &snap,
        )
    });
    RenderedRun { metrics, trace, series, prof }
}

/// Runs one telemetry-attached trial and writes
/// `<dir>/<prefix>-trace.jsonl` and `<dir>/<prefix>-series.jsonl`
/// (plus `<dir>/<prefix>-prof.jsonl` when [`Scenario::profile`] is
/// on), creating `dir` if needed.
pub fn export_run(
    protocol: Protocol,
    scenario: &Scenario,
    seed: u64,
    plan: Option<FaultPlan>,
    dir: &Path,
    prefix: &str,
) -> std::io::Result<(Metrics, ExportPaths)> {
    let run = render_run(protocol, scenario, seed, plan);
    fs::create_dir_all(dir)?;
    let trace = dir.join(format!("{prefix}-trace.jsonl"));
    let series = dir.join(format!("{prefix}-series.jsonl"));
    fs::write(&trace, &run.trace)?;
    fs::write(&series, &run.series)?;
    let prof = match &run.prof {
        Some(doc) => {
            let path = dir.join(format!("{prefix}-prof.jsonl"));
            fs::write(&path, doc)?;
            Some(path)
        }
        None => None,
    };
    Ok((run.metrics, ExportPaths { trace, series, prof }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_scenario() -> Scenario {
        Scenario {
            n_nodes: 12,
            terrain: (600.0, 300.0),
            n_flows: 3,
            pause_secs: 0,
            duration_secs: 25,
            trials: 1,
            seed_base: 11,
            flavor: crate::scenario::SimFlavor::Default,
            audit: false,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        }
    }

    #[test]
    fn render_produces_headers_and_samples() {
        let run = render_run(Protocol::Ldr, &smoke_scenario(), 11, None);
        let trace_head = run.trace.lines().next().expect("trace non-empty");
        assert!(trace_head.contains("\"schema\":\"manet-trace\""), "{trace_head}");
        let series_head = run.series.lines().next().expect("series non-empty");
        assert!(series_head.contains("\"schema\":\"manet-series\""), "{series_head}");
        // 25 s at a 1 s interval → 25 samples after the header.
        assert_eq!(run.series.lines().count(), 26, "{}", run.series);
        assert!(run.trace.lines().count() > 1, "trace recorded no events");
    }

    #[test]
    fn export_writes_both_files() {
        let dir = std::env::temp_dir().join("ldr-bench-telemetry-export-test");
        let (_m, paths) =
            export_run(Protocol::Ldr, &smoke_scenario(), 11, None, &dir, "smoke").expect("export");
        let trace = fs::read_to_string(&paths.trace).expect("trace written");
        let series = fs::read_to_string(&paths.series).expect("series written");
        assert!(trace.starts_with("{\"schema\":\"manet-trace\""));
        assert!(series.starts_with("{\"schema\":\"manet-series\""));
        assert!(paths.prof.is_none(), "no prof file without Scenario::profile");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiled_export_adds_the_prof_document() {
        let dir = std::env::temp_dir().join("ldr-bench-prof-export-test");
        let scenario = Scenario { profile: true, ..smoke_scenario() };
        let (_m, paths) =
            export_run(Protocol::Ldr, &scenario, 11, None, &dir, "smoke").expect("export");
        let prof_path = paths.prof.expect("profiled run exports a prof file");
        let prof = fs::read_to_string(&prof_path).expect("prof written");
        assert!(prof.starts_with("{\"schema\":\"manet-prof\",\"version\":1,"), "{prof}");
        assert!(prof.contains("\"protocol\":\"LDR\""));
        assert!(prof.contains("\"scenario\":\"n12-f3-p0\""));
        assert!(prof.contains("\"sect\":\"timing\",\"name\":\"total\""));
        let _ = fs::remove_dir_all(&dir);
    }
}
