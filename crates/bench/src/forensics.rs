//! Trace forensics: parsing and querying exported JSONL traces.
//!
//! Powers the `tracegrep` binary. The queries deliberately recompute
//! everything from the flat event stream — in particular
//! [`loops_check`] rebuilds per-destination successor graphs from
//! `route_install` / `route_invalidate` records alone, independently of
//! the simulator's own `sim::audit` machinery, so the two
//! implementations cross-check each other.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

// ----- a minimal JSON reader --------------------------------------------

/// A parsed JSON value. Objects keep their field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the trace only writes integers and finite floats,
    /// all exactly representable in an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (a full line of a JSONL file).
    pub fn parse(s: &str) -> Option<Json> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Shorthand: integer field of an object.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Shorthand: string field of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<f64>().ok().filter(|n| n.is_finite()).map(Json::Num)
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Some(Json::Arr(items));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            fields.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Some(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

// ----- trace file -------------------------------------------------------

/// A parsed `manet-trace` JSONL file: validated header plus one parsed
/// object per event line.
#[derive(Debug)]
pub struct TraceFile {
    /// The header object (schema, version, seed, nodes).
    pub header: Json,
    /// Event records in file order.
    pub events: Vec<Json>,
}

impl TraceFile {
    /// Parses a whole trace document, validating the schema header.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty trace file")?;
        let header = Json::parse(first).ok_or("header is not valid JSON")?;
        match header.str_field("schema") {
            Some(s) if s == manet_sim::telemetry::TRACE_SCHEMA => {}
            Some(s) => return Err(format!("not a trace file (schema {s:?})")),
            None => return Err("header has no schema field".into()),
        }
        let version = header.u64_field("version").unwrap_or(0);
        if version != u64::from(manet_sim::telemetry::SCHEMA_VERSION) {
            return Err(format!(
                "unsupported trace version {version} (reader speaks {})",
                manet_sim::telemetry::SCHEMA_VERSION
            ));
        }
        let mut events = Vec::new();
        for (n, line) in lines {
            if line.is_empty() {
                continue;
            }
            events.push(Json::parse(line).ok_or_else(|| format!("line {}: invalid JSON", n + 1))?);
        }
        Ok(TraceFile { header, events })
    }
}

fn secs(ev: &Json) -> f64 {
    ev.u64_field("t_ns").unwrap_or(0) as f64 / 1e9
}

// ----- --explain-packet -------------------------------------------------

/// Reconstructs one data packet's lifecycle: the route discovery that
/// preceded its first transmission, then every per-hop forward, and the
/// final delivery or drop.
pub fn explain_packet(trace: &TraceFile, flow: u64, seq: u64) -> String {
    let is_ours = |ev: &Json| {
        matches!(ev.str_field("type"), Some("data_send" | "data_drop" | "delivered"))
            && ev.u64_field("flow") == Some(flow)
            && ev.u64_field("seq") == Some(seq)
    };
    let hops: Vec<&Json> = trace.events.iter().filter(|e| is_ours(e)).collect();
    let mut out = String::new();
    let Some(first) = hops.first() else {
        let _ = writeln!(out, "packet flow={flow} seq={seq}: no events in trace");
        return out;
    };
    let src = first.u64_field("node");
    let dst = match first.str_field("type") {
        Some("data_send") => first.u64_field("dst"),
        // A packet delivered or dropped without a data_send was handled
        // entirely at its origin node.
        _ => first.u64_field("node"),
    };
    let _ =
        writeln!(out, "packet flow={flow} seq={seq}: src={} dst={}", fmt_opt(src), fmt_opt(dst));

    // Route-discovery context: the destination's RREQ/RREP activity
    // before the first hop (the discovery this packet waited on).
    let first_idx = trace.events.iter().position(is_ours).unwrap_or(0);
    let discovery: Vec<&Json> = trace.events[..first_idx]
        .iter()
        .filter(|e| {
            matches!(e.str_field("type"), Some("rreq_start" | "rreq_relay" | "rrep_send"))
                && e.u64_field("dest") == dst
        })
        .collect();
    let shown = discovery.len().min(6);
    if discovery.len() > shown {
        let _ = writeln!(out, "  … {} earlier discovery events elided", discovery.len() - shown);
    }
    for ev in &discovery[discovery.len() - shown..] {
        let _ = writeln!(out, "  {}", fmt_event(ev));
    }

    for ev in &hops {
        let _ = writeln!(out, "  {}", fmt_event(ev));
    }
    let verdict = hops
        .iter()
        .rev()
        .find_map(|e| match e.str_field("type") {
            Some("delivered") => Some(format!(
                "DELIVERED at node {} ({:.6}s, {} hop(s))",
                fmt_opt(e.u64_field("node")),
                secs(e),
                hops.iter().filter(|h| h.str_field("type") == Some("data_send")).count()
            )),
            Some("data_drop") => Some(format!(
                "DROPPED at node {} ({:.6}s, reason {})",
                fmt_opt(e.u64_field("node")),
                secs(e),
                e.str_field("reason").unwrap_or("?")
            )),
            _ => None,
        })
        .unwrap_or_else(|| "IN FLIGHT at trace end".into());
    let _ = writeln!(out, "  verdict: {verdict}");
    out
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "?".into(), |v| v.to_string())
}

/// One-line rendering of any trace event: time, node, type, then the
/// remaining fields in wire order.
fn fmt_event(ev: &Json) -> String {
    let mut line = format!(
        "[{:>12.6}s] node {:>3} {}",
        secs(ev),
        fmt_opt(ev.u64_field("node")),
        ev.str_field("type").unwrap_or("?")
    );
    if let Json::Obj(fields) = ev {
        for (k, v) in fields {
            if matches!(k.as_str(), "i" | "t_ns" | "type" | "node") {
                continue;
            }
            let rendered = match v {
                Json::Null => "null".into(),
                Json::Bool(b) => b.to_string(),
                Json::Num(n) => {
                    if n.fract() == 0.0 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
                Json::Str(s) => s.clone(),
                Json::Arr(items) => format!("[{} items]", items.len()),
                Json::Obj(_) => fmt_snapshot(v),
            };
            let _ = write!(line, " {k}={rendered}");
        }
    }
    line
}

fn fmt_snapshot(v: &Json) -> String {
    format!(
        "(sn={},d={},fd={})",
        v.get("sn").map_or_else(
            || "?".into(),
            |s| match s {
                Json::Null => "-".into(),
                s => fmt_opt(s.as_u64()),
            }
        ),
        fmt_opt(v.u64_field("d")),
        fmt_opt(v.u64_field("fd"))
    )
}

// ----- --route-lifetimes ------------------------------------------------

/// Install→invalidate spans for one destination, per node, with a
/// lifetime (churn) histogram.
pub fn route_lifetimes(trace: &TraceFile, dst: u64) -> String {
    // node -> (installs, invalidates, open install time). Ordered map:
    // the totals below iterate it and the report must be byte-stable.
    let mut per_node: BTreeMap<u64, (u64, u64, Option<u64>)> = BTreeMap::new();
    let mut spans_ns: Vec<u64> = Vec::new();
    let mut end_ns: u64 = 0;
    for ev in &trace.events {
        let t = ev.u64_field("t_ns").unwrap_or(0);
        end_ns = end_ns.max(t);
        if ev.u64_field("dest") != Some(dst) {
            continue;
        }
        let Some(node) = ev.u64_field("node") else { continue };
        // Only table mutations open a row — discovery events also carry
        // a `dest` field and must not clutter the listing.
        match ev.str_field("type") {
            Some("route_install") => {
                let e = per_node.entry(node).or_default();
                e.0 += 1;
                // A reinstall while open refreshes the route; the span
                // keeps running from the original install.
                if e.2.is_none() {
                    e.2 = Some(t);
                }
            }
            Some("route_invalidate") => {
                let e = per_node.entry(node).or_default();
                e.1 += 1;
                if let Some(t0) = e.2.take() {
                    spans_ns.push(t.saturating_sub(t0));
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if per_node.is_empty() {
        let _ = writeln!(out, "route-lifetimes dest={dst}: no route events");
        return out;
    }
    // Spans still open at trace end run to the last event's timestamp.
    let mut open = 0u64;
    let nodes: Vec<u64> = per_node.keys().copied().collect();
    let _ = writeln!(out, "route-lifetimes dest={dst}:");
    let _ = writeln!(out, "  node  installs  invalidates  state");
    for n in nodes {
        let (ins, inv, open_at) = per_node[&n];
        if open_at.is_some() {
            open += 1;
        }
        let state = match open_at {
            Some(t0) => {
                spans_ns.push(end_ns.saturating_sub(t0));
                format!("held since {:.3}s", t0 as f64 / 1e9)
            }
            None => "closed".into(),
        };
        let _ = writeln!(out, "  {n:>4}  {ins:>8}  {inv:>11}  {state}");
    }
    spans_ns.sort_unstable();
    let total_installs: u64 = per_node.values().map(|v| v.0).sum();
    let total_invalidates: u64 = per_node.values().map(|v| v.1).sum();
    let _ = writeln!(
        out,
        "  totals: {total_installs} installs, {total_invalidates} invalidates, {open} still held"
    );
    if !spans_ns.is_empty() {
        let mean = spans_ns.iter().sum::<u64>() as f64 / spans_ns.len() as f64 / 1e9;
        let median = spans_ns[spans_ns.len() / 2] as f64 / 1e9;
        let _ = writeln!(out, "  lifetime: mean {mean:.3}s, median {median:.3}s");
        let _ = writeln!(out, "  churn histogram:");
        let buckets: [(&str, u64, u64); 5] = [
            ("< 100ms", 0, 100_000_000),
            ("100ms–1s", 100_000_000, 1_000_000_000),
            ("1–10s", 1_000_000_000, 10_000_000_000),
            ("10–60s", 10_000_000_000, 60_000_000_000),
            ("≥ 60s", 60_000_000_000, u64::MAX),
        ];
        for (label, lo, hi) in buckets {
            let count = spans_ns.iter().filter(|&&s| s >= lo && s < hi).count();
            let _ = writeln!(out, "    {label:>9}  {count:>6}  {}", "#".repeat(count.min(60)));
        }
    }
    out
}

// ----- --drops ----------------------------------------------------------

/// Data-drop breakdown: totals per reason plus a coarse timeline.
pub fn drops_report(trace: &TraceFile) -> String {
    let mut by_reason: Vec<(String, u64)> = Vec::new();
    let mut drops: Vec<(u64, String)> = Vec::new();
    let mut end_ns: u64 = 0;
    for ev in &trace.events {
        end_ns = end_ns.max(ev.u64_field("t_ns").unwrap_or(0));
        if ev.str_field("type") != Some("data_drop") {
            continue;
        }
        let reason = ev.str_field("reason").unwrap_or("?").to_string();
        match by_reason.iter_mut().find(|(r, _)| *r == reason) {
            Some((_, n)) => *n += 1,
            None => by_reason.push((reason.clone(), 1)),
        }
        drops.push((ev.u64_field("t_ns").unwrap_or(0), reason));
    }
    let mut out = String::new();
    if drops.is_empty() {
        let _ = writeln!(out, "drops: none recorded");
        return out;
    }
    by_reason.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let _ = writeln!(out, "drops: {} total", drops.len());
    for (reason, n) in &by_reason {
        let _ = writeln!(out, "  {reason:<20} {n:>6}");
    }
    // Ten-bucket timeline over the trace's span.
    const BUCKETS: usize = 10;
    let width = (end_ns / BUCKETS as u64).max(1);
    let mut counts = [0u64; BUCKETS];
    for (t, _) in &drops {
        let b = ((t / width) as usize).min(BUCKETS - 1);
        counts[b] += 1;
    }
    let _ = writeln!(out, "  timeline ({} buckets of {:.1}s):", BUCKETS, width as f64 / 1e9);
    for (b, n) in counts.iter().enumerate() {
        let _ = writeln!(
            out,
            "    [{:>5.1}s–{:>5.1}s) {n:>6}  {}",
            (b as u64 * width) as f64 / 1e9,
            ((b as u64 + 1) * width) as f64 / 1e9,
            "#".repeat((*n as usize).min(60))
        );
    }
    out
}

// ----- --loops ----------------------------------------------------------

/// Replays the route-mutation stream into per-destination successor
/// graphs and checks for cycles after every mutation — an independent
/// re-derivation of the simulator's online loop audit.
pub fn loops_check(trace: &TraceFile) -> String {
    // dest -> (node -> next)
    let mut succ: HashMap<u64, HashMap<u64, u64>> = HashMap::new();
    let mut mutations = 0u64;
    let mut loops: Vec<String> = Vec::new();
    for ev in &trace.events {
        let (Some(node), Some(dest)) = (ev.u64_field("node"), ev.u64_field("dest")) else {
            continue;
        };
        match ev.str_field("type") {
            Some("route_install") => {
                let Some(next) = ev.u64_field("next") else { continue };
                mutations += 1;
                let g = succ.entry(dest).or_default();
                g.insert(node, next);
                // Follow successors from the mutated node; a revisit
                // before reaching the destination is a loop.
                let mut visited = vec![node];
                let mut cur = node;
                while let Some(&n) = g.get(&cur) {
                    if n == dest {
                        break;
                    }
                    if visited.contains(&n) {
                        let cycle: Vec<String> =
                            visited.iter().skip_while(|&&v| v != n).map(u64::to_string).collect();
                        loops.push(format!(
                            "[{:>12.6}s] dest {dest}: cycle {} → {}",
                            secs(ev),
                            cycle.join(" → "),
                            n
                        ));
                        break;
                    }
                    visited.push(n);
                    cur = n;
                }
            }
            Some("route_invalidate") => {
                mutations += 1;
                if let Some(g) = succ.get_mut(&dest) {
                    g.remove(&node);
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "loop check: {mutations} route mutations replayed, {} loop(s) found",
        loops.len()
    );
    // A source-routed protocol (DSR) legitimately caches paths whose
    // first hops point at each other — packets carry the full route,
    // so the next-hop replay over-approximates there. For hop-by-hop
    // protocols (LDR, OLSR) every cycle below is a real forwarding
    // loop the simulator's own audit should also have caught.
    const SHOWN: usize = 20;
    for l in loops.iter().take(SHOWN) {
        let _ = writeln!(out, "  {l}");
    }
    if loops.len() > SHOWN {
        let _ = writeln!(out, "  … {} more cycle(s) elided", loops.len() - SHOWN);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_values() {
        let v = Json::parse(r#"{"a":1,"b":null,"c":"x\ny","d":[1,2],"e":{"f":true},"g":-2.5}"#)
            .expect("parses");
        assert_eq!(v.u64_field("a"), Some(1));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.str_field("c"), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert_eq!(v.get("e").and_then(|e| e.get("f")), Some(&Json::Bool(true)));
        assert_eq!(v.get("g"), Some(&Json::Num(-2.5)));
        assert!(Json::parse("{\"a\":1}trailing").is_none());
        assert!(Json::parse("{").is_none());
    }

    #[test]
    fn json_unicode_escapes_and_utf8() {
        let v = Json::parse(r#""café — ok""#).expect("parses");
        assert_eq!(v, Json::Str("café — ok".into()));
    }

    fn trace_of(lines: &[&str]) -> TraceFile {
        let mut text =
            String::from("{\"schema\":\"manet-trace\",\"version\":1,\"seed\":1,\"nodes\":4}\n");
        for l in lines {
            text.push_str(l);
            text.push('\n');
        }
        TraceFile::parse(&text).expect("valid trace")
    }

    #[test]
    fn rejects_wrong_schema_and_version() {
        assert!(TraceFile::parse("{\"schema\":\"other\",\"version\":1}\n").is_err());
        assert!(TraceFile::parse("{\"schema\":\"manet-trace\",\"version\":99}\n").is_err());
        assert!(TraceFile::parse("").is_err());
    }

    #[test]
    fn explain_packet_reports_delivery() {
        let t = trace_of(&[
            r#"{"i":0,"t_ns":1000000000,"type":"rreq_start","node":0,"dest":2,"rreqid":1,"ttl":5}"#,
            r#"{"i":1,"t_ns":1100000000,"type":"rrep_send","node":2,"dest":2,"to":1,"dist":0}"#,
            r#"{"i":2,"t_ns":1200000000,"type":"data_send","node":0,"next":1,"dst":2,"flow":3,"seq":7}"#,
            r#"{"i":3,"t_ns":1300000000,"type":"data_send","node":1,"next":2,"dst":2,"flow":3,"seq":7}"#,
            r#"{"i":4,"t_ns":1400000000,"type":"delivered","node":2,"flow":3,"seq":7}"#,
        ]);
        let s = explain_packet(&t, 3, 7);
        assert!(s.contains("src=0 dst=2"), "{s}");
        assert!(s.contains("rreq_start"), "{s}");
        assert!(s.contains("DELIVERED at node 2"), "{s}");
        assert!(s.contains("2 hop(s)"), "{s}");
        let missing = explain_packet(&t, 9, 9);
        assert!(missing.contains("no events"), "{missing}");
    }

    #[test]
    fn explain_packet_reports_drop() {
        let t = trace_of(&[
            r#"{"i":0,"t_ns":500000000,"type":"data_send","node":0,"next":1,"dst":2,"flow":1,"seq":1}"#,
            r#"{"i":1,"t_ns":600000000,"type":"data_drop","node":1,"flow":1,"seq":1,"reason":"no_route"}"#,
        ]);
        let s = explain_packet(&t, 1, 1);
        assert!(s.contains("DROPPED at node 1"), "{s}");
        assert!(s.contains("no_route"), "{s}");
    }

    #[test]
    fn route_lifetimes_spans_and_histogram() {
        let t = trace_of(&[
            r#"{"i":0,"t_ns":1000000000,"type":"route_install","node":0,"dest":5,"next":1,"before":null,"after":{"sn":1,"d":2,"fd":2}}"#,
            r#"{"i":1,"t_ns":3000000000,"type":"route_invalidate","node":0,"dest":5,"sn":1,"cause":"link_failure"}"#,
            r#"{"i":2,"t_ns":4000000000,"type":"route_install","node":1,"dest":5,"next":2,"before":null,"after":{"sn":1,"d":1,"fd":1}}"#,
        ]);
        let s = route_lifetimes(&t, 5);
        assert!(s.contains("2 installs, 1 invalidates, 1 still held"), "{s}");
        assert!(s.contains("1–10s"), "{s}");
        assert!(route_lifetimes(&t, 99).contains("no route events"));
    }

    #[test]
    fn drops_report_counts_reasons() {
        let t = trace_of(&[
            r#"{"i":0,"t_ns":1000000000,"type":"data_drop","node":1,"flow":1,"seq":1,"reason":"no_route"}"#,
            r#"{"i":1,"t_ns":2000000000,"type":"data_drop","node":1,"flow":1,"seq":2,"reason":"no_route"}"#,
            r#"{"i":2,"t_ns":3000000000,"type":"data_drop","node":2,"flow":2,"seq":1,"reason":"ttl_expired"}"#,
        ]);
        let s = drops_report(&t);
        assert!(s.contains("3 total"), "{s}");
        assert!(s.contains("no_route") && s.contains("ttl_expired"), "{s}");
        let empty = trace_of(&[]);
        assert!(drops_report(&empty).contains("none recorded"));
    }

    #[test]
    fn loops_check_finds_two_cycle() {
        let t = trace_of(&[
            r#"{"i":0,"t_ns":1000000000,"type":"route_install","node":0,"dest":5,"next":1,"before":null,"after":{"sn":1,"d":2,"fd":2}}"#,
            r#"{"i":1,"t_ns":2000000000,"type":"route_install","node":1,"dest":5,"next":0,"before":null,"after":{"sn":1,"d":3,"fd":3}}"#,
        ]);
        let s = loops_check(&t);
        assert!(s.contains("1 loop(s) found"), "{s}");
        assert!(s.contains("dest 5"), "{s}");
    }

    #[test]
    fn loops_check_clean_chain_and_invalidate() {
        let t = trace_of(&[
            r#"{"i":0,"t_ns":1000000000,"type":"route_install","node":0,"dest":5,"next":1,"before":null,"after":{"sn":1,"d":2,"fd":2}}"#,
            r#"{"i":1,"t_ns":2000000000,"type":"route_install","node":1,"dest":5,"next":5,"before":null,"after":{"sn":1,"d":1,"fd":1}}"#,
            r#"{"i":2,"t_ns":3000000000,"type":"route_invalidate","node":1,"dest":5,"sn":1,"cause":"route_error"}"#,
        ]);
        let s = loops_check(&t);
        assert!(s.contains("3 route mutations"), "{s}");
        assert!(s.contains("0 loop(s) found"), "{s}");
    }
}
