//! Theorem 4 at evaluation scale: run the paper's protocol set with the
//! successor-graph auditor sampling once per simulated second, and
//! print the number of routing-loop violations per protocol and pause
//! time. LDR must print zeroes everywhere.

use ldr_bench::experiments::Args;
use ldr_bench::scenario::{Protocol, Scenario};

fn main() {
    let mut args = Args::parse(std::env::args().skip(1));
    args.audit = true;
    let pauses = args.pause_sweep();
    let protocols = Protocol::PAPER_SET;
    println!("routing-loop audit violations (sampled once per simulated second)");
    print!("{:>10}", "pause(s)");
    for p in protocols {
        print!(" {:>12}", p.name());
    }
    println!();
    let mut ldr_total = 0u64;
    for &pause in &pauses {
        print!("{pause:>10}");
        for proto in protocols {
            let sc = args.apply(Scenario::n50(10, pause));
            let mut violations = 0u64;
            for k in 0..sc.trials {
                let m =
                    ldr_bench::run_once(proto, &sc, ldr_bench::runner::trial_seed(sc.seed_base, k));
                violations += m.loop_violations;
            }
            if proto == Protocol::Ldr {
                ldr_total += violations;
            }
            print!(" {violations:>12}");
        }
        println!();
        eprintln!("  [loopcheck] pause {pause}s done");
    }
    println!();
    if ldr_total == 0 {
        println!("LDR: loop-free at every audited instant (Theorem 4 holds).");
    } else {
        println!("LDR VIOLATED LOOP FREEDOM {ldr_total} TIMES — investigate!");
        std::process::exit(1);
    }
}
