//! Regenerates Fig. 2: delivery ratio vs pause time, 50 nodes,
//! 10 flows. `--full` for paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::delivery_figure(
        "Fig. 2 — delivery ratio, 50 nodes, 10 flows",
        50,
        10,
        &args,
    );
}
