//! Wall-clock benchmark: spatial neighbor grid vs linear scan on the
//! paper-scale 50- and 100-node scenarios, all four protocols, fixed
//! seeds. Writes machine-readable `BENCH_4.json` and a human table.
//!
//! ```text
//! cargo run --release -p ldr-bench --bin perfbench            # full
//! cargo run --release -p ldr-bench --bin perfbench -- --smoke # CI
//! ```
//!
//! `--smoke` shortens the simulated time and runs one trial per cell so
//! CI finishes quickly; the full run simulates the paper's 900 s.
//! Exits non-zero if any grid trial's metrics diverge from its
//! linear-scan twin (that would falsify the byte-identity contract).

use ldr_bench::perf::{paper_cases, run_perfbench_filtered};

fn main() {
    let mut smoke = false;
    let mut out = "BENCH_4.json".to_string();
    let mut table = "results/perfbench.txt".to_string();
    let mut trials: Option<u32> = None;
    let mut duration: Option<u64> = None;
    let mut only: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path"),
            "--table" => table = it.next().expect("--table needs a path"),
            "--trials" => {
                trials = Some(it.next().expect("--trials needs a value").parse().expect("integer"))
            }
            "--duration" => {
                duration =
                    Some(it.next().expect("--duration needs a value").parse().expect("seconds"))
            }
            "--only" => only = Some(it.next().expect("--only needs a protocol name")),
            "--telemetry-dir" => {
                telemetry_dir = Some(it.next().expect("--telemetry-dir needs a directory"))
            }
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --smoke --out PATH --table PATH \
                     --trials N --duration SECS --only PROTOCOL --telemetry-dir DIR"
                );
                std::process::exit(2);
            }
        }
    }
    let (mode, default_duration, default_trials) =
        if smoke { ("smoke", 60, 1) } else { ("full", 900, 3) };
    let cases = paper_cases(duration.unwrap_or(default_duration), trials.unwrap_or(default_trials));
    let report = run_perfbench_filtered(&cases, mode, only.as_deref());

    // Optional: export one telemetry-attached LDR run per benchmark
    // scenario so the wall-clock numbers ship with a forensic trace.
    if let Some(dir) = &telemetry_dir {
        use ldr_bench::scenario::Protocol;
        use ldr_bench::telemetry_export::export_run;
        for (name, scenario) in &cases {
            let prefix = format!("perf-{name}");
            match export_run(
                Protocol::Ldr,
                scenario,
                scenario.seed_base,
                None,
                std::path::Path::new(dir),
                &prefix,
            ) {
                Ok((_, paths)) => eprintln!("telemetry → {}", paths.trace.display()),
                Err(e) => eprintln!("telemetry export failed for {name}: {e}"),
            }
        }
    }

    std::fs::write(&out, report.to_json()).expect("write BENCH json");
    let rendered = report.to_table();
    if let Some(dir) = std::path::Path::new(&table).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&table, &rendered).expect("write perfbench table");
    print!("{rendered}");
    println!("\nwrote {out} and {table}");
    println!("min speedup across cells: {:.2}x", report.min_speedup());
    if report.any_mismatch() {
        eprintln!("FATAL: grid metrics diverged from linear metrics — byte-identity broken");
        std::process::exit(1);
    }
}
