//! Diagnostic: dump the full metrics breakdown for one run.

use ldr_bench::scenario::{Protocol, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    use ldr_bench::scenario::Ablation;
    let proto = match args.next().as_deref() {
        Some("aodv") => Protocol::Aodv,
        Some("dsr") => Protocol::Dsr,
        Some("olsr") => Protocol::Olsr,
        Some("ldr-noopt") => Protocol::LdrNoOpts,
        Some("ldr-nored") => Protocol::LdrWithout(Ablation::ReducedDistance),
        Some("ldr-nottl") => Protocol::LdrWithout(Ablation::OptimalTtl),
        Some("ldr-nolife") => Protocol::LdrWithout(Ablation::MinimumLifetime),
        _ => Protocol::Ldr,
    };
    let flows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let pause: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(600);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let mut sc =
        if nodes > 50 { Scenario::n100(flows, pause) } else { Scenario::n50(flows, pause) };
    sc.duration_secs = duration;
    sc.audit = true;
    let m = ldr_bench::run_once(proto, &sc, 11);
    println!("{} {flows}f pause={pause}s {duration}s", proto.name());
    println!("  originated      {}", m.data_originated);
    println!("  delivered       {} ({:.3})", m.data_delivered, m.delivery_ratio());
    println!("  latency         {:.4} s", m.mean_latency_s());
    println!("  data_tx_hops    {}", m.data_tx_hops);
    println!("  control_tx      {:?}", m.control_tx);
    println!("  control_init    {:?}", m.control_init);
    println!("  drops           {:?}", m.drops);
    println!("  proto counters  {:?}", m.proto);
    println!("  ifq_drops       {}", m.ifq_drops);
    println!("  mac_retry_fail  {}", m.mac_retry_failures);
    println!("  collisions      {}", m.collisions);
    println!("  loops           {}", m.loop_violations);
    println!("  mean_own_seqno  {:.2}", m.mean_own_seqno);
}
