//! Kernel profiling bench: per-phase wall-time attribution on the
//! paper scenarios, rendered as the profbench report and exportable
//! as `manet-prof` JSONL.
//!
//! ```text
//! cargo run --release -p ldr-bench --bin profbench -- --smoke
//! cargo run --release -p ldr-bench --bin profbench -- --smoke --check-purity \
//!     --out-dir telemetry-prof --table results/profbench.txt
//! ```
//!
//! Profiles every paper protocol on both paper scenarios (plus a
//! multi-worker LDR case for the parallel-efficiency breakdown),
//! asserts that at least `--min-attribution` percent of measured
//! kernel wall time lands in named phases, and — with
//! `--check-purity` — asserts the on-vs-off byte-identity
//! differential (metrics/trace/series unchanged by profiling, prof
//! count/hist section rerun-deterministic). Exits non-zero when
//! either gate fails.

use ldr_bench::profiling::{min_attribution, purity_check, render_report, run_profiled, ProfView};
use ldr_bench::scenario::{Protocol, Scenario};

fn main() {
    let mut full = false;
    let mut duration: Option<u64> = None;
    let mut only: Option<String> = None;
    let mut scenario_filter: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut table: Option<String> = None;
    let mut check_purity = false;
    let mut min_attr_pct = 95.0f64;
    let mut top_k = 10usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => full = false,
            "--full" => full = true,
            "--duration" => {
                duration =
                    Some(it.next().expect("--duration needs a value").parse().expect("seconds"))
            }
            "--only" => only = Some(it.next().expect("--only needs a protocol name")),
            "--scenario" => {
                scenario_filter =
                    Some(it.next().expect("--scenario needs a label (e.g. n100-f30-p0)"))
            }
            "--out-dir" => out_dir = Some(it.next().expect("--out-dir needs a directory")),
            "--table" => table = Some(it.next().expect("--table needs a path")),
            "--check-purity" => check_purity = true,
            "--min-attribution" => {
                min_attr_pct = it
                    .next()
                    .expect("--min-attribution needs a percentage")
                    .parse()
                    .expect("percentage")
            }
            "--top" => top_k = it.next().expect("--top needs a value").parse().expect("integer"),
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --smoke --full --duration SECS \
                     --only PROTO --scenario LABEL --out-dir DIR --table PATH \
                     --check-purity --min-attribution PCT --top K"
                );
                std::process::exit(2);
            }
        }
    }
    let duration = duration.unwrap_or(if full { 900 } else { 60 });

    let mut scenarios = vec![Scenario::n50(10, 0), Scenario::n100(30, 0)];
    for s in &mut scenarios {
        s.duration_secs = duration;
    }
    if let Some(f) = &scenario_filter {
        scenarios.retain(|s| &s.label() == f);
        if scenarios.is_empty() {
            eprintln!("--scenario {f} matches no paper scenario (n50-f10-p0, n100-f30-p0)");
            std::process::exit(2);
        }
    }
    let protocols: Vec<Protocol> = Protocol::PAPER_SET
        .into_iter()
        .filter(|p| only.as_deref().is_none_or(|o| p.name().eq_ignore_ascii_case(o)))
        .collect();
    if protocols.is_empty() {
        eprintln!("--only {:?} matches no paper protocol (LDR, AODV, DSR, OLSR)", only);
        std::process::exit(2);
    }

    let mut views: Vec<ProfView> = Vec::new();
    let mut docs: Vec<(String, String)> = Vec::new();
    for scenario in &scenarios {
        for &protocol in &protocols {
            eprintln!("profbench: {} on {} ({duration} s) ...", protocol.name(), scenario.label());
            let run = run_profiled(protocol, scenario, scenario.seed_base);
            docs.push((
                format!("prof-{}-{}.jsonl", scenario.label(), protocol.name().to_lowercase()),
                run.doc,
            ));
            views.push(run.view);
        }
        // One multi-worker case per scenario for the
        // parallel-efficiency breakdown.
        if protocols.contains(&Protocol::Ldr) {
            let par = Scenario { workers: 4, ..scenario.clone() };
            eprintln!("profbench: LDR on {} with workers=4 ...", scenario.label());
            let run = run_profiled(Protocol::Ldr, &par, par.seed_base);
            docs.push((format!("prof-{}-ldr-w4.jsonl", scenario.label()), run.doc));
            views.push(run.view);
        }
    }

    let report = render_report(&views, top_k);
    print!("{report}");

    if let Some(dir) = &out_dir {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).expect("create --out-dir");
        for (name, doc) in &docs {
            std::fs::write(dir.join(name), doc).expect("write prof jsonl");
        }
        println!("wrote {} prof file(s) to {}", docs.len(), dir.display());
    }
    if let Some(path) = &table {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, &report).expect("write profbench table");
        println!("wrote {path}");
    }

    let mut failed = false;
    let min_attr = 100.0 * min_attribution(&views);
    if min_attr < min_attr_pct {
        eprintln!(
            "ATTRIBUTION GATE FAILED: {min_attr:.2}% of kernel wall time attributed \
             (< {min_attr_pct:.2}% required)"
        );
        failed = true;
    } else {
        println!("attribution OK: ≥ {min_attr:.2}% of kernel wall time in named phases");
    }

    if check_purity {
        // The purity differential reruns each case three times; a
        // shorter slice is plenty to flush out an impure hook.
        for scenario in &scenarios {
            let short = Scenario { duration_secs: duration.min(30), ..scenario.clone() };
            for &protocol in &protocols {
                for workers in [1usize, 2] {
                    let case = Scenario { workers, ..short.clone() };
                    match purity_check(protocol, &case, case.seed_base) {
                        Ok(()) => eprintln!(
                            "purity OK: {} {} workers={workers}",
                            protocol.name(),
                            case.label()
                        ),
                        Err(e) => {
                            eprintln!("PURITY FAILED: {e}");
                            failed = true;
                        }
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
