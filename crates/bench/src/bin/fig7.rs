//! Regenerates Fig. 7: mean destination sequence number vs pause time,
//! LDR vs AODV, at 10 and 30 flows. `--full` for paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::fig7(&args);
}
