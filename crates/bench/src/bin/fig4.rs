//! Regenerates Fig. 4: delivery ratio vs pause time, 100 nodes,
//! 10 flows. `--full` for paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::delivery_figure(
        "Fig. 4 — delivery ratio, 100 nodes, 10 flows",
        100,
        10,
        &args,
    );
}
