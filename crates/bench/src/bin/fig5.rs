//! Regenerates Fig. 5: delivery ratio vs pause time, 100 nodes,
//! 30 flows. `--full` for paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::delivery_figure(
        "Fig. 5 — delivery ratio, 100 nodes, 30 flows",
        100,
        30,
        &args,
    );
}
