//! Trace forensics CLI: query an exported `manet-trace` JSONL file.
//!
//! ```text
//! tracegrep --trace FILE [QUERY...]
//!   --explain-packet FLOW,SEQ   hop-by-hop lifecycle of one data packet
//!   --route-lifetimes DST       install→invalidate spans + churn histogram
//!   --drops                     drop-reason breakdown over time
//!   --loops                     successor-cycle check replayed from the
//!                               route-mutation stream (independent of the
//!                               simulator's own audit)
//! ```
//!
//! Without a trace on disk, export one first:
//! `faultbench --telemetry-dir DIR` or
//! [`ldr_bench::telemetry_export::export_run`].

use ldr_bench::forensics::{self, TraceFile};
use std::io::Write;
use std::process::ExitCode;

enum Query {
    Explain { flow: u64, seq: u64 },
    RouteLifetimes { dst: u64 },
    Drops,
    Loops,
}

struct Args {
    trace: String,
    queries: Vec<Query>,
}

const USAGE: &str = "usage: tracegrep --trace FILE \
[--explain-packet FLOW,SEQ] [--route-lifetimes DST] [--drops] [--loops]";

fn parse_args() -> Result<Args, String> {
    let mut trace = None;
    let mut queries = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a file path")?);
            }
            "--explain-packet" => {
                let spec = it.next().ok_or("--explain-packet needs FLOW,SEQ")?;
                let (f, s) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("bad packet spec {spec:?}, want FLOW,SEQ"))?;
                let flow = f.trim().parse().map_err(|_| format!("bad flow id {f:?}"))?;
                let seq = s.trim().parse().map_err(|_| format!("bad seq {s:?}"))?;
                queries.push(Query::Explain { flow, seq });
            }
            "--route-lifetimes" => {
                let spec = it.next().ok_or("--route-lifetimes needs a destination id")?;
                let dst = spec.trim().parse().map_err(|_| format!("bad node id {spec:?}"))?;
                queries.push(Query::RouteLifetimes { dst });
            }
            "--drops" => queries.push(Query::Drops),
            "--loops" => queries.push(Query::Loops),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let trace = trace.ok_or(USAGE)?;
    if queries.is_empty() {
        return Err(format!("no query given\n{USAGE}"));
    }
    Ok(Args { trace, queries })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracegrep: cannot read {}: {e}", args.trace);
            return ExitCode::from(2);
        }
    };
    let trace = match TraceFile::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracegrep: {}: {e}", args.trace);
            return ExitCode::from(2);
        }
    };
    // Write through a fallible handle: a closed pipe (`tracegrep … |
    // head`) must end the program quietly, not panic mid-report.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if writeln!(
        out,
        "{}: {} events (seed {}, {} nodes)",
        args.trace,
        trace.events.len(),
        trace.header.u64_field("seed").unwrap_or(0),
        trace.header.u64_field("nodes").unwrap_or(0)
    )
    .is_err()
    {
        return ExitCode::SUCCESS;
    }
    for q in &args.queries {
        let report = match q {
            Query::Explain { flow, seq } => forensics::explain_packet(&trace, *flow, *seq),
            Query::RouteLifetimes { dst } => forensics::route_lifetimes(&trace, *dst),
            Query::Drops => forensics::drops_report(&trace),
            Query::Loops => forensics::loops_check(&trace),
        };
        if write!(out, "{report}").is_err() {
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}
