//! Trace forensics CLI: query an exported `manet-trace` JSONL file,
//! or render exported `manet-prof` profiler documents.
//!
//! ```text
//! tracegrep --trace FILE [QUERY...]
//!   --explain-packet FLOW,SEQ   hop-by-hop lifecycle of one data packet
//!   --route-lifetimes DST       install→invalidate spans + churn histogram
//!   --drops                     drop-reason breakdown over time
//!   --loops                     successor-cycle check replayed from the
//!                               route-mutation stream (independent of the
//!                               simulator's own audit)
//!
//! tracegrep --prof FILE [FILE...] [--top K]
//!   renders the profiler report for one or more `manet-prof` JSONL
//!   files: top-K phases by self time per run, the per-protocol cost
//!   table, and the parallel-efficiency breakdown for multi-worker
//!   runs
//! ```
//!
//! Without a trace on disk, export one first:
//! `faultbench --telemetry-dir DIR`, `profbench --out-dir DIR`, or
//! [`ldr_bench::telemetry_export::export_run`].

use ldr_bench::forensics::{self, TraceFile};
use ldr_bench::profiling::{render_report, ProfView};
use std::io::Write;
use std::process::ExitCode;

enum Query {
    Explain { flow: u64, seq: u64 },
    RouteLifetimes { dst: u64 },
    Drops,
    Loops,
}

struct Args {
    trace: Option<String>,
    queries: Vec<Query>,
    prof: Vec<String>,
    top: usize,
}

const USAGE: &str = "usage: tracegrep --trace FILE \
[--explain-packet FLOW,SEQ] [--route-lifetimes DST] [--drops] [--loops]
       tracegrep --prof FILE [FILE...] [--top K]";

fn parse_args() -> Result<Args, String> {
    let mut trace = None;
    let mut queries = Vec::new();
    let mut prof: Vec<String> = Vec::new();
    let mut top = 10usize;
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a file path")?);
            }
            "--prof" => {
                prof.push(it.next().ok_or("--prof needs at least one file path")?);
                while let Some(next) = it.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    prof.push(it.next().unwrap_or_default());
                }
            }
            "--top" => {
                let spec = it.next().ok_or("--top needs a value")?;
                top = spec.trim().parse().map_err(|_| format!("bad --top value {spec:?}"))?;
            }
            "--explain-packet" => {
                let spec = it.next().ok_or("--explain-packet needs FLOW,SEQ")?;
                let (f, s) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("bad packet spec {spec:?}, want FLOW,SEQ"))?;
                let flow = f.trim().parse().map_err(|_| format!("bad flow id {f:?}"))?;
                let seq = s.trim().parse().map_err(|_| format!("bad seq {s:?}"))?;
                queries.push(Query::Explain { flow, seq });
            }
            "--route-lifetimes" => {
                let spec = it.next().ok_or("--route-lifetimes needs a destination id")?;
                let dst = spec.trim().parse().map_err(|_| format!("bad node id {spec:?}"))?;
                queries.push(Query::RouteLifetimes { dst });
            }
            "--drops" => queries.push(Query::Drops),
            "--loops" => queries.push(Query::Loops),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if trace.is_none() && prof.is_empty() {
        return Err(USAGE.into());
    }
    if trace.is_some() && queries.is_empty() {
        return Err(format!("no query given\n{USAGE}"));
    }
    Ok(Args { trace, queries, prof, top })
}

/// Renders the `--prof` report for the given `manet-prof` files.
fn run_prof(files: &[String], top: usize) -> ExitCode {
    let mut views = Vec::new();
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tracegrep: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match ProfView::parse(&text) {
            Ok(v) => views.push(v),
            Err(e) => {
                eprintln!("tracegrep: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = write!(out, "{}", render_report(&views, top));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if !args.prof.is_empty() {
        return run_prof(&args.prof, args.top);
    }
    let Some(trace_path) = &args.trace else {
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracegrep: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match TraceFile::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracegrep: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    // Write through a fallible handle: a closed pipe (`tracegrep … |
    // head`) must end the program quietly, not panic mid-report.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if writeln!(
        out,
        "{}: {} events (seed {}, {} nodes)",
        trace_path,
        trace.events.len(),
        trace.header.u64_field("seed").unwrap_or(0),
        trace.header.u64_field("nodes").unwrap_or(0)
    )
    .is_err()
    {
        return ExitCode::SUCCESS;
    }
    for q in &args.queries {
        let report = match q {
            Query::Explain { flow, seq } => forensics::explain_packet(&trace, *flow, *seq),
            Query::RouteLifetimes { dst } => forensics::route_lifetimes(&trace, *dst),
            Query::Drops => forensics::drops_report(&trace),
            Query::Loops => forensics::loops_check(&trace),
        };
        if write!(out, "{report}").is_err() {
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}
