//! Fault-injection degradation table: delivery/latency/loop-violations
//! vs fault intensity (node crashes, link churn, partitions, loss and
//! corruption), LDR vs AODV vs DSR. `--full` for the deeper intensity
//! ladder at paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::fault_table(&args);
}
