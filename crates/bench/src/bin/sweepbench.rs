//! The experiment orchestrator CLI: memoized, resumable sweeps over
//! the paper grid, appended to the BENCH trajectory as `BENCH_6.json`.
//!
//! ```text
//! cargo run --release -p ldr-bench --bin sweepbench -- --smoke
//! cargo run --release -p ldr-bench --bin sweepbench -- --smoke --check BENCH_6.json
//! ```
//!
//! A sweep journals every cell as it completes (`--sweep-dir`), so a
//! killed run resumes where it stopped, and memoizes cells
//! content-addressed by their code-relevant configuration, so a rerun
//! over an unchanged tree executes zero cells and reproduces the BENCH
//! output byte for byte. `--check` compares that output against the
//! committed trajectory and exits non-zero on any drift (the CI
//! regression gate). `--max-cells N` stops after N executed cells —
//! the hook the resumability tests (and impatient humans) use.

use ldr_bench::sweep::{cells_for, full_cells, run_sweep, smoke_cells, SweepConfig};
use ldr_bench::workpool;

fn main() {
    let mut smoke = false;
    let mut full = false;
    let mut out = "BENCH_6.json".to_string();
    let mut table = "results/sweepbench.txt".to_string();
    let mut sweep_dir = ".sweep".to_string();
    let mut check: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut max_cells: Option<usize> = None;
    let mut fresh = false;
    let mut trials: Option<u32> = None;
    let mut duration: Option<u64> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--full" => full = true,
            "--out" => out = it.next().expect("--out needs a path"),
            "--table" => table = it.next().expect("--table needs a path"),
            "--sweep-dir" => sweep_dir = it.next().expect("--sweep-dir needs a directory"),
            "--check" => check = Some(it.next().expect("--check needs a path")),
            "--threads" => {
                threads =
                    Some(it.next().expect("--threads needs a value").parse().expect("integer"))
            }
            "--max-cells" => {
                max_cells =
                    Some(it.next().expect("--max-cells needs a value").parse().expect("integer"))
            }
            "--fresh" => fresh = true,
            "--trials" => {
                trials = Some(it.next().expect("--trials needs a value").parse().expect("integer"))
            }
            "--duration" => {
                duration =
                    Some(it.next().expect("--duration needs a value").parse().expect("seconds"))
            }
            "--telemetry-dir" => {
                telemetry_dir = Some(it.next().expect("--telemetry-dir needs a directory"))
            }
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --smoke --full --out PATH --table PATH \
                     --sweep-dir DIR --check PATH --threads N --max-cells N --fresh \
                     --trials N --duration SECS --telemetry-dir DIR"
                );
                std::process::exit(2);
            }
        }
    }
    let mode = if full { "full" } else { "smoke" };
    let _ = smoke; // smoke is the default grid
    let cells = match (trials, duration) {
        (None, None) if full => full_cells(),
        (None, None) => smoke_cells(),
        _ => cells_for(
            duration.unwrap_or(if full { 900 } else { 60 }),
            trials.unwrap_or(if full { 3 } else { 1 }),
            if full { &[0, 1, 2] } else { &[0, 1] },
        ),
    };

    let mut cfg = SweepConfig::rooted(std::path::Path::new(&sweep_dir));
    // The cells all run single-worker kernels, so the pool can use
    // every core; an explicit --threads overrides.
    cfg.threads = threads.unwrap_or_else(workpool::host_cores);
    cfg.max_cells = max_cells;
    cfg.fresh = fresh;

    eprintln!(
        "sweepbench {mode}: {} cells, {} pool thread(s), journal {}",
        cells.len(),
        cfg.threads,
        cfg.journal.display()
    );
    let outcome = match run_sweep(&cells, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(2);
        }
    };
    let rendered_table = outcome.to_table(mode);
    print!("{rendered_table}");

    if !outcome.complete() {
        let pending = outcome.cells.iter().filter(|(_, r)| r.is_none()).count();
        println!(
            "sweep paused after {} executed cell(s); {pending} pending — rerun to resume",
            outcome.executed
        );
        return;
    }

    let json = outcome.to_json(mode);
    if let Some(golden) = &check {
        let committed = std::fs::read_to_string(golden).unwrap_or_else(|e| {
            eprintln!("cannot read {golden}: {e}");
            std::process::exit(2);
        });
        if committed != json {
            let drift = committed
                .lines()
                .zip(json.lines())
                .position(|(a, b)| a != b)
                .map_or("length".to_string(), |i| format!("line {}", i + 1));
            eprintln!("REGRESSION: sweep output diverged from {golden} (first drift: {drift})");
            std::process::exit(1);
        }
        println!("check OK: output is byte-identical to {golden}");
    } else {
        std::fs::write(&out, &json).expect("write BENCH json");
        println!("wrote {out}");
    }
    if let Some(dir) = std::path::Path::new(&table).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // One representative telemetry export per paper protocol: the
    // grid's first scenario, fault-free seed, with the kernel profiler
    // attached — so the dir carries trace + series + prof JSONL for
    // each protocol alongside the sweep artifacts.
    if let Some(dir) = &telemetry_dir {
        let dir = std::path::Path::new(dir);
        let mut scenario = cells[0].scenario.clone();
        scenario.profile = true;
        for protocol in ldr_bench::Protocol::PAPER_SET {
            let prefix = format!("{}-{}", cells[0].scenario_name, protocol.name().to_lowercase());
            match ldr_bench::telemetry_export::export_run(
                protocol,
                &scenario,
                cells[0].seed,
                None,
                dir,
                &prefix,
            ) {
                Ok((_, paths)) => {
                    println!("telemetry: wrote {} (+series, +prof)", paths.trace.display())
                }
                Err(e) => {
                    eprintln!("telemetry export failed for {}: {e}", protocol.name());
                    std::process::exit(2);
                }
            }
        }
    }
    std::fs::write(&table, &rendered_table).expect("write sweep table");
    println!(
        "executed {} / memoized {} / journaled {} of {} cells; wrote {table}",
        outcome.executed,
        outcome.memo_hits,
        outcome.journal_hits,
        outcome.cells.len()
    );
    if outcome.failures() > 0 {
        eprintln!(
            "{} cell(s) FAILED (panicked trials recorded in the journal)",
            outcome.failures()
        );
        std::process::exit(1);
    }
}
