//! Wall-clock benchmark: the deterministic parallel event kernel vs
//! the sequential kernel on the paper-scale scenarios (plus a wide
//! sparse variant), all four protocols, fixed seeds. Writes
//! machine-readable `BENCH_5.json` and a human table.
//!
//! ```text
//! cargo run --release -p ldr-bench --bin perfbench_parallel            # full
//! cargo run --release -p ldr-bench --bin perfbench_parallel -- --smoke # CI
//! ```
//!
//! `--smoke` shortens the simulated time, runs one trial per cell and
//! benchmarks only 2 workers so CI finishes quickly; the full run
//! benchmarks 2, 4 and 8 workers. Exits non-zero if any parallel
//! trial's metrics diverge from its sequential twin (that would
//! falsify the byte-identity contract). Speedup is *recorded*, not
//! gated: the report carries `host_cores`, and on a single-core host
//! the honest numbers show overhead, not speedup.

use ldr_bench::perf_parallel::{parallel_cases, run_parallel_perfbench};

fn main() {
    let mut smoke = false;
    let mut out = "BENCH_5.json".to_string();
    let mut table = "results/perfbench-parallel.txt".to_string();
    let mut trials: Option<u32> = None;
    let mut duration: Option<u64> = None;
    let mut workers: Option<Vec<usize>> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path"),
            "--table" => table = it.next().expect("--table needs a path"),
            "--trials" => {
                trials = Some(it.next().expect("--trials needs a value").parse().expect("integer"))
            }
            "--duration" => {
                duration =
                    Some(it.next().expect("--duration needs a value").parse().expect("seconds"))
            }
            "--workers" => {
                let list = it.next().expect("--workers needs a comma-separated list");
                workers = Some(
                    list.split(',').map(|w| w.trim().parse().expect("worker count")).collect(),
                );
            }
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --smoke --out PATH --table PATH \
                     --trials N --duration SECS --workers LIST"
                );
                std::process::exit(2);
            }
        }
    }
    let (mode, default_duration, default_trials, default_workers): (_, _, _, &[usize]) =
        if smoke { ("smoke", 60, 1, &[2]) } else { ("full", 900, 3, &[2, 4, 8]) };
    let cases =
        parallel_cases(duration.unwrap_or(default_duration), trials.unwrap_or(default_trials));
    let worker_counts = workers.unwrap_or_else(|| default_workers.to_vec());
    let report = run_parallel_perfbench(&cases, &worker_counts, mode);

    std::fs::write(&out, report.to_json()).expect("write BENCH json");
    let rendered = report.to_table();
    if let Some(dir) = std::path::Path::new(&table).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&table, &rendered).expect("write perfbench-parallel table");
    print!("{rendered}");
    println!("\nwrote {out} and {table}");
    println!(
        "host cores: {}, max speedup across cells: {:.2}x, parallel windows: {}",
        report.host_cores,
        report.max_speedup(),
        report.total_parallel_windows()
    );
    if report.any_mismatch() {
        eprintln!("FATAL: parallel metrics diverged from sequential — byte-identity broken");
        std::process::exit(1);
    }
    if report.total_parallel_windows() == 0 {
        eprintln!("warning: the parallel path never engaged on any cell");
    }
}
