//! Regenerates Table 1: summary metrics averaged over all pause times
//! and both node counts, per flow count. `--full` for paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::table1(&args);
}
