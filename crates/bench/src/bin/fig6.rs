//! Regenerates Fig. 6: the Fig. 3 scenario under the alternate
//! simulator flavour with DSR draft 7. `--full` for paper scale.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::fig6(&args);
}
