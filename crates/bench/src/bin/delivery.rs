//! Generic delivery-vs-pause-time series for any scenario family:
//! `--scenario n50f10 | n50f30 | n100f10 | n100f30` (Figs. 2–5).

fn main() {
    let mut rest = Vec::new();
    let mut scenario = String::from("n50f10");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--scenario" {
            scenario = it.next().expect("--scenario needs a value");
        } else {
            rest.push(a);
        }
    }
    let (nodes, flows, fig) = match scenario.as_str() {
        "n50f10" => (50, 10, 2),
        "n50f30" => (50, 30, 3),
        "n100f10" => (100, 10, 4),
        "n100f30" => (100, 30, 5),
        other => {
            eprintln!("unknown scenario {other}; use n50f10 | n50f30 | n100f10 | n100f30");
            std::process::exit(2);
        }
    };
    let args = ldr_bench::experiments::Args::parse(rest.into_iter());
    ldr_bench::experiments::delivery_figure(
        &format!("Fig. {fig} — delivery ratio, {nodes} nodes, {flows} flows"),
        nodes,
        flows,
        &args,
    );
}
