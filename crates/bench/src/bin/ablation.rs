//! Ablation study: each LDR optimisation disabled individually.

fn main() {
    let args = ldr_bench::experiments::Args::parse(std::env::args().skip(1));
    ldr_bench::experiments::ablation(&args);
}
