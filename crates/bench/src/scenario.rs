//! Scenario and protocol definitions matching §4 of the paper.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig, Dsr, DsrConfig, Olsr, OlsrConfig};
use manet_sim::config::PhyConfig;
use manet_sim::geometry::Terrain;
use manet_sim::packet::NodeId;
use manet_sim::protocol::RoutingProtocol;

/// Which simulator parameterisation to emulate: the GloMoSim-style
/// default or the Qualnet-style alternate (Fig. 6 cross-check).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimFlavor {
    /// Default PHY/MAC timing.
    Default,
    /// Alternate contention timing ("a different simulator").
    Alt,
}

impl SimFlavor {
    /// The PHY configuration for this flavour.
    pub fn phy(self) -> PhyConfig {
        match self {
            SimFlavor::Default => PhyConfig::default(),
            SimFlavor::Alt => PhyConfig::alt_flavor(),
        }
    }
}

/// A protocol under evaluation (including ablation variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// LDR with all §4 optimisations (the paper's configuration).
    Ldr,
    /// LDR with every optimisation disabled (ablation baseline).
    LdrNoOpts,
    /// LDR with one optimisation disabled (ablation).
    LdrWithout(Ablation),
    /// AODV (draft 10).
    Aodv,
    /// AODV with §6.9 hello messages instead of pure link-layer
    /// feedback.
    AodvHello,
    /// DSR draft 3 (the GloMoSim runs).
    Dsr,
    /// DSR draft 7 flavour (the Qualnet cross-check).
    Dsr7,
    /// OLSR draft 6 with the paper's FIFO jitter queue.
    Olsr,
    /// OLSR without the jitter-queue fix (the "base OLSR").
    OlsrNoJitter,
}

/// One LDR optimisation to disable for ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ablation {
    /// Multiple RREPs per computation.
    MultipleRreps,
    /// Request-as-error.
    RequestAsError,
    /// Reduced (0.8×) answering distance.
    ReducedDistance,
    /// Minimum reply lifetime.
    MinimumLifetime,
    /// Optimal initial TTL.
    OptimalTtl,
}

impl Protocol {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Protocol::Ldr => "LDR".into(),
            Protocol::LdrNoOpts => "LDR-noopt".into(),
            Protocol::LdrWithout(a) => format!("LDR-{a:?}"),
            Protocol::Aodv => "AODV".into(),
            Protocol::AodvHello => "AODV-hello".into(),
            Protocol::Dsr => "DSR".into(),
            Protocol::Dsr7 => "DSR-d7".into(),
            Protocol::Olsr => "OLSR".into(),
            Protocol::OlsrNoJitter => "OLSR-nojit".into(),
        }
    }

    /// The four protocols of the paper's main comparison.
    pub const PAPER_SET: [Protocol; 4] =
        [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr, Protocol::Olsr];

    /// A per-node factory for [`manet_sim::world::World::new`].
    pub fn factory(self) -> Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>> {
        match self {
            Protocol::Ldr => Box::new(Ldr::factory(LdrConfig::default())),
            Protocol::LdrNoOpts => Box::new(Ldr::factory(LdrConfig::without_optimizations())),
            Protocol::LdrWithout(a) => {
                let mut cfg = LdrConfig::default();
                match a {
                    Ablation::MultipleRreps => cfg.opt_multiple_rreps = false,
                    Ablation::RequestAsError => cfg.opt_request_as_error = false,
                    Ablation::ReducedDistance => cfg.opt_reduced_distance = None,
                    Ablation::MinimumLifetime => cfg.opt_minimum_lifetime = false,
                    Ablation::OptimalTtl => cfg.opt_optimal_ttl = false,
                }
                Box::new(Ldr::factory(cfg))
            }
            Protocol::Aodv => Box::new(Aodv::factory(AodvConfig::default())),
            Protocol::AodvHello => {
                let cfg = AodvConfig {
                    hello_interval: Some(manet_sim::time::SimDuration::from_secs(1)),
                    ..AodvConfig::default()
                };
                Box::new(Aodv::factory(cfg))
            }
            Protocol::Dsr => Box::new(Dsr::factory(DsrConfig::draft3())),
            Protocol::Dsr7 => Box::new(Dsr::factory(DsrConfig::draft7())),
            Protocol::Olsr => Box::new(Olsr::factory(OlsrConfig::default())),
            Protocol::OlsrNoJitter => Box::new(Olsr::factory(OlsrConfig::without_jitter_queue())),
        }
    }
}

/// One evaluation configuration (a point on a figure's x axis).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Number of nodes (50 or 100 in the paper).
    pub n_nodes: usize,
    /// Terrain in metres (1500×300 or 2200×600).
    pub terrain: (f64, f64),
    /// Concurrent CBR flows (10 or 30).
    pub n_flows: usize,
    /// Random-waypoint pause time in seconds.
    pub pause_secs: u64,
    /// Run length in seconds (900 in the paper).
    pub duration_secs: u64,
    /// Trials per configuration (10 in the paper).
    pub trials: u32,
    /// Base seed; trial `k` uses `seed_base.wrapping_add(k)`
    /// ([`crate::runner::trial_seed`]).
    pub seed_base: u64,
    /// Simulator flavour.
    pub flavor: SimFlavor,
    /// Run the loop auditor during the run (records violations).
    pub audit: bool,
    /// Serve range queries from the spatial neighbor grid
    /// ([`manet_sim::spatial`]). Byte-identical to the linear scan —
    /// only faster — so it defaults to on; perfbench flips it off to
    /// time the reference baseline.
    pub spatial_grid: bool,
    /// Worker threads for the deterministic parallel event kernel
    /// (`manet_sim::parallel`). `0`/`1` run the sequential kernel; any
    /// value is byte-identical, so this only changes wall-clock time.
    pub workers: usize,
    /// Recycle hot-path buffers through the kernel's free lists
    /// ([`manet_sim::pool`]). Byte-identical to allocate-per-event —
    /// only faster — so it defaults to on; the pool differential tests
    /// flip it off to diff against the reference path.
    pub recycle_pools: bool,
    /// Attach the deterministic kernel profiler
    /// ([`manet_sim::prof`]): per-phase wall-time attribution plus
    /// deterministic counts and histograms, exported as `manet-prof`
    /// JSONL by [`crate::telemetry_export`]. Strictly observational —
    /// metrics, trace and series are byte-identical with this on or
    /// off (enforced by the prof purity tests) — and off by default.
    pub profile: bool,
}

impl Scenario {
    /// The paper's 50-node scenario: 1500 m × 300 m.
    pub fn n50(n_flows: usize, pause_secs: u64) -> Self {
        Scenario {
            n_nodes: 50,
            terrain: (1500.0, 300.0),
            n_flows,
            pause_secs,
            duration_secs: 900,
            trials: 10,
            seed_base: 1000,
            flavor: SimFlavor::Default,
            audit: false,
            spatial_grid: true,
            workers: 1,
            recycle_pools: true,
            profile: false,
        }
    }

    /// The paper's 100-node scenario: 2200 m × 600 m.
    pub fn n100(n_flows: usize, pause_secs: u64) -> Self {
        Scenario { n_nodes: 100, terrain: (2200.0, 600.0), ..Scenario::n50(n_flows, pause_secs) }
    }

    /// Scales the scenario down for quick/CI runs: shorter runs, fewer
    /// trials.
    pub fn quick(mut self) -> Self {
        self.duration_secs = 200;
        self.trials = 3;
        self
    }

    /// The terrain as a [`Terrain`].
    pub fn terrain(&self) -> Terrain {
        Terrain::new(self.terrain.0, self.terrain.1)
    }

    /// A stable label for file names and prof headers
    /// (`n<nodes>-f<flows>-p<pause>`), matching the perfbench case
    /// names.
    pub fn label(&self) -> String {
        format!("n{}-f{}-p{}", self.n_nodes, self.n_flows, self.pause_secs)
    }

    /// The paper's pause-time sweep.
    pub const PAUSE_SWEEP: [u64; 7] = [0, 30, 60, 120, 300, 600, 900];

    /// Reduced sweep for quick runs.
    pub const PAUSE_SWEEP_QUICK: [u64; 3] = [0, 120, 600];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_match_section4() {
        let s = Scenario::n50(10, 30);
        assert_eq!((s.n_nodes, s.n_flows, s.pause_secs), (50, 10, 30));
        assert_eq!(s.terrain, (1500.0, 300.0));
        assert_eq!((s.duration_secs, s.trials), (900, 10));
        let b = Scenario::n100(30, 0);
        assert_eq!(b.terrain, (2200.0, 600.0));
        assert_eq!(b.n_nodes, 100);
    }

    #[test]
    fn quick_scales_down() {
        let s = Scenario::n50(10, 0).quick();
        assert!(s.duration_secs < 900 && s.trials < 10);
        assert_eq!(s.n_nodes, 50, "topology untouched");
    }

    #[test]
    fn protocol_names_unique() {
        let names: Vec<String> = Protocol::PAPER_SET.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn factories_produce_correctly_named_protocols() {
        for (p, expect) in [
            (Protocol::Ldr, "LDR"),
            (Protocol::Aodv, "AODV"),
            (Protocol::Dsr, "DSR"),
            (Protocol::Olsr, "OLSR"),
        ] {
            let mut f = p.factory();
            assert_eq!(f(NodeId(0), 2).name(), expect);
        }
    }
}
