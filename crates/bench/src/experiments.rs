//! The paper's experiments, one function per table/figure, shared by
//! the `table1`, `fig2`–`fig7` and `ablation` binaries.

use crate::report::{print_series, print_table, Summary};
use crate::runner::{run_fault_trials, run_trials};
use crate::scenario::{Ablation, Protocol, Scenario, SimFlavor};

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Args {
    /// Paper-scale runs (900 s, 10 trials, full pause sweep) instead of
    /// the quick defaults.
    pub full: bool,
    /// Override the trial count.
    pub trials: Option<u32>,
    /// Override the run length in seconds.
    pub duration: Option<u64>,
    /// Override the pause-time sweep.
    pub pauses: Option<Vec<u64>>,
    /// Run the loop auditor during every run.
    pub audit: bool,
    /// Export telemetry (JSONL trace + time series) for one
    /// representative trial per experiment cell into this directory.
    pub telemetry_dir: Option<String>,
}

impl Args {
    /// Parses the common flags; unknown flags abort with a usage
    /// message.
    pub fn parse(argv: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut it = argv.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--quick" => args.full = false,
                "--audit" => args.audit = true,
                "--trials" => {
                    let v = it.next().expect("--trials needs a value");
                    args.trials = Some(v.parse().expect("--trials expects an integer"));
                }
                "--duration" => {
                    let v = it.next().expect("--duration needs a value");
                    args.duration = Some(v.parse().expect("--duration expects seconds"));
                }
                "--pauses" => {
                    let v = it.next().expect("--pauses needs a csv list");
                    args.pauses = Some(
                        v.split(',')
                            .map(|s| s.trim().parse().expect("--pauses expects integers"))
                            .collect(),
                    );
                }
                "--telemetry-dir" => {
                    args.telemetry_dir =
                        Some(it.next().expect("--telemetry-dir needs a directory"));
                }
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --quick --full --audit \
                         --trials N --duration SECS --pauses a,b,c --telemetry-dir DIR"
                    );
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// The pause sweep this invocation should use.
    pub fn pause_sweep(&self) -> Vec<u64> {
        match &self.pauses {
            Some(p) => p.clone(),
            None if self.full => Scenario::PAUSE_SWEEP.to_vec(),
            None => Scenario::PAUSE_SWEEP_QUICK.to_vec(),
        }
    }

    /// Applies scale and overrides to a base scenario.
    pub fn apply(&self, mut s: Scenario) -> Scenario {
        if !self.full {
            s = s.quick();
        }
        if let Some(t) = self.trials {
            s.trials = t;
        }
        if let Some(d) = self.duration {
            s.duration_secs = d;
        }
        s.audit = self.audit;
        s
    }
}

/// The four (nodes, flows) scenario families of §4.
pub const FAMILIES: [(&str, usize, usize); 4] = [
    ("50 nodes, 10 flows (40 pps)", 50, 10),
    ("50 nodes, 30 flows (120 pps)", 50, 30),
    ("100 nodes, 10 flows (40 pps)", 100, 10),
    ("100 nodes, 30 flows (120 pps)", 100, 30),
];

fn base_scenario(n_nodes: usize, n_flows: usize, pause: u64) -> Scenario {
    if n_nodes <= 50 {
        Scenario::n50(n_flows, pause)
    } else {
        Scenario::n100(n_flows, pause)
    }
}

/// **Table 1**: for each flow count, averages every §4 metric over all
/// pause times and both node counts, per protocol.
pub fn table1(args: &Args) {
    let pauses = args.pause_sweep();
    for flows in [10usize, 30] {
        let mut rows: Vec<Summary> = Vec::new();
        for proto in Protocol::PAPER_SET {
            let mut total = Summary::new(proto.name());
            for &nodes in &[50usize, 100] {
                for &pause in &pauses {
                    let sc = args.apply(base_scenario(nodes, flows, pause));
                    let s = run_trials(proto, &sc);
                    total.merge(&s);
                }
            }
            eprintln!("  [table1] {} ({flows} flows) done", proto.name());
            rows.push(total);
        }
        print_table(
            &format!("Table 1 — {flows} flows (mean ± 95% CI over pause times and node counts)"),
            &rows,
        );
    }
}

/// **Figs. 2–5**: delivery ratio vs pause time for one (nodes, flows)
/// family, all four protocols.
pub fn delivery_figure(title: &str, n_nodes: usize, n_flows: usize, args: &Args) {
    delivery_figure_with(title, n_nodes, n_flows, args, SimFlavor::Default, Protocol::Dsr);
}

/// **Fig. 6**: the Fig. 3 scenario re-run under the alternate simulator
/// flavour with DSR draft 7.
pub fn fig6(args: &Args) {
    delivery_figure_with(
        "Fig. 6 — delivery ratio, 50 nodes, 30 flows (alternate simulator, DSR draft 7)",
        50,
        30,
        args,
        SimFlavor::Alt,
        Protocol::Dsr7,
    );
}

fn delivery_figure_with(
    title: &str,
    n_nodes: usize,
    n_flows: usize,
    args: &Args,
    flavor: SimFlavor,
    dsr_variant: Protocol,
) {
    let pauses = args.pause_sweep();
    let protocols = [Protocol::Ldr, Protocol::Aodv, dsr_variant, Protocol::Olsr];
    let names: Vec<String> = protocols.iter().map(|p| p.name()).collect();
    let mut cells: Vec<Vec<(f64, f64)>> = vec![Vec::new(); protocols.len()];
    for &pause in &pauses {
        for (i, proto) in protocols.iter().enumerate() {
            let mut sc = args.apply(base_scenario(n_nodes, n_flows, pause));
            sc.flavor = flavor;
            let s = run_trials(*proto, &sc);
            cells[i].push((s.delivery.mean(), s.delivery.ci95_half_width()));
        }
        eprintln!("  [{title}] pause {pause}s done");
    }
    print_series(title, "pause(s)", &pauses, &names, &cells);
}

/// **Fig. 7**: mean destination sequence number vs pause time, LDR vs
/// AODV, at low (10-flow) and high (30-flow) load.
pub fn fig7(args: &Args) {
    let pauses = args.pause_sweep();
    for flows in [10usize, 30] {
        let protocols = [Protocol::Ldr, Protocol::Aodv];
        let names: Vec<String> = protocols.iter().map(|p| p.name()).collect();
        let mut cells: Vec<Vec<(f64, f64)>> = vec![Vec::new(); protocols.len()];
        for &pause in &pauses {
            for (i, proto) in protocols.iter().enumerate() {
                let sc = args.apply(base_scenario(50, flows, pause));
                let s = run_trials(*proto, &sc);
                cells[i].push((s.mean_seqno.mean(), s.mean_seqno.ci95_half_width()));
            }
            eprintln!("  [fig7/{flows}f] pause {pause}s done");
        }
        print_series(
            &format!("Fig. 7 — mean destination sequence number, 50 nodes, {flows} flows"),
            "pause(s)",
            &pauses,
            &names,
            &cells,
        );
    }
}

/// **Fault degradation table**: delivery, latency and loop-audit
/// violations as the fault intensity ramps from fault-free (level 0)
/// through heavy crash/churn/partition/impairment schedules, LDR vs
/// AODV vs DSR. Every protocol faces the *same* per-trial fault plans
/// (the schedule is a pure function of the scenario, seed and level),
/// so the rows are directly comparable — and the loop-violation column
/// is the paper's safety claim under fire: LDR must stay at zero while
/// AODV's restart unsoundness is allowed to show.
pub fn fault_table(args: &Args) {
    let protocols = [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr];
    let levels: &[u32] = if args.full { &[0, 1, 2, 3, 4] } else { &[0, 1, 2] };
    let mut sc = args.apply(base_scenario(50, 10, 60));
    sc.audit = true; // the loop-violation column needs the auditor
    println!(
        "\n=== Fault degradation — {} nodes, {} flows, {} trials/cell ===",
        sc.n_nodes, sc.n_flows, sc.trials
    );
    println!(
        "{:>5} {:<10} {:>16} {:>16} {:>8} {:>9} {:>7}",
        "level", "protocol", "delivery", "latency(s)", "faults", "restarts", "loops"
    );
    for &level in levels {
        for proto in protocols {
            let s = run_fault_trials(proto, &sc, level);
            println!(
                "{:>5} {:<10} {:>16} {:>16} {:>8} {:>9} {:>7}",
                level,
                s.protocol,
                s.delivery.display(3),
                s.latency.display(3),
                s.faults_injected,
                s.node_restarts,
                s.loop_violations,
            );
            // One representative trial (the first seed, same fault
            // plan) re-run with the telemetry layer for forensics.
            if let Some(dir) = &args.telemetry_dir {
                let seed = sc.seed_base;
                let plan = crate::runner::trial_fault_plan(&sc, seed, level);
                let prefix = format!("fault-l{level}-{}", proto.name().to_lowercase());
                match crate::telemetry_export::export_run(
                    proto,
                    &sc,
                    seed,
                    Some(plan),
                    std::path::Path::new(dir),
                    &prefix,
                ) {
                    Ok((_, paths)) => {
                        eprintln!("  [faultbench] telemetry → {}", paths.trace.display());
                    }
                    Err(e) => eprintln!("  [faultbench] telemetry export failed: {e}"),
                }
            }
        }
        eprintln!("  [faultbench] level {level} done");
    }
}

/// **Ablation**: each LDR optimisation disabled individually (plus all
/// disabled), on the 50-node 10-flow scenario.
pub fn ablation(args: &Args) {
    let variants = [
        Protocol::Ldr,
        Protocol::LdrWithout(Ablation::MultipleRreps),
        Protocol::LdrWithout(Ablation::RequestAsError),
        Protocol::LdrWithout(Ablation::ReducedDistance),
        Protocol::LdrWithout(Ablation::MinimumLifetime),
        Protocol::LdrWithout(Ablation::OptimalTtl),
        Protocol::LdrNoOpts,
    ];
    let pauses = args.pause_sweep();
    let mut rows = Vec::new();
    for proto in variants {
        let mut total = Summary::new(proto.name());
        for &pause in &pauses {
            let sc = args.apply(base_scenario(50, 10, pause));
            total.merge(&run_trials(proto, &sc));
        }
        eprintln!("  [ablation] {} done", proto.name());
        rows.push(total);
    }
    print_table("Ablation — LDR optimisations, 50 nodes, 10 flows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter().map(|x| x.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn parse_defaults_to_quick() {
        let a = Args::parse(argv(&[]));
        assert!(!a.full);
        assert_eq!(a.pause_sweep(), Scenario::PAUSE_SWEEP_QUICK.to_vec());
    }

    #[test]
    fn parse_full_and_overrides() {
        let a = Args::parse(argv(&["--full", "--trials", "4", "--duration", "300", "--audit"]));
        assert!(a.full && a.audit);
        assert_eq!(a.trials, Some(4));
        assert_eq!(a.duration, Some(300));
        assert_eq!(a.pause_sweep(), Scenario::PAUSE_SWEEP.to_vec());
    }

    #[test]
    fn parse_pauses_csv() {
        let a = Args::parse(argv(&["--pauses", "0,60,900"]));
        assert_eq!(a.pause_sweep(), vec![0, 60, 900]);
    }

    #[test]
    fn apply_respects_quick_and_overrides() {
        let a = Args::parse(argv(&["--trials", "2", "--duration", "50"]));
        let s = a.apply(Scenario::n50(10, 0));
        assert_eq!(s.trials, 2);
        assert_eq!(s.duration_secs, 50);
        let f = Args::parse(argv(&["--full"])).apply(Scenario::n50(10, 0));
        assert_eq!((f.trials, f.duration_secs), (10, 900));
    }
}
