//! The profbench engine and `manet-prof` report renderer.
//!
//! Runs profiled trials ([`run_profiled`]), parses exported
//! `manet-prof` JSONL back into a [`ProfView`] (the shape `tracegrep
//! --prof` consumes), renders the attribution report — top-K phases,
//! per-protocol cost table, parallel-efficiency breakdown — and hosts
//! the on-vs-off purity differential ([`purity_check`]) that CI's
//! prof-smoke job asserts.

use crate::forensics::Json;
use crate::runner::build_world_telemetry;
use crate::scenario::{Protocol, Scenario};
use crate::telemetry_export::render_run;
use manet_sim::prof::{deterministic_section, prof_to_jsonl, ProfSnapshot};
use manet_sim::telemetry::TelemetryConfig;
use manet_sim::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A parsed (or freshly measured) profile of one run — everything the
/// report renderer needs, whether the numbers came from a live
/// [`ProfSnapshot`] or from a `manet-prof` JSONL file on disk.
#[derive(Clone, Debug)]
pub struct ProfView {
    /// Protocol name from the header.
    pub protocol: String,
    /// Scenario label from the header.
    pub scenario: String,
    /// Kernel worker threads.
    pub workers: u64,
    /// Deterministic counters, in document order (phase counts, pool
    /// hit/miss, `events_executed`, `parallel_windows`).
    pub counts: Vec<(String, u64)>,
    /// Histograms: name → per-bucket counts (power-of-two buckets).
    pub hists: Vec<(String, Vec<u64>)>,
    /// Wall self-time per phase, nanoseconds.
    pub timings: Vec<(String, u64)>,
    /// Total measured kernel wall time (the `total` timing line).
    pub total_nanos: u64,
}

impl ProfView {
    /// Builds a view from a live snapshot plus its header fields.
    pub fn from_snapshot(
        seed: u64,
        nodes: usize,
        workers: usize,
        protocol: &str,
        scenario: &str,
        snap: &ProfSnapshot,
    ) -> Self {
        let doc = prof_to_jsonl(seed, nodes, workers, protocol, scenario, snap);
        // Round-trip through the renderer: one code path defines the
        // document, the parser is its single consumer.
        match ProfView::parse(&doc) {
            Ok(v) => v,
            Err(e) => unreachable!("self-rendered prof document must parse: {e}"),
        }
    }

    /// Parses one `manet-prof` JSONL document.
    pub fn parse(doc: &str) -> Result<ProfView, String> {
        let mut lines = doc.lines();
        let head = lines.next().ok_or("empty prof document")?;
        let head = Json::parse(head).ok_or_else(|| format!("unparseable header: {head}"))?;
        if head.str_field("schema") != Some("manet-prof") {
            return Err(format!("not a manet-prof file (schema {:?})", head.str_field("schema")));
        }
        if head.u64_field("version") != Some(1) {
            return Err(format!("unsupported manet-prof version {:?}", head.u64_field("version")));
        }
        let mut view = ProfView {
            protocol: head.str_field("protocol").unwrap_or("?").to_string(),
            scenario: head.str_field("scenario").unwrap_or("?").to_string(),
            workers: head.u64_field("workers").unwrap_or(1),
            counts: Vec::new(),
            hists: Vec::new(),
            timings: Vec::new(),
            total_nanos: 0,
        };
        for (lineno, line) in lines.enumerate() {
            let v = Json::parse(line)
                .ok_or_else(|| format!("line {}: unparseable: {line}", lineno + 2))?;
            let name =
                v.str_field("name").ok_or_else(|| format!("line {}: no name", lineno + 2))?;
            match v.str_field("sect") {
                Some("count") => {
                    let c = v.u64_field("count").unwrap_or(0);
                    view.counts.push((name.to_string(), c));
                }
                Some("hist") => {
                    let buckets = match v.get("buckets") {
                        Some(Json::Arr(items)) => {
                            items.iter().map(|b| b.as_u64().unwrap_or(0)).collect()
                        }
                        _ => Vec::new(),
                    };
                    view.hists.push((name.to_string(), buckets));
                }
                Some("timing") => {
                    let ns = v.u64_field("nanos").unwrap_or(0);
                    if name == "total" {
                        view.total_nanos = ns;
                    } else {
                        view.timings.push((name.to_string(), ns));
                    }
                }
                other => return Err(format!("line {}: unknown sect {other:?}", lineno + 2)),
            }
        }
        Ok(view)
    }

    /// A deterministic counter by name.
    pub fn count(&self, name: &str) -> u64 {
        self.counts.iter().find(|(n, _)| n == name).map_or(0, |(_, c)| *c)
    }

    /// A phase's wall self-time by name, nanoseconds.
    pub fn timing(&self, name: &str) -> u64 {
        self.timings.iter().find(|(n, _)| n == name).map_or(0, |(_, ns)| *ns)
    }

    /// Fraction of measured kernel wall time attributed to named
    /// phases (everything except the `kern_loop` bottom-frame
    /// residue); 1.0 when nothing was measured.
    pub fn attribution(&self) -> f64 {
        if self.total_nanos == 0 {
            1.0
        } else {
            let named = self.total_nanos - self.timing("kern_loop");
            named as f64 / self.total_nanos as f64
        }
    }

    /// Kernel events per wall second (0 when no time was measured).
    pub fn events_per_sec(&self) -> f64 {
        if self.total_nanos == 0 {
            0.0
        } else {
            self.count("events_executed") as f64 / (self.total_nanos as f64 / 1e9)
        }
    }

    /// The `timings` sorted descending, excluding zero phases.
    pub fn top_phases(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.timings.iter().filter(|(_, ns)| *ns > 0).cloned().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// One profiled trial: the live snapshot view plus the exportable
/// JSONL document and the run's headline numbers.
#[derive(Clone, Debug)]
pub struct ProfRun {
    /// The parsed profile.
    pub view: ProfView,
    /// The full `manet-prof` JSONL document (exportable as-is).
    pub doc: String,
    /// Events the kernel executed.
    pub events: u64,
}

/// Runs one trial with the profiler (and default telemetry) attached
/// and returns its profile. Deterministic in `(protocol, scenario,
/// seed)` up to the non-gated wall-time section.
pub fn run_profiled(protocol: Protocol, scenario: &Scenario, seed: u64) -> ProfRun {
    let profiled = Scenario { profile: true, ..scenario.clone() };
    let mut world =
        build_world_telemetry(protocol, &profiled, seed, None, Some(TelemetryConfig::default()));
    world.run_until(SimTime::ZERO + SimDuration::from_secs(profiled.duration_secs));
    world.finalize();
    let events = world.events_executed();
    let snap = match world.prof_snapshot() {
        Some(s) => s,
        None => unreachable!("profile was just enabled"),
    };
    let doc = prof_to_jsonl(
        seed,
        profiled.n_nodes,
        profiled.workers.max(1),
        &protocol.name(),
        &profiled.label(),
        &snap,
    );
    let view = ProfView::from_snapshot(
        seed,
        profiled.n_nodes,
        profiled.workers.max(1),
        &protocol.name(),
        &profiled.label(),
        &snap,
    );
    ProfRun { view, doc, events }
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// Renders the attribution report for a set of profiles: per-run
/// top-K phase tables, the per-protocol cost table, and a
/// parallel-efficiency breakdown for multi-worker runs.
pub fn render_report(views: &[ProfView], top_k: usize) -> String {
    let mut out = String::new();
    for v in views {
        let _ = writeln!(
            out,
            "== {} · {} · workers={} ==  total {:.3} ms, attribution {:.2}%",
            v.protocol,
            v.scenario,
            v.workers,
            v.total_nanos as f64 / 1e6,
            100.0 * v.attribution(),
        );
        let _ = writeln!(out, "{:<26} {:>12} {:>8} {:>14}", "phase", "self ns", "%", "count");
        for (name, ns) in v.top_phases().into_iter().take(top_k) {
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>7.2}% {:>14}",
                name,
                ns,
                pct(ns, v.total_nanos),
                v.count(&name),
            );
        }
        out.push('\n');
    }

    let _ = writeln!(out, "-- per-protocol cost --");
    let _ = writeln!(
        out,
        "{:<12} {:<14} {:>3} {:>12} {:>11} {:>9} {:>12} {:>7}",
        "protocol", "scenario", "w", "events", "wall ms", "ns/event", "events/s", "attr%"
    );
    for v in views {
        let events = v.count("events_executed");
        let ns_per_event = if events == 0 { 0.0 } else { v.total_nanos as f64 / events as f64 };
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>3} {:>12} {:>11.3} {:>9.1} {:>12.0} {:>6.2}%",
            v.protocol,
            v.scenario,
            v.workers,
            events,
            v.total_nanos as f64 / 1e6,
            ns_per_event,
            v.events_per_sec(),
            100.0 * v.attribution(),
        );
    }

    let parallel: Vec<&ProfView> = views.iter().filter(|v| v.workers >= 2).collect();
    if !parallel.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "-- parallel efficiency --");
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
            "protocol", "scenario", "w", "plan%", "build%", "exec%", "replay%", "seq%", "windows"
        );
        for v in parallel {
            let plan = v.timing("par_plan");
            let build = v.timing("par_build");
            let exec = v.timing("par_execute");
            let replay = v.timing("par_replay");
            let seq = v.total_nanos.saturating_sub(plan + build + exec + replay);
            let _ = writeln!(
                out,
                "{:<12} {:<14} {:>3} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>10}",
                v.protocol,
                v.scenario,
                v.workers,
                pct(plan, v.total_nanos),
                pct(build, v.total_nanos),
                pct(exec, v.total_nanos),
                pct(replay, v.total_nanos),
                pct(seq, v.total_nanos),
                v.count("parallel_windows"),
            );
        }
    }
    out
}

/// The smallest attribution across a set of profiles (1.0 for an
/// empty set). The acceptance gate requires ≥ 0.95 on the paper
/// scenarios.
pub fn min_attribution(views: &[ProfView]) -> f64 {
    views.iter().map(ProfView::attribution).fold(1.0, f64::min)
}

/// The on-vs-off purity differential: runs `(protocol, scenario,
/// seed)` once with profiling off and once with it on, and demands
/// metrics, trace and series stay byte-identical. Returns a
/// description of the first divergence, if any.
pub fn purity_check(protocol: Protocol, scenario: &Scenario, seed: u64) -> Result<(), String> {
    let off = render_run(protocol, &Scenario { profile: false, ..scenario.clone() }, seed, None);
    let on = render_run(protocol, &Scenario { profile: true, ..scenario.clone() }, seed, None);
    if off.metrics != on.metrics {
        return Err(format!(
            "metrics diverged with profiling on ({} {} seed {seed})",
            protocol.name(),
            scenario.label()
        ));
    }
    if off.trace != on.trace {
        return Err(format!(
            "trace JSONL diverged with profiling on ({} {} seed {seed})",
            protocol.name(),
            scenario.label()
        ));
    }
    if off.series != on.series {
        return Err(format!(
            "series JSONL diverged with profiling on ({} {} seed {seed})",
            protocol.name(),
            scenario.label()
        ));
    }
    if off.prof.is_some() {
        return Err("unprofiled run rendered a prof document".to_string());
    }
    match &on.prof {
        None => return Err("profiled run rendered no prof document".to_string()),
        Some(doc) => {
            // The deterministic section must reproduce on a rerun.
            let rerun =
                render_run(protocol, &Scenario { profile: true, ..scenario.clone() }, seed, None);
            let a = deterministic_section(doc);
            let b = rerun.prof.as_deref().map(deterministic_section).unwrap_or_default();
            if a != b {
                return Err(format!(
                    "prof count/hist section not rerun-deterministic ({} {} seed {seed})",
                    protocol.name(),
                    scenario.label()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario { duration_secs: 12, trials: 1, ..Scenario::n50(3, 0) }
    }

    #[test]
    fn profiled_run_attributes_and_round_trips() {
        let run = run_profiled(Protocol::Ldr, &tiny(), 5);
        assert!(run.events > 0);
        assert_eq!(run.view.count("events_executed"), run.events);
        assert!(run.view.total_nanos > 0, "a real run measures time");
        let reparsed = ProfView::parse(&run.doc).expect("export parses");
        assert_eq!(reparsed.counts, run.view.counts);
        assert_eq!(reparsed.timings, run.view.timings);
        assert_eq!(reparsed.total_nanos, run.view.total_nanos);
        // Self times are exclusive, so the phase lines sum to total.
        let sum: u64 = run.view.timings.iter().map(|(_, ns)| ns).sum();
        assert_eq!(sum, run.view.total_nanos);
    }

    #[test]
    fn report_renders_all_sections() {
        let seq = run_profiled(Protocol::Ldr, &tiny(), 5);
        let par = run_profiled(Protocol::Aodv, &Scenario { workers: 2, ..tiny() }, 5);
        let report = render_report(&[seq.view, par.view.clone()], 8);
        assert!(report.contains("-- per-protocol cost --"));
        assert!(report.contains("-- parallel efficiency --"));
        assert!(report.contains("LDR"));
        assert!(report.contains("AODV"));
        assert!(par.view.workers == 2);
    }

    #[test]
    fn purity_holds_on_a_small_run() {
        purity_check(Protocol::Ldr, &tiny(), 5).expect("profiling must be observation-pure");
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(ProfView::parse("").is_err());
        assert!(ProfView::parse("{\"schema\":\"manet-trace\",\"version\":1}").is_err());
        assert!(ProfView::parse("{\"schema\":\"manet-prof\",\"version\":2}").is_err());
    }
}
