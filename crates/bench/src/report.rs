//! Aggregation and table formatting for the paper's six metrics.

use manet_sim::metrics::Metrics;
use manet_sim::stats::Accumulator;

/// The scoreboard's throughput figure: kernel events per *simulated*
/// second per core. Both inputs are deterministic (the kernel's event
/// counter and the cell's configuration), so — unlike a wall-clock
/// rate — the column reproduces byte-exactly on reruns and can live
/// in committed artifacts like `BENCH_6.json`-derived tables.
/// `cores` is the worker count (1 for the sequential kernel).
pub fn events_per_simsec_core(events: u64, sim_secs: u64, cores: u64) -> f64 {
    let denom = (sim_secs * cores.max(1)) as f64;
    if denom == 0.0 {
        0.0
    } else {
        events as f64 / denom
    }
}

/// One trial that panicked instead of producing metrics. The runner
/// catches the unwind, records the cell here, and keeps the sweep
/// going — a single bad trial no longer discards every completed cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// The trial's seed, for exact reproduction with `run_once`.
    pub seed: u64,
    /// The panic payload, stringified.
    pub panic_msg: String,
}

/// Per-protocol aggregate over trials: the six §4 metrics plus the
/// Fig. 7 sequence-number measure and loop-audit results.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Protocol display name.
    pub protocol: String,
    /// Packet delivery ratio.
    pub delivery: Accumulator,
    /// Mean data latency (seconds).
    pub latency: Accumulator,
    /// Control packets transmitted per received data packet.
    pub net_load: Accumulator,
    /// RREQs transmitted per received data packet.
    pub rreq_load: Accumulator,
    /// RREPs initiated per RREQ initiated.
    pub rrep_init: Accumulator,
    /// Usable RREPs received per RREQ initiated.
    pub rrep_recv: Accumulator,
    /// Mean own destination sequence number at run end (Fig. 7).
    pub mean_seqno: Accumulator,
    /// Hop-wise RREQ transmissions per run.
    pub rreq_tx: Accumulator,
    /// Total routing-loop audit violations across trials.
    pub loop_violations: u64,
    /// Total every-mutation invariant checks performed across trials.
    pub invariant_checks: u64,
    /// Total invariant breaches (fd regressions + loops) found across
    /// trials.
    pub invariant_breaches: u64,
    /// Total fault-plan actions the kernel fired across trials.
    pub faults_injected: u64,
    /// Total crash/restart recoveries across trials.
    pub node_restarts: u64,
    /// Trials that panicked; excluded from every accumulator above.
    pub failed: Vec<TrialFailure>,
}

impl Summary {
    /// An empty summary for a protocol.
    pub fn new(protocol: impl Into<String>) -> Self {
        Summary {
            protocol: protocol.into(),
            delivery: Accumulator::new(),
            latency: Accumulator::new(),
            net_load: Accumulator::new(),
            rreq_load: Accumulator::new(),
            rrep_init: Accumulator::new(),
            rrep_recv: Accumulator::new(),
            mean_seqno: Accumulator::new(),
            rreq_tx: Accumulator::new(),
            loop_violations: 0,
            invariant_checks: 0,
            invariant_breaches: 0,
            faults_injected: 0,
            node_restarts: 0,
            failed: Vec::new(),
        }
    }

    /// Records a panicked trial (does not touch the metric
    /// accumulators — a failed trial produced none).
    pub fn record_failure(&mut self, seed: u64, panic_msg: String) {
        self.failed.push(TrialFailure { seed, panic_msg });
    }

    /// Folds one trial's metrics in.
    pub fn add(&mut self, m: &Metrics) {
        self.delivery.push(m.delivery_ratio());
        self.latency.push(m.mean_latency_s());
        self.net_load.push(m.network_load());
        self.rreq_load.push(m.rreq_load());
        self.rrep_init.push(m.rrep_init_per_rreq());
        self.rrep_recv.push(m.rrep_recv_per_rreq());
        self.mean_seqno.push(m.mean_own_seqno);
        self.rreq_tx.push(m.rreq_tx() as f64);
        self.loop_violations += m.loop_violations;
        self.invariant_checks += m.invariant_checks;
        self.invariant_breaches += m.invariant_breaches;
        self.faults_injected += m.faults_injected;
        self.node_restarts += m.node_restarts;
    }

    /// Merges another summary of the same protocol (e.g. across pause
    /// times, as Table 1 averages "over all pause times and both
    /// 50-node and 100-node scenarios").
    pub fn merge(&mut self, other: &Summary) {
        fn fold(into: &mut Accumulator, from: &Accumulator) {
            // Accumulators don't retain samples; re-add the mean per
            // trial to preserve weighting by trial count.
            for _ in 0..from.count() {
                into.push(from.mean());
            }
        }
        fold(&mut self.delivery, &other.delivery);
        fold(&mut self.latency, &other.latency);
        fold(&mut self.net_load, &other.net_load);
        fold(&mut self.rreq_load, &other.rreq_load);
        fold(&mut self.rrep_init, &other.rrep_init);
        fold(&mut self.rrep_recv, &other.rrep_recv);
        fold(&mut self.mean_seqno, &other.mean_seqno);
        fold(&mut self.rreq_tx, &other.rreq_tx);
        self.loop_violations += other.loop_violations;
        self.invariant_checks += other.invariant_checks;
        self.invariant_breaches += other.invariant_breaches;
        self.faults_injected += other.faults_injected;
        self.node_restarts += other.node_restarts;
        self.failed.extend(other.failed.iter().cloned());
    }

    /// Number of trials folded in.
    pub fn trials(&self) -> u64 {
        self.delivery.count()
    }

    /// One formatted row of the Table-1-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<12} {:>16} {:>16} {:>16} {:>16} {:>14} {:>14}",
            self.protocol,
            self.delivery.display(3),
            self.latency.display(3),
            self.net_load.display(2),
            self.rreq_load.display(2),
            self.rrep_init.display(2),
            self.rrep_recv.display(2),
        )
    }
}

/// Prints a Table-1-style block (header plus one row per summary).
pub fn print_table(title: &str, rows: &[Summary]) {
    println!("\n=== {title} ===");
    println!(
        "{:<12} {:>16} {:>16} {:>16} {:>16} {:>14} {:>14}",
        "protocol", "delivery", "latency(s)", "net load", "RREQ load", "RREP init", "RREP recv"
    );
    for r in rows {
        println!("{}", r.table_row());
    }
}

/// Prints a figure-style series: `x` (pause time) against a metric
/// column per protocol, with CI half-widths.
pub fn print_series(
    title: &str,
    xlabel: &str,
    xs: &[u64],
    protocols: &[String],
    cells: &[Vec<(f64, f64)>],
) {
    println!("\n=== {title} ===");
    print!("{xlabel:>10}");
    for p in protocols {
        print!(" {p:>22}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>10}");
        for cell in cells {
            let (mean, ci) = cell[i];
            print!(" {:>13.4} ±{:>6.4}", mean, ci);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::time::SimDuration;

    fn metrics(delivered: u64, originated: u64) -> Metrics {
        let mut m = Metrics::new();
        m.data_originated = originated;
        for i in 0..delivered {
            m.record_delivery(1, i as u32, SimDuration::from_millis(20));
        }
        m
    }

    #[test]
    fn add_accumulates_ratios() {
        let mut s = Summary::new("X");
        s.add(&metrics(90, 100));
        s.add(&metrics(80, 100));
        assert_eq!(s.trials(), 2);
        assert!((s.delivery.mean() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_trial_weighting() {
        let mut a = Summary::new("X");
        a.add(&metrics(100, 100));
        let mut b = Summary::new("X");
        b.add(&metrics(50, 100));
        b.add(&metrics(50, 100));
        a.merge(&b);
        assert_eq!(a.trials(), 3);
        // (1.0 + 0.5 + 0.5) / 3
        assert!((a.delivery.mean() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn audit_counters_accumulate_and_merge() {
        let mut m = metrics(10, 10);
        m.invariant_checks = 5;
        m.invariant_breaches = 1;
        let mut a = Summary::new("X");
        a.add(&m);
        a.add(&m);
        assert_eq!(a.invariant_checks, 10);
        assert_eq!(a.invariant_breaches, 2);
        let mut b = Summary::new("X");
        b.add(&m);
        a.merge(&b);
        assert_eq!(a.invariant_checks, 15);
        assert_eq!(a.invariant_breaches, 3);
    }

    #[test]
    fn failures_are_recorded_without_skewing_accumulators() {
        let mut a = Summary::new("X");
        a.add(&metrics(90, 100));
        a.record_failure(41, "index out of bounds".to_string());
        assert_eq!(a.trials(), 1, "a failed trial contributes no samples");
        assert_eq!(a.failed.len(), 1);
        let mut b = Summary::new("X");
        b.record_failure(77, "boom".to_string());
        a.merge(&b);
        assert_eq!(a.failed.len(), 2);
        assert_eq!(a.failed[1], TrialFailure { seed: 77, panic_msg: "boom".to_string() });
    }

    #[test]
    fn table_row_contains_protocol_and_ci() {
        let mut s = Summary::new("LDR");
        s.add(&metrics(90, 100));
        s.add(&metrics(95, 100));
        let row = s.table_row();
        assert!(row.starts_with("LDR"));
        assert!(row.contains('±'));
    }
}
