//! A bounded work-stealing worker pool for trial and sweep execution.
//!
//! The pre-PR-9 runner spawned one OS thread per trial with no cap:
//! composed with [`manet_sim::config::SimConfig::workers`] ≥ 2 that
//! oversubscribed the host to `trials × workers` threads, and a single
//! panicking trial aborted the whole batch via `join().expect(…)`,
//! discarding every completed cell. This pool fixes both:
//!
//! * **Bounded**: at most `threads` worker OS threads exist at any
//!   instant (callers size this against the host core count and any
//!   inner kernel parallelism — see [`host_cores`]).
//! * **Work-stealing**: jobs are dealt round-robin onto per-worker
//!   deques; a worker drains its own deque front-first and steals from
//!   the back of its siblings' deques when idle, so a handful of slow
//!   cells cannot strand the rest of the pool.
//! * **Panic-isolated**: each job runs under `catch_unwind`; a
//!   panicking job yields `Err(panic message)` in its result slot and
//!   every other job still runs to completion.
//!
//! Results are returned **in job order** regardless of completion
//! order, so pooled execution aggregates exactly like the sequential
//! loop it replaces (proven by the runner's equality tests).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// Number of cores the host exposes (≥ 1).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One job's outcome: the value it produced, or the panic message that
/// killed it.
pub type JobResult<T> = Result<T, String>;

/// What one `run_jobs` call did, beyond the per-job results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker OS threads the call spawned in total.
    pub workers_spawned: usize,
    /// Peak number of worker threads alive at once — the
    /// oversubscription regression tests assert on this.
    pub peak_live_workers: usize,
}

fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        // A worker panicking inside a job never holds these locks
        // (jobs run outside every critical section), but recover from
        // poisoning anyway rather than cascading the abort.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `jobs` across at most `threads` worker OS threads and returns
/// their results in job order. See the module docs for the scheduling
/// and panic contract. `on_done` fires on the calling thread as each
/// job finishes (completion order), with the job's index and result —
/// the sweep engine journals cells from this hook so an interrupted
/// run can resume.
pub fn run_jobs_with<T, F>(
    threads: usize,
    jobs: Vec<F>,
    mut on_done: impl FnMut(usize, &JobResult<T>),
) -> (Vec<JobResult<T>>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return (Vec::new(), PoolStats::default());
    }
    let n_workers = threads.max(1).min(n_jobs);
    // Each FnOnce is taken exactly once, by whichever worker claims
    // its index.
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    // Round-robin deal onto per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for idx in 0..n_jobs {
        lock_or_recover(&queues[idx % n_workers]).push_back(idx);
    }
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobResult<T>)>();

    let mut results: Vec<Option<JobResult<T>>> = (0..n_jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let tx = tx.clone();
            let slots = &slots;
            let queues = &queues;
            let live = &live;
            let peak = &peak;
            scope.spawn(move || {
                let now_live = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now_live, Ordering::SeqCst);
                loop {
                    // Own deque first (front), then steal from the
                    // back of the others, nearest sibling first.
                    let mut claimed = lock_or_recover(&queues[w]).pop_front();
                    if claimed.is_none() {
                        for off in 1..n_workers {
                            let v = (w + off) % n_workers;
                            if let Some(idx) = lock_or_recover(&queues[v]).pop_back() {
                                claimed = Some(idx);
                                break;
                            }
                        }
                    }
                    let Some(idx) = claimed else { break };
                    let Some(job) = lock_or_recover(&slots[idx]).take() else { continue };
                    let result = catch_unwind(AssertUnwindSafe(job)).map_err(panic_text);
                    if tx.send((idx, result)).is_err() {
                        break; // receiver gone: the caller bailed out
                    }
                }
                live.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(tx);
        // Coordinator: collect completions as they arrive (the
        // journaling hook), stash them for in-order return.
        for (idx, result) in rx {
            on_done(idx, &result);
            results[idx] = Some(result);
        }
    });
    let stats =
        PoolStats { workers_spawned: n_workers, peak_live_workers: peak.load(Ordering::SeqCst) };
    let out = results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err("job was never executed (pool bug)".to_string())))
        .collect();
    (out, stats)
}

/// [`run_jobs_with`] without the completion hook.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> (Vec<JobResult<T>>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_jobs_with(threads, jobs, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..64).map(|i| move || i * 10).collect();
        let (results, stats) = run_jobs(4, jobs);
        let values: Vec<i32> = results.into_iter().map(|r| r.expect("no panics")).collect();
        assert_eq!(values, (0..64).map(|i| i * 10).collect::<Vec<_>>());
        assert!(stats.workers_spawned <= 4);
        assert!(stats.peak_live_workers <= 4);
    }

    #[test]
    fn pool_never_exceeds_the_thread_cap() {
        // 100 jobs, cap 3: the peak live-worker count (the
        // oversubscription regression measure) must respect the cap.
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let live = &live;
                let peak = &peak;
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        let (results, stats) = run_jobs(3, jobs);
        assert_eq!(results.len(), 100);
        assert!(results.iter().all(Result::is_ok));
        assert!(stats.peak_live_workers <= 3, "{stats:?}");
        assert!(peak.load(Ordering::SeqCst) <= 3, "jobs saw >3 concurrent executions");
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..10)
            .map(|i| {
                let f: Box<dyn FnOnce() -> u32 + Send> = if i == 4 {
                    Box::new(|| panic!("boom in cell 4"))
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let (results, _) = run_jobs(2, jobs);
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                let msg = r.as_ref().expect_err("cell 4 must fail");
                assert!(msg.contains("boom in cell 4"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().expect("other cells survive"), i as u32);
            }
        }
    }

    #[test]
    fn completion_hook_sees_every_job_exactly_once() {
        let mut seen = vec![0u32; 16];
        let jobs: Vec<_> = (0..16).map(|i| move || i).collect();
        let (results, _) = run_jobs_with(4, jobs, |idx, r| {
            assert!(r.is_ok());
            seen[idx] += 1;
        });
        assert_eq!(results.len(), 16);
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn zero_and_one_job_edges() {
        let (empty, stats) = run_jobs(8, Vec::<fn() -> u8>::new());
        assert!(empty.is_empty());
        assert_eq!(stats, PoolStats::default());
        let (one, stats) = run_jobs(8, vec![|| 7u8]);
        assert_eq!(one.len(), 1);
        assert_eq!(stats.workers_spawned, 1, "never more workers than jobs");
    }
}
