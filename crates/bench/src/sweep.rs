//! The experiment orchestrator: memoized, resumable parameter sweeps.
//!
//! A sweep is a list of **cells** — `(scenario, protocol, seed,
//! fault level)` points — executed across the bounded
//! [work-stealing pool](crate::workpool) and folded into the
//! `BENCH_6.json` trajectory. Three properties make re-runs cheap and
//! interruptions harmless:
//!
//! * **Content-addressed memoization** — every cell is keyed by a hash
//!   of its *code-relevant* configuration (topology, traffic, PHY
//!   flavour, audit, protocol, seed, fault level, plus
//!   [`SWEEP_CODE_REV`]). Completed cells land in an on-disk cache
//!   under `<cache>/<key>.json`; a later sweep that contains the same
//!   cell reads the cached record instead of simulating.
//!   `spatial_grid`, `workers`, `recycle_pools` and `profile` are
//!   deliberately *excluded* from the key: the kernel's determinism
//!   contract makes them byte-identical, so they can never change a
//!   cell's result — only its wall-clock.
//! * **A completion journal** — each cell is appended to a JSONL
//!   journal the moment it finishes (single writer: the pool's
//!   coordinator thread). A sweep killed mid-flight restarts, replays
//!   the journal, and schedules only the remainder; a torn final line
//!   from the kill is skipped harmlessly.
//! * **Deterministic output** — every simulated quantity is recorded
//!   with bit-exact `f64` round-tripping and the rendered BENCH
//!   contains no wall-clock, so a memoized re-run (and CI) reproduces
//!   the committed file byte for byte.
//!
//! A cell whose trial panics is journaled as `failed` (the sweep keeps
//! going — see the runner's panic-isolation contract) but **never
//! cached**: a panic is a bug, and a fixed binary must re-run the
//! cell rather than resurrect the failure from disk.

use crate::forensics::Json;
use crate::runner::{trial_fault_plan, trial_seed};
use crate::scenario::{Protocol, Scenario, SimFlavor};
use crate::workpool;
use manet_sim::metrics::Metrics;
use manet_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Bumped whenever simulator semantics change in a way that
/// invalidates previously recorded cells (part of every cell key, so
/// stale cache entries simply stop matching).
pub const SWEEP_CODE_REV: &str = "pr10-r1";

// ----- cells ------------------------------------------------------------

/// One sweep cell: a single deterministic trial.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Display label for the scenario (e.g. `n50-f10-p0`).
    pub scenario_name: String,
    /// Full scenario parameters (the embedded `trials`/`seed_base` are
    /// ignored — the cell's own `seed` identifies the trial).
    pub scenario: Scenario,
    /// Protocol under test.
    pub protocol: Protocol,
    /// The trial's seed.
    pub seed: u64,
    /// Fault-intensity level (0 = fault-free).
    pub fault_level: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl CellSpec {
    /// Human-readable cell label (journal/table display, not identity).
    pub fn display(&self) -> String {
        format!(
            "{}/{}/L{}/s{}",
            self.scenario_name,
            self.protocol.name(),
            self.fault_level,
            self.seed
        )
    }

    /// The cell's content address: 128 bits of FNV-1a over a canonical
    /// rendering of everything that can affect the result. Terrain
    /// dimensions are hashed as raw `f64` bits, so the key is exact,
    /// not formatted.
    pub fn key(&self) -> String {
        let sc = &self.scenario;
        let flavor = match sc.flavor {
            SimFlavor::Default => "default",
            SimFlavor::Alt => "alt",
        };
        let canon = format!(
            "rev={};n={};tx={:016x};ty={:016x};flows={};pause={};dur={};flavor={};audit={};proto={};seed={};level={}",
            SWEEP_CODE_REV,
            sc.n_nodes,
            sc.terrain.0.to_bits(),
            sc.terrain.1.to_bits(),
            sc.n_flows,
            sc.pause_secs,
            sc.duration_secs,
            flavor,
            sc.audit,
            self.protocol.name(),
            self.seed,
            self.fault_level,
        );
        let lo = fnv1a(canon.as_bytes(), FNV_OFFSET);
        // Second lane: same stream, independent starting state.
        let hi = fnv1a(canon.as_bytes(), FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        format!("{hi:016x}{lo:016x}")
    }
}

/// The standard sweep grid: both paper topologies × the four paper
/// protocols × the given fault levels × `trials` seeds per cell, in
/// canonical (scenario, protocol, level, seed) order.
pub fn cells_for(duration_secs: u64, trials: u32, levels: &[u32]) -> Vec<CellSpec> {
    let mut out = Vec::new();
    for (name, scenario) in crate::perf::paper_cases(duration_secs, trials) {
        for protocol in Protocol::PAPER_SET {
            for &level in levels {
                for k in 0..trials {
                    out.push(CellSpec {
                        scenario_name: name.clone(),
                        scenario: scenario.clone(),
                        protocol,
                        seed: trial_seed(scenario.seed_base, k),
                        fault_level: level,
                    });
                }
            }
        }
    }
    out
}

/// The CI smoke sweep: 60 s simulated, one trial per cell, fault
/// levels 0 and 1 — 16 cells. This is the grid the committed
/// `BENCH_6.json` records.
pub fn smoke_cells() -> Vec<CellSpec> {
    cells_for(60, 1, &[0, 1])
}

/// The paper-scale sweep: 900 s simulated, three seeds per cell, fault
/// levels 0–2 (72 cells).
pub fn full_cells() -> Vec<CellSpec> {
    cells_for(900, 3, &[0, 1, 2])
}

// ----- per-cell results -------------------------------------------------

/// The simulated quantities a cell records: the paper's §4 measures
/// plus the audit/fault counters. `f64` fields round-trip bit-exactly
/// through the journal and cache (serialized as raw bit patterns).
#[derive(Clone, Debug, PartialEq)]
pub struct CellMetrics {
    /// Packet delivery ratio.
    pub delivery: f64,
    /// Mean data latency (seconds).
    pub latency_s: f64,
    /// Control packets per received data packet.
    pub net_load: f64,
    /// RREQ transmissions per received data packet.
    pub rreq_load: f64,
    /// RREPs initiated per RREQ initiated.
    pub rrep_init: f64,
    /// Usable RREPs received per RREQ initiated.
    pub rrep_recv: f64,
    /// Mean own destination sequence number at run end (Fig. 7).
    pub mean_seqno: f64,
    /// Hop-wise RREQ transmissions.
    pub rreq_tx: u64,
    /// Data packets originated.
    pub data_originated: u64,
    /// Data packets delivered.
    pub data_delivered: u64,
    /// Routing-loop audit violations.
    pub loop_violations: u64,
    /// Every-mutation invariant checks performed.
    pub invariant_checks: u64,
    /// Invariant breaches found.
    pub invariant_breaches: u64,
    /// Fault-plan actions fired.
    pub faults_injected: u64,
    /// Crash/restart recoveries.
    pub node_restarts: u64,
    /// Kernel events executed — the deterministic numerator of the
    /// scoreboard's events-per-sim-second-per-core column (wall-clock
    /// never enters the journal or cache, so reruns stay byte-exact).
    pub events: u64,
}

impl CellMetrics {
    /// Extracts the recorded subset from a trial's full [`Metrics`],
    /// plus the kernel's event counter.
    pub fn from_metrics(m: &Metrics, events: u64) -> Self {
        CellMetrics {
            delivery: m.delivery_ratio(),
            latency_s: m.mean_latency_s(),
            net_load: m.network_load(),
            rreq_load: m.rreq_load(),
            rrep_init: m.rrep_init_per_rreq(),
            rrep_recv: m.rrep_recv_per_rreq(),
            mean_seqno: m.mean_own_seqno,
            rreq_tx: m.rreq_tx(),
            data_originated: m.data_originated,
            data_delivered: m.data_delivered,
            loop_violations: m.loop_violations,
            invariant_checks: m.invariant_checks,
            invariant_breaches: m.invariant_breaches,
            faults_injected: m.faults_injected,
            node_restarts: m.node_restarts,
            events,
        }
    }
}

/// A completed cell: its metrics, or the panic that killed it.
#[derive(Clone, Debug, PartialEq)]
pub enum CellRecord {
    /// The trial ran to completion.
    Done(CellMetrics),
    /// The trial panicked; the sweep continued without it.
    Failed {
        /// The panic payload, stringified.
        panic_msg: String,
    },
}

// ----- record (de)serialization -----------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Bit-exact `f64` rendering: 16 hex digits of the IEEE-754 pattern.
fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Approximate decimal companion to the bit field, for human diffing;
/// never parsed back. `null` for non-finite values.
fn f64_approx(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

const F64_FIELDS: [&str; 7] =
    ["delivery", "latency_s", "net_load", "rreq_load", "rrep_init", "rrep_recv", "mean_seqno"];
const U64_FIELDS: [&str; 9] = [
    "rreq_tx",
    "data_originated",
    "data_delivered",
    "loop_violations",
    "invariant_checks",
    "invariant_breaches",
    "faults_injected",
    "node_restarts",
    "events",
];

fn f64_values(m: &CellMetrics) -> [f64; 7] {
    [m.delivery, m.latency_s, m.net_load, m.rreq_load, m.rrep_init, m.rrep_recv, m.mean_seqno]
}

fn u64_values(m: &CellMetrics) -> [u64; 9] {
    [
        m.rreq_tx,
        m.data_originated,
        m.data_delivered,
        m.loop_violations,
        m.invariant_checks,
        m.invariant_breaches,
        m.faults_injected,
        m.node_restarts,
        m.events,
    ]
}

/// Renders one journal/cache line (stable field order, no wall-clock).
pub fn record_line(key: &str, cell: &str, record: &CellRecord) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"key\":\"{}\",\"cell\":\"{}\"", esc(key), esc(cell));
    match record {
        CellRecord::Done(m) => {
            s.push_str(",\"status\":\"ok\"");
            for (name, v) in F64_FIELDS.iter().zip(f64_values(m)) {
                let _ = write!(s, ",\"{name}\":\"{}\"", f64_hex(v));
            }
            for (name, v) in U64_FIELDS.iter().zip(u64_values(m)) {
                let _ = write!(s, ",\"{name}\":{v}");
            }
        }
        CellRecord::Failed { panic_msg } => {
            let _ = write!(s, ",\"status\":\"failed\",\"panic_msg\":\"{}\"", esc(panic_msg));
        }
    }
    s.push('}');
    s
}

/// Parses one journal/cache line back into `(key, record)`. Returns
/// `None` on any malformation — a torn line from a killed writer is
/// skipped, never fatal.
pub fn parse_record(line: &str) -> Option<(String, CellRecord)> {
    let v = Json::parse(line.trim())?;
    let key = v.str_field("key")?.to_string();
    match v.str_field("status")? {
        "ok" => {
            let mut f = [0.0f64; 7];
            for (slot, name) in f.iter_mut().zip(F64_FIELDS) {
                *slot = f64_from_hex(v.str_field(name)?)?;
            }
            let mut u = [0u64; 9];
            for (slot, name) in u.iter_mut().zip(U64_FIELDS) {
                *slot = v.u64_field(name)?;
            }
            let m = CellMetrics {
                delivery: f[0],
                latency_s: f[1],
                net_load: f[2],
                rreq_load: f[3],
                rrep_init: f[4],
                rrep_recv: f[5],
                mean_seqno: f[6],
                rreq_tx: u[0],
                data_originated: u[1],
                data_delivered: u[2],
                loop_violations: u[3],
                invariant_checks: u[4],
                invariant_breaches: u[5],
                faults_injected: u[6],
                node_restarts: u[7],
                events: u[8],
            };
            Some((key, CellRecord::Done(m)))
        }
        "failed" => {
            let panic_msg = v.str_field("panic_msg")?.to_string();
            Some((key, CellRecord::Failed { panic_msg }))
        }
        _ => None,
    }
}

// ----- the sweep driver -------------------------------------------------

/// Where and how a sweep runs.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Content-addressed cache directory (`<key>.json` per cell).
    pub cache_dir: PathBuf,
    /// Completion journal (JSONL, appended as cells finish).
    pub journal: PathBuf,
    /// Worker-pool width. Callers should derive this from
    /// [`workpool::host_cores`] divided by the cells' inner kernel
    /// workers — never `cells × workers`.
    pub threads: usize,
    /// Stop scheduling after this many *executed* cells (interruption
    /// hook for the resumability tests); `None` runs everything.
    pub max_cells: Option<usize>,
    /// Ignore the existing journal and cache: re-execute every cell.
    pub fresh: bool,
}

impl SweepConfig {
    /// A default layout rooted at `dir`, sized for this host.
    pub fn rooted(dir: &std::path::Path) -> Self {
        SweepConfig {
            cache_dir: dir.join("cells"),
            journal: dir.join("journal.jsonl"),
            threads: workpool::host_cores(),
            max_cells: None,
            fresh: false,
        }
    }
}

/// What a sweep invocation did. `cells` is in canonical sweep order —
/// the order the BENCH rendering uses — regardless of the order cells
/// actually completed in, so output bytes never depend on scheduling.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Every cell with its record; `None` = not yet run (the sweep was
    /// interrupted by `max_cells` before reaching it).
    pub cells: Vec<(CellSpec, Option<CellRecord>)>,
    /// Cells actually simulated by *this* invocation.
    pub executed: usize,
    /// Cells satisfied from the content-addressed cache.
    pub memo_hits: usize,
    /// Cells satisfied by replaying the journal.
    pub journal_hits: usize,
}

impl SweepOutcome {
    /// Whether every cell has a record.
    pub fn complete(&self) -> bool {
        self.cells.iter().all(|(_, r)| r.is_some())
    }

    /// Number of cells whose trial panicked.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|(_, r)| matches!(r, Some(CellRecord::Failed { .. }))).count()
    }
}

fn run_cell(cell: &CellSpec) -> CellMetrics {
    // Level 0 yields an empty plan, which the kernel treats exactly
    // like no plan (covered by the runner's level-zero test).
    let plan = trial_fault_plan(&cell.scenario, cell.seed, cell.fault_level);
    // Kept alive past the run so the kernel's event counter — the
    // deterministic numerator of the scoreboard's throughput column —
    // can be read alongside the metrics.
    let mut world =
        crate::runner::build_world(cell.protocol, &cell.scenario, cell.seed, Some(plan));
    world.run_until(SimTime::ZERO + SimDuration::from_secs(cell.scenario.duration_secs));
    world.finalize();
    CellMetrics::from_metrics(world.metrics(), world.events_executed())
}

/// Runs (or resumes) a sweep. Per cell, in order of preference: replay
/// the journal, hit the content-addressed cache, or simulate on the
/// worker pool — journaling and caching each cell as it completes.
pub fn run_sweep(cells: &[CellSpec], cfg: &SweepConfig) -> Result<SweepOutcome, String> {
    let keys: Vec<String> = cells.iter().map(CellSpec::key).collect();
    let mut key_set: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        if key_set.insert(k.as_str(), i).is_some() {
            return Err(format!(
                "duplicate cell key {k} ({}): seed collision or repeated cell",
                cells[i].display()
            ));
        }
    }
    fs::create_dir_all(&cfg.cache_dir)
        .map_err(|e| format!("create cache dir {}: {e}", cfg.cache_dir.display()))?;
    if cfg.fresh {
        fs::remove_file(&cfg.journal).or_else(|e| match e.kind() {
            std::io::ErrorKind::NotFound => Ok(()),
            _ => Err(format!("remove journal {}: {e}", cfg.journal.display())),
        })?;
    }

    let mut done: BTreeMap<usize, CellRecord> = BTreeMap::new();
    let mut journal_hits = 0usize;
    let mut memo_hits = 0usize;
    if !cfg.fresh {
        // 1. Replay the journal (this sweep's own completion log).
        if let Ok(text) = fs::read_to_string(&cfg.journal) {
            for line in text.lines() {
                if let Some((key, rec)) = parse_record(line) {
                    if let Some(&i) = key_set.get(key.as_str()) {
                        if done.insert(i, rec).is_none() {
                            journal_hits += 1;
                        }
                    }
                }
            }
        }
        // 2. Content-addressed cache (possibly from an earlier,
        //    different sweep that shared cells). Failed cells are
        //    never cached, so everything read here is `Done`.
        for (i, key) in keys.iter().enumerate() {
            if done.contains_key(&i) {
                continue;
            }
            let path = cfg.cache_dir.join(format!("{key}.json"));
            if let Ok(text) = fs::read_to_string(&path) {
                if let Some((k, rec)) = parse_record(&text) {
                    if k == *key && matches!(rec, CellRecord::Done(_)) {
                        done.insert(i, rec);
                        memo_hits += 1;
                    }
                }
            }
        }
    }

    // 3. Simulate the remainder on the bounded pool.
    let todo: Vec<usize> = (0..cells.len()).filter(|i| !done.contains_key(i)).collect();
    let scheduled: Vec<usize> = match cfg.max_cells {
        Some(n) => todo.iter().copied().take(n).collect(),
        None => todo,
    };
    let executed = scheduled.len();
    if executed > 0 {
        let mut journal_file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&cfg.journal)
            .map_err(|e| format!("open journal {}: {e}", cfg.journal.display()))?;
        let jobs: Vec<_> = scheduled
            .iter()
            .map(|&i| {
                let cell = &cells[i];
                move || run_cell(cell)
            })
            .collect();
        let mut io_err: Option<String> = None;
        let (results, _stats) = workpool::run_jobs_with(cfg.threads, jobs, |j, res| {
            let i = scheduled[j];
            let rec = match res {
                Ok(m) => CellRecord::Done(m.clone()),
                Err(panic_msg) => CellRecord::Failed { panic_msg: panic_msg.clone() },
            };
            let line = record_line(&keys[i], &cells[i].display(), &rec);
            // Journal first (the resume log must never trail the
            // cache), flushed per line so a kill loses at most the
            // line being written.
            if let Err(e) = writeln!(journal_file, "{line}").and_then(|()| journal_file.flush()) {
                io_err.get_or_insert_with(|| format!("journal write: {e}"));
            }
            if matches!(rec, CellRecord::Done(_)) {
                let path = cfg.cache_dir.join(format!("{}.json", keys[i]));
                if let Err(e) = fs::write(&path, format!("{line}\n")) {
                    io_err.get_or_insert_with(|| format!("cache write {}: {e}", path.display()));
                }
            }
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        for (j, r) in results.into_iter().enumerate() {
            let rec = match r {
                Ok(m) => CellRecord::Done(m),
                Err(panic_msg) => CellRecord::Failed { panic_msg },
            };
            done.insert(scheduled[j], rec);
        }
    }

    let cells_out = cells.iter().enumerate().map(|(i, c)| (c.clone(), done.remove(&i))).collect();
    Ok(SweepOutcome { cells: cells_out, executed, memo_hits, journal_hits })
}

// ----- rendering --------------------------------------------------------

impl SweepOutcome {
    /// Renders the BENCH trajectory entry (`BENCH_6.json`). Contains
    /// no wall-clock and renders cells in canonical order, so the
    /// bytes depend only on the simulated results — a memoized re-run
    /// (or a CI runner) reproduces the committed file exactly.
    pub fn to_json(&self, mode: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"sweepbench\",\n");
        s.push_str("  \"schema\": 1,\n");
        let _ = writeln!(s, "  \"mode\": \"{}\",", esc(mode));
        let _ = writeln!(s, "  \"code_rev\": \"{}\",", esc(SWEEP_CODE_REV));
        let _ = writeln!(s, "  \"cells\": [");
        for (i, (cell, rec)) in self.cells.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"key\": \"{}\",", cell.key());
            let _ = writeln!(s, "      \"cell\": \"{}\",", esc(&cell.display()));
            let _ = writeln!(s, "      \"scenario\": \"{}\",", esc(&cell.scenario_name));
            let _ = writeln!(s, "      \"protocol\": \"{}\",", esc(&cell.protocol.name()));
            let _ = writeln!(s, "      \"fault_level\": {},", cell.fault_level);
            let _ = writeln!(s, "      \"seed\": {},", cell.seed);
            match rec {
                Some(CellRecord::Done(m)) => {
                    s.push_str("      \"status\": \"ok\",\n");
                    for (name, v) in F64_FIELDS.iter().zip(f64_values(m)) {
                        let _ = writeln!(
                            s,
                            "      \"{name}_bits\": \"{}\",\n      \"{name}\": {},",
                            f64_hex(v),
                            f64_approx(v)
                        );
                    }
                    let mut first = true;
                    for (name, v) in U64_FIELDS.iter().zip(u64_values(m)) {
                        if !first {
                            s.push_str(",\n");
                        }
                        first = false;
                        let _ = write!(s, "      \"{name}\": {v}");
                    }
                    s.push('\n');
                }
                Some(CellRecord::Failed { panic_msg }) => {
                    s.push_str("      \"status\": \"failed\",\n");
                    let _ = writeln!(s, "      \"panic_msg\": \"{}\"", esc(panic_msg));
                }
                None => {
                    s.push_str("      \"status\": \"pending\"\n");
                }
            }
            s.push_str(if i + 1 < self.cells.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the human-readable table (`results/sweepbench.txt`):
    /// one row per `(scenario, fault level, protocol)`, averaged over
    /// that group's seeds in cell order.
    pub fn to_table(&self, mode: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sweepbench ({mode}): {} cells — {} executed, {} memoized, {} journaled, {} failed",
            self.cells.len(),
            self.executed,
            self.memo_hits,
            self.journal_hits,
            self.failures()
        );
        // Group in first-appearance order; BTreeMap re-keyed by the
        // group's first cell index keeps the iteration canonical.
        let mut groups: BTreeMap<usize, (String, Vec<&CellMetrics>, usize, u64)> = BTreeMap::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for (i, (cell, rec)) in self.cells.iter().enumerate() {
            let label =
                format!("{}/L{} {}", cell.scenario_name, cell.fault_level, cell.protocol.name());
            let slot = *index.entry(label.clone()).or_insert(i);
            let denom = cell.scenario.duration_secs * cell.scenario.workers.max(1) as u64;
            let entry = groups.entry(slot).or_insert_with(|| (label, Vec::new(), 0, denom));
            match rec {
                Some(CellRecord::Done(m)) => entry.1.push(m),
                Some(CellRecord::Failed { .. }) => entry.2 += 1,
                None => {}
            }
        }
        let _ = writeln!(
            s,
            "{:<28} {:>6} {:>10} {:>12} {:>10} {:>7} {:>10} {:>7}",
            "cell group",
            "seeds",
            "delivery",
            "latency(s)",
            "net load",
            "loops",
            "ev/ssc",
            "failed"
        );
        for (_, (label, ms, failed, denom)) in groups {
            let n = ms.len();
            let mean = |f: fn(&CellMetrics) -> f64| -> f64 {
                if n == 0 {
                    0.0
                } else {
                    ms.iter().map(|m| f(m)).sum::<f64>() / n as f64
                }
            };
            let loops: u64 = ms.iter().map(|m| m.loop_violations).sum();
            // Events per simulated second per core: deterministic (no
            // wall-clock), so the rendered table reproduces byte-exactly.
            let total_events: u64 = ms.iter().map(|m| m.events).sum();
            let ev_ssc = crate::report::events_per_simsec_core(total_events, denom * n as u64, 1);
            let _ = writeln!(
                s,
                "{:<28} {:>6} {:>10.4} {:>12.4} {:>10.3} {:>7} {:>10.1} {:>7}",
                label,
                n,
                mean(|m| m.delivery),
                mean(|m| m.latency_s),
                mean(|m| m.net_load),
                loops,
                ev_ssc,
                failed
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(seed: u64, level: u32) -> CellSpec {
        let mut sc = Scenario::n50(3, 0);
        sc.n_nodes = 12;
        sc.terrain = (700.0, 300.0);
        sc.duration_secs = 10;
        CellSpec {
            scenario_name: "tiny".to_string(),
            scenario: sc,
            protocol: Protocol::Ldr,
            seed,
            fault_level: level,
        }
    }

    #[test]
    fn keys_separate_code_relevant_config_only() {
        let a = cell(7, 0);
        assert_eq!(a.key(), cell(7, 0).key(), "key must be a pure function");
        assert_ne!(a.key(), cell(8, 0).key(), "seed is code-relevant");
        assert_ne!(a.key(), cell(7, 1).key(), "fault level is code-relevant");
        let mut b = cell(7, 0);
        b.protocol = Protocol::Aodv;
        assert_ne!(a.key(), b.key(), "protocol is code-relevant");
        let mut c = cell(7, 0);
        c.scenario.duration_secs = 11;
        assert_ne!(a.key(), c.key(), "duration is code-relevant");
        // The determinism contract: grid/workers change wall-clock
        // only, so they must NOT invalidate cached cells.
        let mut d = cell(7, 0);
        d.scenario.spatial_grid = false;
        d.scenario.workers = 4;
        d.scenario.recycle_pools = false;
        d.scenario.profile = true;
        assert_eq!(a.key(), d.key(), "wall-clock-only knobs must not change the key");
        // Display names are labels, not identity.
        let mut e = cell(7, 0);
        e.scenario_name = "renamed".to_string();
        assert_eq!(a.key(), e.key());
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let m = CellMetrics {
            delivery: 0.1 + 0.2, // deliberately not exactly 0.3
            latency_s: f64::from_bits(0x3fd5_5555_5555_5555),
            net_load: 17.25,
            rreq_load: 0.0,
            rrep_init: 1.0 / 3.0,
            rrep_recv: 2.0 / 7.0,
            mean_seqno: 41.999999999999,
            rreq_tx: 123,
            data_originated: 4000,
            data_delivered: 3999,
            loop_violations: 0,
            invariant_checks: 55,
            invariant_breaches: 1,
            faults_injected: 9,
            node_restarts: 2,
            events: 987654321,
        };
        let rec = CellRecord::Done(m);
        let line = record_line("abc123", "tiny/LDR/L0/s7", &rec);
        let (key, back) = parse_record(&line).expect("round trip");
        assert_eq!(key, "abc123");
        assert_eq!(back, rec, "every f64 must round-trip bit-exactly");

        let fail = CellRecord::Failed { panic_msg: "index 3 out of \"bounds\"\n".to_string() };
        let line = record_line("def", "tiny/LDR/L0/s8", &fail);
        let (_, back) = parse_record(&line).expect("failed record round trip");
        assert_eq!(back, fail, "panic messages must survive escaping");
    }

    #[test]
    fn torn_journal_lines_are_skipped() {
        let m = CellMetrics {
            delivery: 0.5,
            latency_s: 0.01,
            net_load: 1.0,
            rreq_load: 0.1,
            rrep_init: 1.0,
            rrep_recv: 1.0,
            mean_seqno: 3.0,
            rreq_tx: 5,
            data_originated: 10,
            data_delivered: 5,
            loop_violations: 0,
            invariant_checks: 0,
            invariant_breaches: 0,
            faults_injected: 0,
            node_restarts: 0,
            events: 1200,
        };
        let full = record_line("k1", "c", &CellRecord::Done(m));
        let torn = &full[..full.len() / 2];
        assert!(parse_record(torn).is_none(), "a torn line must parse to None, not panic");
        assert!(parse_record("").is_none());
        assert!(parse_record("{\"key\":\"x\"}").is_none(), "missing status");
    }

    #[test]
    fn smoke_grid_shape_and_key_uniqueness() {
        let cells = smoke_cells();
        assert_eq!(cells.len(), 2 * 4 * 2, "2 scenarios × 4 protocols × 2 levels × 1 trial");
        let mut keys: Vec<String> = cells.iter().map(CellSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "all smoke cell keys distinct");
        assert!(cells.iter().all(|c| c.scenario.duration_secs == 60));
    }
}
