//! Wall-clock performance benchmark ("perfbench"): times the
//! paper-scale 50- and 100-node scenarios under every paper protocol,
//! once with the spatial neighbor grid ([`manet_sim::spatial`]) and
//! once with the linear-scan reference, on identical fixed seeds.
//!
//! Because grid-backed runs are byte-identical to linear-scan runs,
//! the pair measures exactly one thing — how fast the same answer is
//! computed — and the benchmark double-checks that premise by
//! comparing the two runs' [`Metrics`] with `==` on every trial.
//!
//! Results go to a machine-readable `BENCH_4.json` (schema documented
//! in `DESIGN.md` §12) and a human-readable table
//! (`results/perfbench.txt`).

use crate::runner::build_world;
use crate::scenario::{Protocol, Scenario};
use manet_sim::metrics::Metrics;
use manet_sim::time::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed simulation run.
#[derive(Clone, Debug)]
pub struct TrialTiming {
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Events the kernel executed.
    pub events: u64,
    /// Windows the parallel kernel fanned out (0 on sequential runs).
    pub parallel_windows: u64,
    /// The run's metrics (for the identity cross-check).
    pub metrics: Metrics,
}

/// Runs one trial and times it. Identical world construction to
/// [`crate::runner::run_once`]; kept separate so the world survives the
/// run and [`manet_sim::world::World::events_executed`] is readable.
pub fn run_timed(protocol: Protocol, scenario: &Scenario, seed: u64) -> TrialTiming {
    let mut world = build_world(protocol, scenario, seed, None);
    let start = Instant::now();
    world.run_until(SimTime::ZERO + SimDuration::from_secs(scenario.duration_secs));
    world.finalize();
    let wall_s = start.elapsed().as_secs_f64();
    TrialTiming {
        wall_s,
        events: world.events_executed(),
        parallel_windows: world.parallel_windows(),
        metrics: world.metrics().clone(),
    }
}

/// Aggregated timings of one `(scenario, protocol)` cell: grid and
/// linear trials on the same seeds, plus the derived comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Protocol display name.
    pub protocol: String,
    /// Per-trial wall-clock seconds, grid-backed.
    pub grid_wall_s: Vec<f64>,
    /// Per-trial wall-clock seconds, linear-scan reference.
    pub linear_wall_s: Vec<f64>,
    /// Kernel events executed per grid trial.
    pub grid_events: Vec<u64>,
    /// Kernel events executed per linear trial.
    pub linear_events: Vec<u64>,
    /// Whether every trial's grid metrics equalled its linear metrics.
    pub metrics_identical: bool,
}

impl Comparison {
    /// Mean grid wall-clock seconds per trial.
    pub fn grid_mean_s(&self) -> f64 {
        mean(&self.grid_wall_s)
    }
    /// Mean linear wall-clock seconds per trial.
    pub fn linear_mean_s(&self) -> f64 {
        mean(&self.linear_wall_s)
    }
    /// Linear wall-clock over grid wall-clock (higher = grid faster).
    pub fn speedup(&self) -> f64 {
        let g = self.grid_mean_s();
        if g > 0.0 {
            self.linear_mean_s() / g
        } else {
            f64::INFINITY
        }
    }
    /// Events per wall-clock second in the grid-backed runs.
    pub fn grid_events_per_sec(&self) -> f64 {
        let wall: f64 = self.grid_wall_s.iter().sum();
        if wall > 0.0 {
            self.grid_events.iter().sum::<u64>() as f64 / wall
        } else {
            0.0
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One benchmark scenario's results across protocols.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Short scenario label (e.g. `n100-f30-p0`).
    pub name: String,
    /// The scenario timed (with `spatial_grid` as configured per run).
    pub scenario: Scenario,
    /// One comparison per protocol.
    pub rows: Vec<Comparison>,
}

impl ScenarioReport {
    /// Aggregate scenario speedup: total linear wall-clock across every
    /// protocol and trial divided by total grid wall-clock. This is the
    /// "speedup on that scenario" number the acceptance gate reads.
    pub fn speedup(&self) -> f64 {
        let lin: f64 = self.rows.iter().flat_map(|r| r.linear_wall_s.iter()).sum();
        let grid: f64 = self.rows.iter().flat_map(|r| r.grid_wall_s.iter()).sum();
        if grid > 0.0 {
            lin / grid
        } else {
            f64::INFINITY
        }
    }
}

/// The full perfbench report.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// All scenario blocks.
    pub scenarios: Vec<ScenarioReport>,
}

/// The two paper-scale benchmark scenarios: 50 nodes / 10 flows and
/// 100 nodes / 30 flows, both at pause 0 (continuous motion — the
/// worst case for a position cache, hence the honest one to time).
pub fn paper_cases(duration_secs: u64, trials: u32) -> Vec<(String, Scenario)> {
    let mut n50 = Scenario::n50(10, 0);
    n50.duration_secs = duration_secs;
    n50.trials = trials;
    let mut n100 = Scenario::n100(30, 0);
    n100.duration_secs = duration_secs;
    n100.trials = trials;
    vec![("n50-f10-p0".to_string(), n50), ("n100-f30-p0".to_string(), n100)]
}

/// Times every `(scenario, protocol, trial)` cell, grid vs linear, on
/// seeds `seed_base + k`. Prints one progress line per cell to stderr.
pub fn run_perfbench(cases: &[(String, Scenario)], mode: &str) -> PerfReport {
    run_perfbench_filtered(cases, mode, None)
}

/// Like [`run_perfbench`] but restricted to one protocol when `only` is
/// set (case-insensitive name match; used by `perfbench --only` for
/// targeted profiling).
pub fn run_perfbench_filtered(
    cases: &[(String, Scenario)],
    mode: &str,
    only: Option<&str>,
) -> PerfReport {
    let mut scenarios = Vec::new();
    for (name, scenario) in cases {
        let mut rows = Vec::new();
        for protocol in Protocol::PAPER_SET {
            if let Some(want) = only {
                if !protocol.name().eq_ignore_ascii_case(want) {
                    continue;
                }
            }
            let mut cmp = Comparison {
                protocol: protocol.name(),
                grid_wall_s: Vec::new(),
                linear_wall_s: Vec::new(),
                grid_events: Vec::new(),
                linear_events: Vec::new(),
                metrics_identical: true,
            };
            for k in 0..scenario.trials {
                let seed = crate::runner::trial_seed(scenario.seed_base, k);
                let mut grid_sc = scenario.clone();
                grid_sc.spatial_grid = true;
                let g = run_timed(protocol, &grid_sc, seed);
                let mut lin_sc = scenario.clone();
                lin_sc.spatial_grid = false;
                let l = run_timed(protocol, &lin_sc, seed);
                cmp.metrics_identical &= g.metrics == l.metrics;
                cmp.grid_wall_s.push(g.wall_s);
                cmp.linear_wall_s.push(l.wall_s);
                cmp.grid_events.push(g.events);
                cmp.linear_events.push(l.events);
            }
            eprintln!(
                "perfbench {name} {:<10} grid {:.3}s linear {:.3}s speedup {:.2}x identical={}",
                cmp.protocol,
                cmp.grid_mean_s(),
                cmp.linear_mean_s(),
                cmp.speedup(),
                cmp.metrics_identical,
            );
            rows.push(cmp);
        }
        scenarios.push(ScenarioReport { name: name.clone(), scenario: scenario.clone(), rows });
    }
    PerfReport { mode: mode.to_string(), scenarios }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl PerfReport {
    /// Renders the report as `BENCH_4.json` (hand-rolled, stable key
    /// order; schema in `DESIGN.md` §12).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"perfbench\",\n");
        s.push_str("  \"schema\": 1,\n");
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"name\": \"{}\",", sc.name);
            let _ = writeln!(s, "      \"n_nodes\": {},", sc.scenario.n_nodes);
            let _ = writeln!(s, "      \"n_flows\": {},", sc.scenario.n_flows);
            let _ = writeln!(s, "      \"pause_secs\": {},", sc.scenario.pause_secs);
            let _ = writeln!(s, "      \"duration_secs\": {},", sc.scenario.duration_secs);
            let _ = writeln!(s, "      \"trials\": {},", sc.scenario.trials);
            let _ = writeln!(s, "      \"seed_base\": {},", sc.scenario.seed_base);
            s.push_str("      \"protocols\": [\n");
            for (j, row) in sc.rows.iter().enumerate() {
                s.push_str("        {\n");
                let _ = writeln!(s, "          \"protocol\": \"{}\",", row.protocol);
                let _ = writeln!(
                    s,
                    "          \"grid_wall_s\": [{}],",
                    row.grid_wall_s.iter().map(|&x| json_f64(x)).collect::<Vec<_>>().join(", ")
                );
                let _ = writeln!(
                    s,
                    "          \"linear_wall_s\": [{}],",
                    row.linear_wall_s.iter().map(|&x| json_f64(x)).collect::<Vec<_>>().join(", ")
                );
                let _ = writeln!(
                    s,
                    "          \"grid_events\": [{}],",
                    row.grid_events.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
                );
                let _ = writeln!(
                    s,
                    "          \"linear_events\": [{}],",
                    row.linear_events.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
                );
                let _ =
                    writeln!(s, "          \"grid_mean_wall_s\": {},", json_f64(row.grid_mean_s()));
                let _ = writeln!(
                    s,
                    "          \"linear_mean_wall_s\": {},",
                    json_f64(row.linear_mean_s())
                );
                let _ = writeln!(
                    s,
                    "          \"grid_events_per_sec\": {},",
                    json_f64(row.grid_events_per_sec())
                );
                let _ = writeln!(s, "          \"speedup\": {},", json_f64(row.speedup()));
                let _ = writeln!(s, "          \"metrics_identical\": {}", row.metrics_identical);
                s.push_str(if j + 1 < sc.rows.len() { "        },\n" } else { "        }\n" });
            }
            s.push_str("      ],\n");
            let _ = writeln!(s, "      \"scenario_speedup\": {}", json_f64(sc.speedup()));
            s.push_str(if i + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the human-readable table (`results/perfbench.txt`).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "perfbench ({} mode): spatial grid vs linear scan, identical seeds",
            self.mode
        );
        for sc in &self.scenarios {
            let _ = writeln!(
                s,
                "\n{} — {} nodes, {} flows, pause {} s, {} s simulated, {} trial(s)",
                sc.name,
                sc.scenario.n_nodes,
                sc.scenario.n_flows,
                sc.scenario.pause_secs,
                sc.scenario.duration_secs,
                sc.scenario.trials
            );
            let _ = writeln!(
                s,
                "{:<12} {:>14} {:>14} {:>9} {:>14} {:>10}",
                "protocol",
                "linear s/trial",
                "grid s/trial",
                "speedup",
                "grid events/s",
                "identical"
            );
            for row in &sc.rows {
                let _ = writeln!(
                    s,
                    "{:<12} {:>14.3} {:>14.3} {:>8.2}x {:>14.0} {:>10}",
                    row.protocol,
                    row.linear_mean_s(),
                    row.grid_mean_s(),
                    row.speedup(),
                    row.grid_events_per_sec(),
                    if row.metrics_identical { "yes" } else { "NO" }
                );
            }
            let _ = writeln!(s, "{:<12} {:>14} {:>14} {:>8.2}x", "aggregate", "", "", sc.speedup());
        }
        s
    }

    /// The minimum speedup across every `(scenario, protocol)` cell —
    /// what the acceptance gate checks.
    pub fn min_speedup(&self) -> f64 {
        self.scenarios
            .iter()
            .flat_map(|sc| sc.rows.iter())
            .map(Comparison::speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether any trial's grid metrics differed from its linear twin.
    pub fn any_mismatch(&self) -> bool {
        self.scenarios.iter().flat_map(|sc| sc.rows.iter()).any(|r| !r.metrics_identical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_case() -> Vec<(String, Scenario)> {
        let mut sc = Scenario::n50(3, 0);
        sc.n_nodes = 12;
        sc.terrain = (700.0, 300.0);
        sc.duration_secs = 10;
        sc.trials = 1;
        vec![("tiny".to_string(), sc)]
    }

    #[test]
    fn grid_and_linear_metrics_agree_and_report_renders() {
        let cases = tiny_case();
        let report = run_perfbench(&cases, "test");
        assert!(!report.any_mismatch(), "grid run diverged from linear run");
        assert!(report.min_speedup().is_finite());
        let json = report.to_json();
        for key in [
            "\"bench\": \"perfbench\"",
            "\"schema\": 1",
            "\"speedup\"",
            "\"metrics_identical\": true",
            "\"grid_events_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "unbalanced JSON");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "unbalanced JSON");
        let table = report.to_table();
        assert!(table.contains("LDR") && table.contains("speedup"), "table:\n{table}");
    }

    #[test]
    fn timed_run_reports_events_and_metrics() {
        let (_, sc) = &tiny_case()[0];
        let t = run_timed(Protocol::Ldr, sc, 42);
        assert!(t.events > 0, "kernel executed no events");
        assert!(t.metrics.data_originated > 0, "no traffic originated");
        assert!(t.wall_s >= 0.0);
    }

    #[test]
    fn paper_cases_match_the_paper_topologies() {
        let cases = paper_cases(900, 3);
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].1.n_nodes, 50);
        assert_eq!(cases[0].1.terrain, (1500.0, 300.0));
        assert_eq!(cases[1].1.n_nodes, 100);
        assert_eq!(cases[1].1.terrain, (2200.0, 600.0));
        for (_, sc) in &cases {
            assert_eq!(sc.pause_secs, 0, "bench at max mobility");
            assert_eq!(sc.trials, 3);
        }
    }
}
