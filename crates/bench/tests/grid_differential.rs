//! Full-trial grid-vs-linear differential at the paper's two
//! population scales: the 50- and 100-node scenarios must produce
//! `Metrics`-equal runs (every counter, every float sum, bit for bit)
//! with the spatial neighbor grid on and off, for all four paper
//! protocols on the same seed.
//!
//! This is the end-to-end counterpart of the unit-level differential
//! tests in `manet_sim::spatial`: the whole kernel — propagation, MAC,
//! routing, traffic, tracing — running on top of the index. Durations
//! are shortened (debug builds are an order of magnitude slower than
//! the release benchmark), but both trials still cross many grid
//! rebuild epochs and route-repair cycles.

use ldr_bench::perf::run_timed;
use ldr_bench::scenario::{Protocol, Scenario};

fn assert_grid_matches_linear(mut scenario: Scenario, duration_secs: u64, seed: u64) {
    scenario.duration_secs = duration_secs;
    for protocol in Protocol::PAPER_SET {
        let mut grid_sc = scenario.clone();
        grid_sc.spatial_grid = true;
        let g = run_timed(protocol, &grid_sc, seed);
        let mut lin_sc = scenario.clone();
        lin_sc.spatial_grid = false;
        let l = run_timed(protocol, &lin_sc, seed);
        assert!(g.metrics.data_originated > 0, "{}: silent run", protocol.name());
        assert_eq!(
            g.metrics,
            l.metrics,
            "{} diverged between grid and linear at {} nodes (seed {seed})",
            protocol.name(),
            scenario.n_nodes,
        );
    }
}

#[test]
fn paper_50_node_scenario_is_metrics_identical() {
    assert_grid_matches_linear(Scenario::n50(10, 0), 12, 4101);
}

#[test]
fn paper_100_node_scenario_is_metrics_identical() {
    assert_grid_matches_linear(Scenario::n100(30, 0), 8, 4102);
}
