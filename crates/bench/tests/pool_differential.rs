//! Full-trial pooled-vs-unpooled differential at the paper's two
//! population scales: recycling hot-path buffers through the kernel's
//! free lists ([`manet_sim::pool`]) must produce `Metrics`-equal runs
//! (every counter, every float sum, bit for bit) for all four paper
//! protocols on the same seed — and, on the strictest observable, the
//! full rendered trace and series JSONL documents must match byte for
//! byte.
//!
//! This is the end-to-end counterpart of the unit-level pool tests in
//! `manet_sim::pool` and `manet_sim::world`: the whole kernel — RREQ
//! floods, MAC contention, mobility, tracing — running on recycled
//! action buffers and receiver batches. Durations are shortened
//! (debug builds are an order of magnitude slower than the release
//! benchmark), but both trials still cross many route-repair cycles
//! and push every pooled buffer through thousands of take/put rounds.

use ldr_bench::perf::run_timed;
use ldr_bench::runner::{run_once_faulted, trial_fault_plan};
use ldr_bench::scenario::{Protocol, Scenario};
use ldr_bench::telemetry_export::render_run;

fn assert_pooled_matches_unpooled(mut scenario: Scenario, duration_secs: u64, seed: u64) {
    scenario.duration_secs = duration_secs;
    for protocol in Protocol::PAPER_SET {
        let mut pooled_sc = scenario.clone();
        pooled_sc.recycle_pools = true;
        let p = run_timed(protocol, &pooled_sc, seed);
        let mut fresh_sc = scenario.clone();
        fresh_sc.recycle_pools = false;
        let f = run_timed(protocol, &fresh_sc, seed);
        assert!(p.metrics.data_originated > 0, "{}: silent run", protocol.name());
        assert_eq!(p.events, f.events, "{}: event count diverged", protocol.name());
        assert_eq!(
            p.metrics,
            f.metrics,
            "{} diverged between pooled and allocate-per-event at {} nodes (seed {seed})",
            protocol.name(),
            scenario.n_nodes,
        );
    }
}

#[test]
fn paper_50_node_scenario_is_metrics_identical_with_pooling() {
    assert_pooled_matches_unpooled(Scenario::n50(10, 0), 10, 9101);
}

#[test]
fn paper_100_node_scenario_is_metrics_identical_with_pooling() {
    assert_pooled_matches_unpooled(Scenario::n100(30, 0), 6, 9102);
}

#[test]
fn faulted_paper_runs_replay_identically_with_pooling() {
    // Crash + churn + partition + impairment schedule (level 2): fault
    // application resets protocol state mid-run, so recycled buffers
    // cross crash/restart boundaries too.
    let mut scenario = Scenario::n50(10, 0);
    scenario.duration_secs = 10;
    let seed = 9103;
    let plan = trial_fault_plan(&scenario, seed, 2);
    assert!(!plan.is_empty(), "level 2 must inject faults");
    for protocol in [Protocol::Ldr, Protocol::Aodv] {
        let mut pooled_sc = scenario.clone();
        pooled_sc.recycle_pools = true;
        let p = run_once_faulted(protocol, &pooled_sc, seed, Some(plan.clone()));
        let mut fresh_sc = scenario.clone();
        fresh_sc.recycle_pools = false;
        let f = run_once_faulted(protocol, &fresh_sc, seed, Some(plan.clone()));
        assert_eq!(p, f, "{}: faulted pooled run diverged", protocol.name());
    }
}

#[test]
fn telemetry_jsonl_documents_are_byte_identical_with_pooling() {
    // The strictest observable: the full rendered trace and series
    // JSONL documents (every emission, every sample, every float
    // formatted) must match byte for byte, for both paper topologies.
    for (mut scenario, duration, seed) in
        [(Scenario::n50(10, 0), 8, 9104u64), (Scenario::n100(30, 0), 5, 9105u64)]
    {
        scenario.duration_secs = duration;
        for protocol in Protocol::PAPER_SET {
            scenario.recycle_pools = true;
            let p = render_run(protocol, &scenario, seed, None);
            assert!(p.trace.lines().count() > 10, "trace too quiet to be meaningful");
            scenario.recycle_pools = false;
            let f = render_run(protocol, &scenario, seed, None);
            assert_eq!(p.metrics, f.metrics, "{}: metrics diverged", protocol.name());
            assert_eq!(p.trace, f.trace, "{}: trace JSONL diverged", protocol.name());
            assert_eq!(p.series, f.series, "{}: series JSONL diverged", protocol.name());
        }
    }
}
