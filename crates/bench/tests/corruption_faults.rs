//! Corruption-workload hardening: wire decoding must be total and
//! undecodable control frames must surface as `Malformed` drops.
//!
//! Two layers of defence are exercised here. First, every paper
//! protocol is fed truncated and bit-mutated control frames of every
//! [`ControlKind`] directly through `handle_control` — the old
//! unchecked `get_u16`-style readers in `ldr::messages` panicked on
//! short reads, so completing at all is the regression check, and the
//! queued [`Action::DropMalformed`] proves the loss is *recorded*
//! rather than silently swallowed. Second, corruption-ppm fault plans
//! (hand-built so every link is impaired, plus the generated
//! crash/partition mix) replay deterministically over full trials for
//! all four protocols without a panic.

use ldr_bench::runner::{run_once_faulted, trial_fault_plan};
use ldr_bench::scenario::{Protocol, Scenario, SimFlavor};
use manet_sim::faults::{FaultAction, FaultPlan};
use manet_sim::packet::{ControlKind, ControlPacket, NodeId};
use manet_sim::protocol::{Action, Ctx};
use manet_sim::rng::SimRng;
use manet_sim::time::SimTime;

/// Drives one protocol instance's `handle_control` with the given
/// bytes for every claimed message kind, returning the actions queued.
fn feed_all_kinds(protocol: Protocol, bytes: &[u8]) -> Vec<Action> {
    let mut factory = protocol.factory();
    let mut proto = factory(NodeId(0), 8);
    let mut rng = SimRng::stream(11, "corruption-test");
    let mut actions = Vec::new();
    for kind in ControlKind::ALL {
        let mut ctx = Ctx::new(SimTime::from_secs(1), NodeId(0), 8, &mut rng, &mut actions);
        let ctrl = ControlPacket { kind, bytes: bytes.to_vec() };
        proto.handle_control(&mut ctx, NodeId(1), ctrl, true);
    }
    actions
}

#[test]
fn truncated_frames_are_counted_as_malformed_drops() {
    for protocol in Protocol::PAPER_SET {
        // A one-byte frame fails every decoder's length check (and
        // panicked inside the old LDR readers when the length guard
        // was missing). Each kind the protocol decodes must answer
        // with exactly one recorded malformed drop, and nothing else.
        let actions = feed_all_kinds(protocol, &[0u8]);
        let drops = actions.iter().filter(|a| matches!(a, Action::DropMalformed { .. })).count();
        assert_eq!(
            drops,
            actions.len(),
            "{}: truncated frames caused non-drop actions",
            protocol.name()
        );
        assert!(drops >= 2, "{}: decodes fewer than two message kinds", protocol.name());
    }
}

#[test]
fn mutated_frames_never_panic_any_protocol() {
    // Systematic corruption sweep: truncations of every length up to
    // the largest wire layout, and deterministic pseudo-random buffers
    // (some of which decode "successfully" into garbage — also fine,
    // the property under test is totality, not rejection).
    let mut rng = SimRng::stream(17, "corruption-bytes");
    let mut buffers: Vec<Vec<u8>> = (0..48usize).map(|len| vec![0xAB; len]).collect();
    for len in [1usize, 3, 7, 15, 20, 28, 36, 40, 64] {
        for type_byte in 0u8..6 {
            let mut b: Vec<u8> = (0..len).map(|_| (rng.below(256)) as u8).collect();
            if !b.is_empty() {
                b[0] = type_byte;
            }
            buffers.push(b);
        }
    }
    for protocol in Protocol::PAPER_SET {
        for bytes in &buffers {
            // Completing without a panic is the assertion.
            let _ = feed_all_kinds(protocol, bytes);
        }
    }
}

/// A fault schedule that impairs every link with a heavy corruption
/// rate from the first simulated second, layered over the generated
/// crash/partition mix so replayed control frames and mid-flight
/// corruption interact.
fn corruption_heavy_plan(scenario: &Scenario, seed: u64) -> FaultPlan {
    let mut entries: Vec<_> = trial_fault_plan(scenario, seed, 2).entries().to_vec();
    let n = scenario.n_nodes as u16;
    for a in 0..n {
        for b in (a + 1)..n {
            entries.push((
                SimTime::from_secs(1),
                FaultAction::LinkImpair {
                    a: NodeId(a),
                    b: NodeId(b),
                    loss_ppm: 40_000,
                    corrupt_ppm: 350_000,
                },
            ));
        }
    }
    FaultPlan::new(entries)
}

#[test]
fn corruption_ppm_fault_plans_replay_without_panics() {
    let scenario = Scenario {
        n_nodes: 15,
        terrain: (700.0, 300.0),
        n_flows: 3,
        pause_secs: 0,
        duration_secs: 25,
        trials: 1,
        seed_base: 300,
        flavor: SimFlavor::Default,
        audit: true,
        spatial_grid: true,
        workers: 1,
        recycle_pools: true,
        profile: false,
    };
    for protocol in Protocol::PAPER_SET {
        let plan = corruption_heavy_plan(&scenario, 301);
        let a = run_once_faulted(protocol, &scenario, 301, Some(plan.clone()));
        let b = run_once_faulted(protocol, &scenario, 301, Some(plan));
        assert!(a.faults_injected > 0, "{}: plan injected nothing", protocol.name());
        assert!(a.collisions > 0, "{}: corruption never corrupted a frame", protocol.name());
        assert_eq!(a, b, "{}: corrupted run is not replayable", protocol.name());
    }
}
