//! Pins the tracegrep forensics output against a hand-authored trace
//! fixture. The fixture is written in the exact wire format the
//! exporter produces (`manet_sim::telemetry::event_to_jsonl`), so this
//! doubles as a reader/writer compatibility check: if the schema
//! drifts, bump `version` and regenerate both fixtures.

use ldr_bench::forensics::{self, TraceFile};

const FIXTURE: &str = include_str!("fixtures/tracegrep_trace.jsonl");
const EXPLAIN_GOLDEN: &str = include_str!("fixtures/tracegrep_explain.golden.txt");

fn fixture() -> TraceFile {
    TraceFile::parse(FIXTURE).expect("fixture must parse")
}

#[test]
fn explain_packet_matches_golden_byte_for_byte() {
    let trace = fixture();
    assert_eq!(forensics::explain_packet(&trace, 0, 0), EXPLAIN_GOLDEN);
}

#[test]
fn fixture_header_carries_schema_and_version() {
    let trace = fixture();
    assert_eq!(trace.header.str_field("schema"), Some("manet-trace"));
    assert_eq!(trace.header.u64_field("version"), Some(1));
    assert_eq!(trace.header.u64_field("seed"), Some(7));
    assert_eq!(trace.header.u64_field("nodes"), Some(5));
    assert_eq!(trace.events.len(), 12);
}

#[test]
fn dropped_packet_gets_a_dropped_verdict() {
    let report = forensics::explain_packet(&fixture(), 0, 1);
    assert!(report.contains("verdict: DROPPED at node 1 (0.005100s, reason no_route)"), "{report}");
}

#[test]
fn unknown_packet_reports_no_events() {
    let report = forensics::explain_packet(&fixture(), 9, 9);
    assert_eq!(report, "packet flow=9 seq=9: no events in trace\n");
}

#[test]
fn fixture_route_stream_is_loop_free() {
    let report = forensics::loops_check(&fixture());
    assert!(report.contains("3 route mutations replayed, 0 loop(s) found"), "{report}");
}

#[test]
fn drops_report_counts_the_single_no_route_drop() {
    let report = forensics::drops_report(&fixture());
    assert!(report.starts_with("drops: 1 total"), "{report}");
    assert!(report.contains("no_route"), "{report}");
}
