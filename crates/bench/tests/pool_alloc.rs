//! Steady-state allocation-count differential for the recycling pools
//! ([`manet_sim::pool`]): with `recycle_pools` on, the hot event loop
//! must perform strictly fewer heap allocations than the
//! allocate-per-event reference on the identical deterministic run —
//! and the two runs must still be `Metrics`-equal, bit for bit.
//!
//! The counter is a thin wrapper around the system allocator, so this
//! file holds exactly one `#[test]`: integration tests in other files
//! run in their own binaries and are unaffected, but a second test in
//! *this* binary would race the window counters.
//!
//! Measurement excludes start-up: the world is built and run through a
//! warm-up prefix first (filling the free lists and amortising event
//! queue growth), then allocations are counted over the steady-state
//! suffix only.

use ldr_bench::runner::build_world;
use ldr_bench::scenario::{Protocol, Scenario};
use manet_sim::time::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by the steady-state window (warm-up excluded)
/// of one deterministic run, plus the run's final metrics.
fn steady_state_allocs(recycle_pools: bool) -> (u64, manet_sim::Metrics) {
    let mut scenario = Scenario::n50(10, 0);
    scenario.duration_secs = 12;
    scenario.recycle_pools = recycle_pools;
    let mut world = build_world(Protocol::Ldr, &scenario, 9201, None);
    // Warm-up: traffic is flowing and the free lists are primed.
    world.run_until(SimTime::from_secs(4));
    let before = ALLOCS.load(Ordering::Relaxed);
    world.run_until(SimTime::from_secs(12));
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    (during, world.into_metrics())
}

#[test]
fn pooled_steady_state_allocates_less_and_stays_byte_identical() {
    let (pooled, pooled_metrics) = steady_state_allocs(true);
    let (fresh, fresh_metrics) = steady_state_allocs(false);
    assert_eq!(
        pooled_metrics, fresh_metrics,
        "pooling changed the run's observable result — it must only change allocation traffic"
    );
    assert!(pooled > 0 && fresh > 0, "allocator counter not engaged");
    assert!(
        pooled < fresh,
        "recycling must cut steady-state allocations: pooled {pooled} >= fresh {fresh}"
    );
    // The recycled buffers (protocol action lists + receiver batches)
    // are a large share of per-event heap traffic; require a real
    // saving, not a rounding error.
    assert!(
        pooled * 100 <= fresh * 95,
        "expected ≥5% fewer steady-state allocations: pooled {pooled}, fresh {fresh}"
    );
}
