//! Golden-summary regression: a small fig2-style multi-protocol run
//! with fixed seeds must render byte-for-byte identically to the pinned
//! fixture, so any drift in the simulator, the protocols or the
//! aggregation shows up as a diff instead of silently shifting results.
//! Plus `Metrics`/`Summary` edge cases: zero-delivery flows, single-
//! trial variance and NaN-free percentiles.
//!
//! Regenerate the fixture (after an *intentional* behaviour change)
//! with `BLESS=1 cargo test -p ldr-bench --test golden_summary`.

use ldr_bench::runner::run_trials;
use ldr_bench::scenario::{Protocol, Scenario, SimFlavor};
use ldr_bench::Summary;
use manet_sim::metrics::Metrics;
use manet_sim::stats::{percentile, Accumulator};
use manet_sim::time::SimDuration;

/// The pinned scenario: 10 nodes, fixed seeds, fig2-shaped but small
/// enough to run on every `cargo test`.
fn golden_scenario() -> Scenario {
    Scenario {
        n_nodes: 10,
        terrain: (600.0, 300.0),
        n_flows: 3,
        pause_secs: 10,
        duration_secs: 30,
        trials: 2,
        seed_base: 2003,
        flavor: SimFlavor::Default,
        audit: true,
        spatial_grid: true,
        workers: 1,
        recycle_pools: true,
        profile: false,
    }
}

/// Renders the summaries exactly as the fixture stores them: the
/// Table-1-style row plus the audit counters the fault work added.
fn render(rows: &[Summary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>16} {:>16} {:>16} {:>16} {:>14} {:>14} {:>6} {:>7}\n",
        "protocol",
        "delivery",
        "latency(s)",
        "net load",
        "RREQ load",
        "RREP init",
        "RREP recv",
        "loops",
        "trials"
    ));
    for r in rows {
        out.push_str(&format!("{} {:>6} {:>7}\n", r.table_row(), r.loop_violations, r.trials()));
    }
    out
}

const FIXTURE_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_summary.txt");

#[test]
fn fig2_style_summary_matches_pinned_fixture() {
    let sc = golden_scenario();
    let rows: Vec<Summary> = [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr]
        .iter()
        .map(|&p| run_trials(p, &sc))
        .collect();
    let actual = render(&rows);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(FIXTURE_PATH, &actual).expect("write fixture");
        return;
    }
    let expected = include_str!("fixtures/golden_summary.txt");
    assert_eq!(
        actual, expected,
        "golden summary drifted; if the change is intentional, regenerate with \
         BLESS=1 cargo test -p ldr-bench --test golden_summary"
    );
}

#[test]
fn zero_delivery_metrics_and_summary_are_nan_free() {
    // A flow that originates traffic but delivers nothing: every ratio
    // must degrade to 0, never NaN or infinity.
    let mut m = Metrics::new();
    m.data_originated = 50;
    assert_eq!(m.delivery_ratio(), 0.0);
    assert_eq!(m.mean_latency_s(), 0.0);
    for v in [m.network_load(), m.rreq_load(), m.rrep_init_per_rreq(), m.rrep_recv_per_rreq()] {
        assert!(v.is_finite(), "zero-delivery ratio must stay finite, got {v}");
    }
    let mut s = Summary::new("dead");
    s.add(&m);
    let row = s.table_row();
    assert!(!row.contains("NaN") && !row.contains("inf"), "row must be NaN-free: {row}");
}

#[test]
fn single_trial_summary_has_zero_finite_ci() {
    let mut m = Metrics::new();
    m.data_originated = 10;
    for i in 0..8u64 {
        m.record_delivery(1, i as u32, SimDuration::from_millis(25));
    }
    let mut s = Summary::new("solo");
    s.add(&m);
    assert_eq!(s.trials(), 1);
    // Student-t is undefined at zero degrees of freedom; the CI must
    // collapse to exactly zero rather than NaN or infinity.
    assert_eq!(s.delivery.ci95_half_width(), 0.0);
    assert_eq!(s.latency.ci95_half_width(), 0.0);
    assert_eq!(s.delivery.display(3), "0.800 ± 0.000");
}

#[test]
fn percentiles_and_accumulators_stay_nan_free_on_degenerate_data() {
    assert_eq!(percentile(&[], 95.0), 0.0);
    let latencies = [0.02, 0.05, 0.03, 0.9];
    assert!(percentile(&latencies, 95.0).is_finite());
    let empty = Accumulator::new();
    assert!(empty.mean().is_finite());
    assert!(empty.ci95_half_width().is_finite());
    assert!(!empty.display(3).contains("NaN"));
}
