//! Telemetry is observation-pure and byte-deterministic.
//!
//! Two contracts, enforced for both paper scenarios (smoke-sized) and
//! every protocol family:
//!
//! 1. **Observation equivalence** — attaching the flight recorder, the
//!    time-series sampler and a JSONL trace sink must not change a
//!    run's [`Metrics`]. The sampler rides the FEL as a real event, so
//!    this catches any seq/RNG leakage from the telemetry path into
//!    the simulation.
//! 2. **Byte determinism** — exporting the same `(scenario, seed)` run
//!    twice yields byte-identical trace and series documents, so a
//!    trace file is a stable forensic artifact.

use ldr_bench::forensics::{Json, TraceFile};
use ldr_bench::runner::run_once;
use ldr_bench::scenario::{Protocol, Scenario};
use ldr_bench::telemetry_export::render_run;

/// The paper's two scenarios, cut down to smoke size.
fn smoke_scenarios() -> Vec<(Scenario, u64)> {
    let mut a = Scenario::n50(10, 30);
    a.duration_secs = 20;
    a.trials = 1;
    let mut b = Scenario::n100(30, 30);
    b.duration_secs = 10;
    b.trials = 1;
    vec![(a, 4242), (b, 4243)]
}

#[test]
fn telemetry_never_perturbs_metrics() {
    for (scenario, seed) in smoke_scenarios() {
        for proto in [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr, Protocol::Olsr] {
            let bare = run_once(proto, &scenario, seed);
            let run = render_run(proto, &scenario, seed, None);
            assert_eq!(
                bare,
                run.metrics,
                "{} on n{} diverged with telemetry attached",
                proto.name(),
                scenario.n_nodes
            );
        }
    }
}

#[test]
fn exports_are_byte_identical_across_reruns() {
    for (scenario, seed) in smoke_scenarios() {
        for proto in [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr, Protocol::Olsr] {
            let first = render_run(proto, &scenario, seed, None);
            let again = render_run(proto, &scenario, seed, None);
            assert_eq!(first.trace, again.trace, "{} trace not reproducible", proto.name());
            assert_eq!(first.series, again.series, "{} series not reproducible", proto.name());
        }
    }
}

#[test]
fn every_exported_line_is_valid_jsonl() {
    let (scenario, seed) = smoke_scenarios().remove(0);
    for proto in [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr, Protocol::Olsr] {
        let run = render_run(proto, &scenario, seed, None);
        let trace = TraceFile::parse(&run.trace)
            .unwrap_or_else(|e| panic!("{} trace rejected: {e}", proto.name()));
        assert!(!trace.events.is_empty(), "{} produced an empty trace", proto.name());
        for line in run.series.lines() {
            Json::parse(line)
                .unwrap_or_else(|| panic!("{} series line {line:?} is not JSON", proto.name()));
        }
        // DSR and OLSR must now narrate their route mutations too.
        if matches!(proto, Protocol::Dsr | Protocol::Olsr) {
            let installs = trace
                .events
                .iter()
                .filter(|e| e.str_field("type") == Some("route_install"))
                .count();
            assert!(installs > 0, "{} exported no route_install events", proto.name());
        }
    }
}
