//! Resumability and memoization differentials for the sweep engine
//! (ISSUE 9 satellite): a finished sweep re-runs with zero executed
//! cells and byte-identical BENCH output, an interrupted sweep resumes
//! with the remainder only and still matches a clean run byte for
//! byte, and the content-addressed cache serves cells across journals.

use ldr_bench::scenario::{Protocol, Scenario};
use ldr_bench::sweep::{run_sweep, CellRecord, CellSpec, SweepConfig};
use std::path::{Path, PathBuf};

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ldr-sweep-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg_in(dir: &Path) -> SweepConfig {
    let mut cfg = SweepConfig::rooted(dir);
    cfg.threads = 2;
    cfg
}

/// Six quick cells: 12 nodes, 10 s simulated, two protocols × seeds
/// {7, 8} × fault levels {0, 1} minus two cells to keep it snappy.
fn tiny_cells() -> Vec<CellSpec> {
    let mut sc = Scenario::n50(3, 0);
    sc.n_nodes = 12;
    sc.terrain = (700.0, 300.0);
    sc.duration_secs = 10;
    let mut cells = Vec::new();
    for protocol in [Protocol::Ldr, Protocol::Aodv] {
        for seed in [7u64, 8] {
            for level in [0u32, 1] {
                if protocol == Protocol::Aodv && level == 1 {
                    continue;
                }
                cells.push(CellSpec {
                    scenario_name: "tiny".to_string(),
                    scenario: sc.clone(),
                    protocol,
                    seed,
                    fault_level: level,
                });
            }
        }
    }
    assert_eq!(cells.len(), 6);
    cells
}

#[test]
fn rerun_executes_zero_cells_and_reproduces_bench_bytes() {
    let dir = fresh_dir("rerun");
    let cells = tiny_cells();
    let cfg = cfg_in(&dir);

    let first = run_sweep(&cells, &cfg).expect("clean sweep");
    assert!(first.complete());
    assert_eq!(first.executed, cells.len(), "cold start simulates everything");
    assert_eq!(first.failures(), 0);
    let bench_first = first.to_json("test");

    let second = run_sweep(&cells, &cfg).expect("rerun");
    assert!(second.complete());
    assert_eq!(second.executed, 0, "an unchanged tree must execute zero cells");
    assert_eq!(second.journal_hits, cells.len(), "every cell replayed from the journal");
    assert_eq!(second.to_json("test"), bench_first, "BENCH output must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_remainder_only_and_matches_clean_run() {
    let clean_dir = fresh_dir("clean");
    let cells = tiny_cells();
    let clean = run_sweep(&cells, &cfg_in(&clean_dir)).expect("clean sweep");
    let bench_clean = clean.to_json("test");

    // "Kill" a sweep after 2 executed cells (max_cells models the
    // interruption: journal flushed per cell, process gone).
    let int_dir = fresh_dir("interrupted");
    let mut paused_cfg = cfg_in(&int_dir);
    paused_cfg.max_cells = Some(2);
    let paused = run_sweep(&cells, &paused_cfg).expect("paused sweep");
    assert!(!paused.complete());
    assert_eq!(paused.executed, 2);
    assert_eq!(paused.cells.iter().filter(|(_, r)| r.is_none()).count(), 4);

    // Restart without the cap: only the remainder runs.
    let resumed = run_sweep(&cells, &cfg_in(&int_dir)).expect("resumed sweep");
    assert!(resumed.complete());
    assert_eq!(resumed.executed, 4, "resume must complete the remainder only");
    assert_eq!(resumed.journal_hits, 2, "the interrupted cells come from the journal");
    assert_eq!(
        resumed.to_json("test"),
        bench_clean,
        "interrupted-then-resumed must match a clean run byte for byte"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&int_dir);
}

#[test]
fn content_addressed_cache_serves_cells_across_journals() {
    let dir = fresh_dir("cache");
    let cells = tiny_cells();
    let cfg = cfg_in(&dir);
    let first = run_sweep(&cells, &cfg).expect("clean sweep");

    // A different sweep (separate journal) sharing the cache dir: all
    // cells are memo hits, nothing simulates, bytes unchanged.
    let mut other = cfg.clone();
    other.journal = dir.join("journal-2.jsonl");
    let second = run_sweep(&cells, &other).expect("cache-served sweep");
    assert!(second.complete());
    assert_eq!(second.executed, 0);
    assert_eq!(second.journal_hits, 0);
    assert_eq!(second.memo_hits, cells.len(), "every cell must come from the cache");
    assert_eq!(second.to_json("test"), first.to_json("test"));

    // --fresh distrusts journal and cache alike.
    let mut fresh = cfg.clone();
    fresh.fresh = true;
    let third = run_sweep(&cells, &fresh).expect("fresh sweep");
    assert_eq!(third.executed, cells.len(), "--fresh must re-execute everything");
    assert_eq!(third.to_json("test"), first.to_json("test"), "and still agree bytewise");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journaled_failures_are_honored_but_never_cached() {
    let dir = fresh_dir("failed");
    let cells = tiny_cells();
    let cfg = cfg_in(&dir);

    // Pre-seed the journal with a failed record for the first cell, as
    // if a previous invocation's trial panicked.
    std::fs::create_dir_all(&cfg.cache_dir).expect("mkdir");
    let failed = CellRecord::Failed { panic_msg: "injected: trial panicked".to_string() };
    let line = ldr_bench::sweep::record_line(&cells[0].key(), &cells[0].display(), &failed);
    std::fs::write(&cfg.journal, format!("{line}\n")).expect("seed journal");

    let outcome = run_sweep(&cells, &cfg).expect("sweep with failed cell");
    assert!(outcome.complete());
    assert_eq!(outcome.executed, cells.len() - 1, "the failed cell is not re-run");
    assert_eq!(outcome.failures(), 1);
    assert_eq!(outcome.cells[0].1, Some(failed));
    assert!(
        !cfg.cache_dir.join(format!("{}.json", cells[0].key())).exists(),
        "failed cells must never enter the content-addressed cache"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
