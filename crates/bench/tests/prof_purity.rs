//! The profiler is observation-pure: turning it on changes nothing.
//!
//! The kernel profiler reads the wall clock, so its timing section can
//! never be deterministic — but everything the simulation *observes*
//! must be byte-identical whether profiling is on or off, and the
//! deterministic section of the prof document (counts + histograms)
//! must reproduce across reruns. [`purity_check`] enforces all of it:
//!
//! 1. metrics equality on vs off,
//! 2. byte-identical trace and series JSONL on vs off,
//! 3. a prof document present iff profiling is on,
//! 4. rerun byte-determinism of the prof count/hist section.
//!
//! Exercised for every paper protocol, both paper scenarios (smoke
//! durations) and both kernels — `workers=1` takes the sequential
//! path, `workers=2` the windowed parallel path, whose plan/build/
//! execute/replay spans are the likeliest place for a probe to leak.

use ldr_bench::profiling::purity_check;
use ldr_bench::scenario::{Protocol, Scenario};

/// The paper's two scenarios, cut down to smoke size.
fn smoke_scenarios() -> Vec<(Scenario, u64)> {
    let mut a = Scenario::n50(10, 30);
    a.duration_secs = 8;
    a.trials = 1;
    let mut b = Scenario::n100(30, 30);
    b.duration_secs = 5;
    b.trials = 1;
    vec![(a, 7001), (b, 7002)]
}

#[test]
fn profiling_is_observation_pure_on_the_sequential_kernel() {
    for (scenario, seed) in smoke_scenarios() {
        for proto in [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr, Protocol::Olsr] {
            if let Err(e) = purity_check(proto, &scenario, seed) {
                panic!("sequential purity violated: {e}");
            }
        }
    }
}

#[test]
fn profiling_is_observation_pure_on_the_parallel_kernel() {
    for (mut scenario, seed) in smoke_scenarios() {
        scenario.workers = 2;
        for proto in [Protocol::Ldr, Protocol::Aodv, Protocol::Dsr, Protocol::Olsr] {
            if let Err(e) = purity_check(proto, &scenario, seed) {
                panic!("parallel purity violated: {e}");
            }
        }
    }
}
