//! Full-trial parallel-vs-sequential differential at the paper's two
//! population scales: for all four paper protocols on the same seed,
//! the deterministic parallel event kernel (`manet_sim::parallel`)
//! must produce `Metrics`-equal runs (every counter, every float sum,
//! bit for bit) at every worker count — the paper scenarios are the
//! workload the whole benchmark suite rests on.
//!
//! This is the end-to-end counterpart of the unit-level differential
//! tests in `manet_sim::parallel` (which also engineer topologies
//! where the fan-out provably engages): the whole stack — RREQ floods,
//! MAC contention, mobility, tracing — running through the window
//! driver. Durations are shortened (debug builds are an order of
//! magnitude slower than the release benchmark), but both trials still
//! cross many route-repair cycles.
//!
//! Note the paper terrains are dense (1500 m × 300 m at a 275 m radio
//! range), so most windows collapse to a single spatial component and
//! run on the sequential path — which is itself the property under
//! test: the kernel must *choose* correctly, not just merge correctly.

use ldr_bench::perf::run_timed;
use ldr_bench::runner::{run_once_faulted, trial_fault_plan};
use ldr_bench::scenario::{Protocol, Scenario};
use ldr_bench::telemetry_export::render_run;

fn assert_workers_match_sequential(mut scenario: Scenario, duration_secs: u64, seed: u64) {
    scenario.duration_secs = duration_secs;
    for protocol in Protocol::PAPER_SET {
        let mut seq_sc = scenario.clone();
        seq_sc.workers = 1;
        let s = run_timed(protocol, &seq_sc, seed);
        assert!(s.metrics.data_originated > 0, "{}: silent run", protocol.name());
        for workers in [2, 8] {
            let mut par_sc = scenario.clone();
            par_sc.workers = workers;
            let p = run_timed(protocol, &par_sc, seed);
            assert_eq!(p.events, s.events, "{}: event count diverged", protocol.name());
            assert_eq!(
                p.metrics,
                s.metrics,
                "{} diverged at {} workers, {} nodes (seed {seed})",
                protocol.name(),
                workers,
                scenario.n_nodes,
            );
        }
    }
}

#[test]
fn paper_50_node_scenario_is_metrics_identical_in_parallel() {
    assert_workers_match_sequential(Scenario::n50(10, 0), 10, 6101);
}

#[test]
fn paper_100_node_scenario_is_metrics_identical_in_parallel() {
    assert_workers_match_sequential(Scenario::n100(30, 0), 6, 6102);
}

#[test]
fn faulted_paper_runs_replay_identically_in_parallel() {
    // Crash + churn + partition + impairment schedule (level 2), LDR
    // and AODV: fault application, node-down gating and the
    // impairment-forces-sequential rule all under the window driver.
    let mut scenario = Scenario::n50(10, 0);
    scenario.duration_secs = 10;
    let seed = 6103;
    let plan = trial_fault_plan(&scenario, seed, 2);
    assert!(!plan.is_empty(), "level 2 must inject faults");
    for protocol in [Protocol::Ldr, Protocol::Aodv] {
        let mut seq_sc = scenario.clone();
        seq_sc.workers = 1;
        let s = run_once_faulted(protocol, &seq_sc, seed, Some(plan.clone()));
        let mut par_sc = scenario.clone();
        par_sc.workers = 4;
        let p = run_once_faulted(protocol, &par_sc, seed, Some(plan.clone()));
        assert_eq!(p, s, "{}: faulted parallel run diverged", protocol.name());
    }
}

#[test]
fn telemetry_jsonl_documents_are_byte_identical_in_parallel() {
    // The strictest observable: the full rendered trace and series
    // JSONL documents (every emission, every sample, every float
    // formatted) must match byte for byte.
    let mut scenario = Scenario::n50(10, 0);
    scenario.duration_secs = 8;
    let seed = 6104;
    scenario.workers = 1;
    let s = render_run(Protocol::Ldr, &scenario, seed, None);
    assert!(s.trace.lines().count() > 10, "trace too quiet to be meaningful");
    scenario.workers = 4;
    let p = render_run(Protocol::Ldr, &scenario, seed, None);
    assert_eq!(p.metrics, s.metrics, "metrics diverged");
    assert_eq!(p.trace, s.trace, "trace JSONL diverged");
    assert_eq!(p.series, s.series, "series JSONL diverged");
}

#[test]
fn randomized_small_worlds_are_identical_across_worker_counts() {
    // Seed-derived random scenario sweep (a lightweight proptest): the
    // differential must hold on arbitrary small configurations, not
    // just the hand-picked ones.
    for case in 0u64..4 {
        let seed = 7000 + case * 31;
        let scenario = Scenario {
            n_nodes: 16 + (case as usize % 3) * 12,
            terrain: (900.0 + 1400.0 * case as f64, 300.0),
            n_flows: 3 + case as usize,
            pause_secs: if case % 2 == 0 { 0 } else { 20 },
            duration_secs: 8,
            trials: 1,
            seed_base: seed,
            flavor: ldr_bench::scenario::SimFlavor::Default,
            audit: false,
            spatial_grid: case % 2 == 0,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        let s = run_timed(Protocol::Ldr, &scenario, seed);
        for workers in [2, 4, 8] {
            let mut par_sc = scenario.clone();
            par_sc.workers = workers;
            let p = run_timed(Protocol::Ldr, &par_sc, seed);
            assert_eq!(
                p.metrics, s.metrics,
                "case {case} (seed {seed}) diverged at {workers} workers"
            );
            assert_eq!(p.events, s.events, "case {case}: event count diverged");
        }
    }
}
