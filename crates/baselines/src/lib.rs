//! # manet-baselines — the comparison protocols of the LDR evaluation
//!
//! Clean-room implementations of the three protocols §4 of the paper
//! compares LDR against, all built on the same
//! [`manet_sim::protocol::RoutingProtocol`] interface:
//!
//! * [`aodv`] — Ad hoc On-demand Distance Vector routing
//!   (draft-ietf-manet-aodv-10): sequence-number-ordered reactive
//!   routing, whose number inflation on route breaks is the behaviour
//!   LDR's feasible-distance invariant removes (Fig. 7).
//! * [`dsr`] — Dynamic Source Routing (draft 03, with a draft-07
//!   flavour for the Fig. 6 cross-check): source routes in every data
//!   packet, aggressive route caches with no expiry.
//! * [`olsr`] — Optimized Link State Routing (draft 06) with the
//!   paper's FIFO jitter-queue fix: proactive link state flooded
//!   through multipoint relays.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aodv;
pub mod dsr;
pub mod olsr;

pub use aodv::{Aodv, AodvConfig};
pub use dsr::{Dsr, DsrConfig};
pub use olsr::{Olsr, OlsrConfig};
mod proptests;
