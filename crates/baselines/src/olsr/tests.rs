//! OLSR unit tests.

use super::*;
use manet_sim::protocol::Action;
use manet_sim::rng::SimRng;

struct Node {
    olsr: Olsr,
    rng: SimRng,
    now: SimTime,
}

impl Node {
    fn new(id: u16) -> Self {
        Self::with_cfg(id, OlsrConfig::default())
    }

    fn with_cfg(id: u16, cfg: OlsrConfig) -> Self {
        Node {
            olsr: Olsr::new(NodeId(id), cfg),
            rng: SimRng::from_seed(u64::from(id)),
            now: SimTime::from_secs(1),
        }
    }

    fn call<F: FnOnce(&mut Olsr, &mut Ctx)>(&mut self, f: F) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(self.now, self.olsr.id, 50, &mut self.rng, &mut actions);
        f(&mut self.olsr, &mut ctx);
        actions
    }

    fn hello_from(&mut self, prev: u16, h: Hello) -> Vec<Action> {
        self.call(|o, ctx| o.handle_hello(ctx, NodeId(prev), h))
    }

    fn tc_from(&mut self, prev: u16, t: Tc) -> Vec<Action> {
        self.call(|o, ctx| o.handle_tc(ctx, NodeId(prev), t))
    }
}

fn ids(v: &[u16]) -> Vec<NodeId> {
    v.iter().map(|&i| NodeId(i)).collect()
}

fn hello(sym: &[u16], heard: &[u16], mpr: &[u16]) -> Hello {
    Hello { sym: ids(sym), heard: ids(heard), mpr: ids(mpr) }
}

fn data(src: u16, dst: u16) -> DataPacket {
    DataPacket {
        src: NodeId(src),
        dst: NodeId(dst),
        flow: 1,
        seq: 0,
        created: SimTime::from_secs(1),
        payload_len: 512,
        ttl: 64,
        ext: vec![],
    }
}

fn broadcasts(actions: &[Action], kind: ControlKind) -> usize {
    actions
        .iter()
        .filter(|a| matches!(a, Action::Broadcast { ctrl, .. } if ctrl.kind == kind))
        .count()
}

#[test]
fn link_sensing_two_phase() {
    let mut n = Node::new(0);
    // Neighbour 2 hellos without listing us: asymmetric.
    n.hello_from(2, hello(&[], &[], &[]));
    assert_eq!(n.olsr.sym_neighbors(n.now), vec![]);
    assert_eq!(n.olsr.heard_neighbors(n.now), ids(&[2]));
    // Once it lists us: symmetric.
    n.hello_from(2, hello(&[], &[0], &[]));
    assert_eq!(n.olsr.sym_neighbors(n.now), ids(&[2]));
}

#[test]
fn links_expire_after_hold_time() {
    let mut n = Node::new(0);
    n.hello_from(2, hello(&[0], &[], &[]));
    assert_eq!(n.olsr.sym_neighbors(n.now), ids(&[2]));
    n.now = SimTime::from_secs(8); // hold is 6 s from t=1
    assert_eq!(n.olsr.sym_neighbors(n.now), vec![]);
}

#[test]
fn mpr_selection_covers_two_hop_neighbourhood() {
    let mut n = Node::new(0);
    // Neighbours 1 and 2; 1 reaches {3, 4}, 2 reaches {4}.
    n.hello_from(1, hello(&[0, 3, 4], &[], &[]));
    n.hello_from(2, hello(&[0, 4], &[], &[]));
    n.olsr.recompute_mprs(n.now);
    // 1 alone covers everything; greedy picks it.
    assert!(n.olsr.mprs().contains(&NodeId(1)));
    assert!(!n.olsr.mprs().contains(&NodeId(2)), "2 adds no coverage");
}

#[test]
fn sole_provider_is_mandatory_mpr() {
    let mut n = Node::new(0);
    n.hello_from(1, hello(&[0, 3], &[], &[]));
    n.hello_from(2, hello(&[0, 3, 4], &[], &[]));
    n.olsr.recompute_mprs(n.now);
    // Only 2 reaches 4 — it must be selected.
    assert!(n.olsr.mprs().contains(&NodeId(2)));
}

#[test]
fn hello_advertises_mprs_and_selector_set_updates() {
    let mut n = Node::new(0);
    n.hello_from(1, hello(&[0, 3], &[], &[0]));
    assert!(n.olsr.mpr_selectors.contains_key(&NodeId(1)), "1 selected us");
    n.hello_from(1, hello(&[0, 3], &[], &[]));
    assert!(!n.olsr.mpr_selectors.contains_key(&NodeId(1)), "deselected");
}

#[test]
fn tc_only_generated_by_selected_relays() {
    let mut n = Node::new(0);
    let acts = n.call(|o, ctx| o.send_tc(ctx));
    assert!(acts.is_empty(), "no selectors: no TC");
    n.hello_from(1, hello(&[0], &[], &[0]));
    let acts = n.call(|o, ctx| o.send_tc(ctx));
    // With the jitter queue, the TC lands in the queue + a timer.
    assert!(acts.iter().any(|a| matches!(a, Action::SetTimer { .. })));
    let acts = n.call(|o, ctx| o.drain_one(ctx));
    assert_eq!(broadcasts(&acts, ControlKind::Tc), 1);
}

#[test]
fn tc_forwarded_only_by_mprs_of_the_sender() {
    let cfg = OlsrConfig { jitter_max: None, ..OlsrConfig::default() };
    let mut n = Node::with_cfg(0, cfg.clone());
    // Node 5 selected us as MPR.
    n.hello_from(5, hello(&[0], &[], &[0]));
    let tc = Tc { originator: NodeId(9), ansn: 1, seq: 1, ttl: 10, selectors: ids(&[4]) };
    let acts = n.tc_from(5, tc.clone());
    assert_eq!(broadcasts(&acts, ControlKind::Tc), 1, "selector's TC is relayed");
    // Duplicate suppressed.
    let acts = n.tc_from(5, tc.clone());
    assert_eq!(broadcasts(&acts, ControlKind::Tc), 0);
    // From a node that did NOT select us: processed but not relayed.
    let mut m = Node::with_cfg(0, cfg);
    m.hello_from(5, hello(&[0], &[], &[]));
    let acts = m.tc_from(5, tc);
    assert_eq!(broadcasts(&acts, ControlKind::Tc), 0);
    assert!(m.olsr.topology.contains_key(&(NodeId(9), NodeId(4))), "still learned");
}

#[test]
fn stale_ansn_ignored_newer_replaces() {
    let mut n = Node::new(0);
    let tc1 = Tc { originator: NodeId(9), ansn: 5, seq: 1, ttl: 10, selectors: ids(&[4]) };
    n.tc_from(5, tc1);
    // Older ANSN (different seq so it passes dup check): ignored.
    let old = Tc { originator: NodeId(9), ansn: 4, seq: 2, ttl: 10, selectors: ids(&[6]) };
    n.tc_from(5, old);
    assert!(n.olsr.topology.contains_key(&(NodeId(9), NodeId(4))));
    assert!(!n.olsr.topology.contains_key(&(NodeId(9), NodeId(6))));
    // Newer ANSN replaces the set.
    let new = Tc { originator: NodeId(9), ansn: 6, seq: 3, ttl: 10, selectors: ids(&[7]) };
    n.tc_from(5, new);
    assert!(!n.olsr.topology.contains_key(&(NodeId(9), NodeId(4))));
    assert!(n.olsr.topology.contains_key(&(NodeId(9), NodeId(7))));
}

#[test]
fn routes_computed_over_links_and_topology() {
    let mut n = Node::new(0);
    // Sym neighbour 1, which reaches 2; TC says 2 reaches 3.
    n.hello_from(1, hello(&[0, 2], &[], &[]));
    let tc = Tc { originator: NodeId(2), ansn: 1, seq: 1, ttl: 10, selectors: ids(&[3]) };
    n.tc_from(1, tc);
    n.olsr.recompute_routes(n.now);
    let t = n.olsr.table();
    assert_eq!(t.get(&NodeId(1)), Some(&(NodeId(1), 1)));
    assert_eq!(t.get(&NodeId(2)), Some(&(NodeId(1), 2)));
    assert_eq!(t.get(&NodeId(3)), Some(&(NodeId(1), 3)));
}

#[test]
fn data_forwarded_by_table_or_dropped() {
    let mut n = Node::new(0);
    n.hello_from(1, hello(&[0, 9], &[], &[]));
    let acts = n.call(|o, ctx| o.handle_data_origination(ctx, data(0, 9)));
    assert!(acts.iter().any(|a| matches!(a, Action::SendData { next, .. } if *next == NodeId(1))));
    let acts = n.call(|o, ctx| o.handle_data_origination(ctx, data(0, 33)));
    assert!(acts.iter().any(|a| matches!(a, Action::DropData { reason: DropReason::NoRoute, .. })));
}

#[test]
fn jitter_queue_preserves_fifo_order() {
    let mut n = Node::new(0);
    n.call(|o, ctx| {
        o.enqueue_control(ctx, ControlKind::Hello, vec![1], true);
        o.enqueue_control(ctx, ControlKind::Tc, vec![2], true);
        o.enqueue_control(ctx, ControlKind::Hello, vec![3], true);
    });
    let mut order = Vec::new();
    for _ in 0..3 {
        let acts = n.call(|o, ctx| o.drain_one(ctx));
        for a in &acts {
            if let Action::Broadcast { ctrl, .. } = a {
                order.push(ctrl.bytes[0]);
            }
        }
    }
    assert_eq!(order, vec![1, 2, 3], "FIFO preserved across jitter");
}

#[test]
fn jitter_disabled_broadcasts_immediately() {
    let mut n = Node::with_cfg(0, OlsrConfig::without_jitter_queue());
    let acts = n.call(|o, ctx| {
        o.enqueue_control(ctx, ControlKind::Hello, vec![1], true);
    });
    assert_eq!(broadcasts(&acts, ControlKind::Hello), 1);
}

#[test]
fn link_layer_feedback_reroutes_or_drops() {
    let mut n = Node::new(0);
    n.hello_from(1, hello(&[0, 9], &[], &[]));
    n.hello_from(2, hello(&[0, 9], &[], &[]));
    n.olsr.recompute_routes(n.now);
    let next = n.olsr.table()[&NodeId(9)].0;
    let other = if next == NodeId(1) { NodeId(2) } else { NodeId(1) };
    let p = Packet { uid: 1, origin: NodeId(0), body: PacketBody::Data(data(0, 9)) };
    let acts = n.call(|o, ctx| o.handle_unicast_failure(ctx, next, p));
    assert!(
        acts.iter().any(|a| matches!(a, Action::SendData { next: nn, .. } if *nn == other)),
        "rerouted around the dead link"
    );
}

#[test]
fn ansn_wraparound_comparison() {
    assert!(ansn_newer(1, 0));
    assert!(!ansn_newer(0, 1));
    assert!(ansn_newer(0, 65535), "wrap");
    assert!(!ansn_newer(65535, 0));
    assert!(!ansn_newer(5, 5));
}

#[test]
fn start_schedules_periodic_timers() {
    let mut n = Node::new(0);
    let acts = n.call(|o, ctx| o.start(ctx));
    let timers = acts.iter().filter(|a| matches!(a, Action::SetTimer { .. })).count();
    assert!(timers >= 3, "hello, tc and cleanup timers");
}
