//! OLSR control messages (after draft-ietf-manet-olsr-06): HELLOs for
//! link sensing / MPR signalling and TCs for topology dissemination.

use manet_sim::packet::NodeId;
use manet_sim::wire::{clamp_count, get_u16, get_u8, push_ids, read_ids};

/// A neighbour-sensing hello.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Neighbours heard bidirectionally (symmetric links).
    pub sym: Vec<NodeId>,
    /// Neighbours heard only one way so far.
    pub heard: Vec<NodeId>,
    /// The sender's chosen multipoint relays.
    pub mpr: Vec<NodeId>,
}

/// A topology-control broadcast, flooded via multipoint relays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tc {
    /// Node whose links are advertised.
    pub originator: NodeId,
    /// Advertised neighbour sequence number (replaces older sets).
    pub ansn: u16,
    /// Per-originator flood sequence number (duplicate suppression).
    pub seq: u16,
    /// Remaining flood TTL.
    pub ttl: u8,
    /// The originator's MPR selectors (its advertised links).
    pub selectors: Vec<NodeId>,
}

impl Hello {
    /// Encodes the hello.
    pub fn encode(&self) -> Vec<u8> {
        let (ks, kh, km) = (
            clamp_count(self.sym.len()),
            clamp_count(self.heard.len()),
            clamp_count(self.mpr.len()),
        );
        let mut b = vec![4u8, ks, kh, km];
        push_ids(&mut b, &self.sym, ks);
        push_ids(&mut b, &self.heard, kh);
        push_ids(&mut b, &self.mpr, km);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 4 {
            return None;
        }
        let ns = usize::from(get_u8(b, 1)?);
        let nh = usize::from(get_u8(b, 2)?);
        let nm = usize::from(get_u8(b, 3)?);
        let mut at = 4usize;
        let sym = read_ids(b, at, ns)?;
        at = at.checked_add(ns.checked_mul(2)?)?;
        let heard = read_ids(b, at, nh)?;
        at = at.checked_add(nh.checked_mul(2)?)?;
        let mpr = read_ids(b, at, nm)?;
        at = at.checked_add(nm.checked_mul(2)?)?;
        if at != b.len() {
            return None;
        }
        Some(Hello { sym, heard, mpr })
    }
}

impl Tc {
    /// Encodes the TC.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![5u8, self.ttl];
        b.extend_from_slice(&self.originator.0.to_be_bytes());
        b.extend_from_slice(&self.ansn.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        let k = clamp_count(self.selectors.len());
        b.push(k);
        push_ids(&mut b, &self.selectors, k);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 5 {
            return None;
        }
        let n = usize::from(get_u8(b, 8)?);
        if b.len() != 9usize.checked_add(n.checked_mul(2)?)? {
            return None;
        }
        Some(Tc {
            originator: NodeId(get_u16(b, 2)?),
            ansn: get_u16(b, 4)?,
            seq: get_u16(b, 6)?,
            ttl: get_u8(b, 1)?,
            selectors: read_ids(b, 9, n)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u16]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn hello_round_trip() {
        let h = Hello { sym: ids(&[1, 2]), heard: ids(&[3]), mpr: ids(&[1]) };
        assert_eq!(Hello::decode(&h.encode()), Some(h.clone()));
        let empty = Hello { sym: vec![], heard: vec![], mpr: vec![] };
        assert_eq!(Hello::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn tc_round_trip() {
        let t = Tc { originator: NodeId(9), ansn: 3, seq: 77, ttl: 30, selectors: ids(&[1, 4]) };
        assert_eq!(Tc::decode(&t.encode()), Some(t));
    }

    #[test]
    fn malformed_rejected() {
        assert!(Hello::decode(&[4, 1, 0, 0]).is_none());
        assert!(Tc::decode(&[5, 1, 0, 9, 0, 1, 0, 3, 2, 0]).is_none());
        assert!(Hello::decode(&[]).is_none());
    }

    proptest! {
        #[test]
        fn hello_round_trips(
            sym in proptest::collection::vec(any::<u16>(), 0..20),
            heard in proptest::collection::vec(any::<u16>(), 0..20),
            mpr in proptest::collection::vec(any::<u16>(), 0..20),
        ) {
            let h = Hello { sym: ids(&sym), heard: ids(&heard), mpr: ids(&mpr) };
            prop_assert_eq!(Hello::decode(&h.encode()), Some(h.clone()));
        }

        #[test]
        fn tc_round_trips(
            orig in any::<u16>(), ansn in any::<u16>(), seq in any::<u16>(),
            ttl in any::<u8>(), sel in proptest::collection::vec(any::<u16>(), 0..30),
        ) {
            let t = Tc { originator: NodeId(orig), ansn, seq, ttl, selectors: ids(&sel) };
            prop_assert_eq!(Tc::decode(&t.encode()), Some(t.clone()));
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Hello::decode(&bytes);
            let _ = Tc::decode(&bytes);
        }
    }
}
