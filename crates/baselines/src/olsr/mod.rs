//! OLSR — Optimized Link State Routing
//! (draft-ietf-manet-olsr-06, the paper's proactive baseline).
//!
//! Periodic HELLOs perform link sensing and signal each node's chosen
//! *multipoint relays* (MPRs — the minimal neighbour subset covering
//! the two-hop neighbourhood); only MPRs forward topology-control (TC)
//! floods, and only MPR-selector links are advertised. Routes are
//! recomputed by breadth-first search over the learned topology.
//!
//! The paper found the INRIA OLSR code suffered packet-jitter problems
//! and added "a new FIFO jitter queue … a uniformly chosen inter-packet
//! jitter between 0 and 15 ms" that "performs substantially better than
//! the base OLSR" — reproduced here as [`Olsr`]'s outgoing control
//! queue (enabled by default, switchable for ablation).

pub mod messages;

use manet_sim::hash::FxBuild;
use manet_sim::packet::{ControlKind, ControlPacket, DataPacket, NodeId, Packet, PacketBody};
use manet_sim::protocol::{Ctx, DropReason, RouteDump, RouteTelemetry, RoutingProtocol};
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::trace::{InvalidateCause, InvariantSnapshot, TraceEvent};
use messages::{Hello, Tc};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Protocol state maps use the deterministic Fx hasher: every iteration
/// over them is order-insensitive (sorted or commutative afterwards),
/// and SipHash was a measurable slice of OLSR's per-hello and
/// per-recompute cost at paper scale.
type FxMap<K, V> = HashMap<K, V, FxBuild>;
type FxSet<K> = HashSet<K, FxBuild>;

const HELLO_TOKEN: u64 = 1;
const TC_TOKEN: u64 = 2;
const JITTER_TOKEN: u64 = 3;
const CLEANUP_TOKEN: u64 = u64::MAX;

/// OLSR parameters (draft defaults).
#[derive(Clone, Debug, PartialEq)]
pub struct OlsrConfig {
    /// HELLO_INTERVAL.
    pub hello_interval: SimDuration,
    /// TC_INTERVAL.
    pub tc_interval: SimDuration,
    /// NEIGHB_HOLD_TIME.
    pub neighbor_hold: SimDuration,
    /// TOP_HOLD_TIME.
    pub topology_hold: SimDuration,
    /// Duplicate-set hold time.
    pub duplicate_hold: SimDuration,
    /// The paper's FIFO jitter queue: uniform inter-packet spacing in
    /// `[0, jitter_max]`; `None` disables the queue (base OLSR).
    pub jitter_max: Option<SimDuration>,
    /// Treat MAC retry exhaustion as link loss (link-layer feedback).
    pub link_layer_feedback: bool,
    /// TC flood TTL.
    pub tc_ttl: u8,
}

impl Default for OlsrConfig {
    fn default() -> Self {
        OlsrConfig {
            hello_interval: SimDuration::from_secs(2),
            tc_interval: SimDuration::from_secs(5),
            neighbor_hold: SimDuration::from_secs(6),
            topology_hold: SimDuration::from_secs(15),
            duplicate_hold: SimDuration::from_secs(30),
            jitter_max: Some(SimDuration::from_millis(15)),
            link_layer_feedback: true,
            tc_ttl: 32,
        }
    }
}

impl OlsrConfig {
    /// The un-fixed variant the paper compares against (no FIFO jitter
    /// queue).
    pub fn without_jitter_queue() -> Self {
        OlsrConfig { jitter_max: None, ..OlsrConfig::default() }
    }
}

#[derive(Clone, Copy, Debug)]
struct LinkState {
    sym: bool,
    expires: SimTime,
}

/// An OLSR node.
#[derive(Clone)]
pub struct Olsr {
    id: NodeId,
    cfg: OlsrConfig,
    links: FxMap<NodeId, LinkState>,
    /// neighbour → (its symmetric neighbours, expiry).
    two_hop: FxMap<NodeId, (Vec<NodeId>, SimTime)>,
    mpr_set: FxSet<NodeId>,
    mpr_selectors: FxMap<NodeId, SimTime>,
    /// (originator, selector) → (ansn, expiry).
    topology: FxMap<(NodeId, NodeId), (u16, SimTime)>,
    /// TC duplicate set: (originator, seq) → expiry.
    dup: FxMap<(NodeId, u16), SimTime>,
    table: FxMap<NodeId, (NodeId, u32)>,
    dirty: bool,
    ansn: u16,
    tc_seq: u16,
    /// Outgoing control queue (the paper's FIFO jitter fix).
    outq: VecDeque<(ControlKind, Vec<u8>, bool)>,
    drain_scheduled: bool,
    clock: SimTime,
    /// Reusable buffers for [`Olsr::recompute_routes`] (no protocol
    /// state — purely an allocation cache).
    scratch: RouteScratch,
}

/// Scratch space reused across route recomputations.
#[derive(Clone, Debug, Default)]
struct RouteScratch {
    edges: Vec<Vec<NodeId>>,
    dist: Vec<u32>,
    first_hop: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl Olsr {
    /// A new node.
    pub fn new(id: NodeId, cfg: OlsrConfig) -> Self {
        Olsr {
            id,
            cfg,
            links: FxMap::default(),
            two_hop: FxMap::default(),
            mpr_set: FxSet::default(),
            mpr_selectors: FxMap::default(),
            topology: FxMap::default(),
            // Pre-sized: one insert per flooded TC received; the
            // periodic retain keeps capacity, so reserving once
            // removes every growth rehash from the hot path.
            dup: FxMap::with_capacity_and_hasher(256, Default::default()),
            table: FxMap::default(),
            dirty: false,
            ansn: 0,
            tc_seq: 0,
            outq: VecDeque::new(),
            drain_scheduled: false,
            clock: SimTime::ZERO,
            scratch: RouteScratch::default(),
        }
    }

    /// A factory closure for [`manet_sim::world::World::new`].
    pub fn factory(cfg: OlsrConfig) -> impl FnMut(NodeId, usize) -> Box<dyn RoutingProtocol> {
        move |id, _| Box::new(Olsr::new(id, cfg.clone()))
    }

    /// Currently selected multipoint relays.
    pub fn mprs(&self) -> &HashSet<NodeId, FxBuild> {
        &self.mpr_set
    }

    /// The computed routing table: destination → (next hop, hops).
    pub fn table(&self) -> &HashMap<NodeId, (NodeId, u32), FxBuild> {
        &self.table
    }

    // ----- verification hooks ----------------------------------------------
    //
    // Counterparts of the `ldr::Ldr` hooks, used by `crates/modelcheck`
    // to drive OLSR through the same exhaustive event interleavings.

    /// Forces the link-state soft state behind the route towards `dest`
    /// to time out — the model checker's soft-state-expiry transition
    /// (NEIGHB_HOLD_TIME / TOP_HOLD_TIME lapsing, collapsed to an
    /// instant). The derived routing table is left to the next
    /// recomputation, exactly as with a natural timeout. Returns
    /// whether any state existed to expire.
    pub fn force_expire(&mut self, dest: NodeId) -> bool {
        let mut removed = self.links.remove(&dest).is_some();
        removed |= self.two_hop.remove(&dest).is_some();
        let before = self.topology.len();
        self.topology.retain(|&(orig, sel), _| orig != dest && sel != dest);
        removed |= self.topology.len() != before;
        if removed {
            self.dirty = true;
        }
        removed
    }

    /// Recomputes the routing table immediately if the topology is
    /// dirty — the model checker's way of observing the table a node
    /// *would* forward with, outside any callback.
    pub fn force_recompute(&mut self) {
        if self.dirty {
            self.recompute_routes(self.clock);
        }
    }

    /// Appends a canonical byte encoding of the complete protocol state
    /// to `out` (sorted iteration everywhere; see
    /// `ldr::Ldr::verification_digest` for the contract). The
    /// allocation scratch is excluded — it carries no protocol state.
    pub fn verification_digest(&self, out: &mut Vec<u8>) {
        fn push_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn push_id(out: &mut Vec<u8>, n: NodeId) {
            out.extend_from_slice(&n.0.to_le_bytes());
        }
        let mut links: Vec<(&NodeId, &LinkState)> = self.links.iter().collect();
        links.sort_unstable_by_key(|(n, _)| n.0);
        push_u64(out, links.len() as u64);
        for (n, l) in links {
            push_id(out, *n);
            out.push(u8::from(l.sym));
            push_u64(out, l.expires.as_nanos());
        }
        let mut two_hop: Vec<(&NodeId, &(Vec<NodeId>, SimTime))> = self.two_hop.iter().collect();
        two_hop.sort_unstable_by_key(|(n, _)| n.0);
        push_u64(out, two_hop.len() as u64);
        for (n, (twos, exp)) in two_hop {
            push_id(out, *n);
            push_u64(out, twos.len() as u64);
            for t in twos {
                push_id(out, *t);
            }
            push_u64(out, exp.as_nanos());
        }
        let mut mprs: Vec<NodeId> = self.mpr_set.iter().copied().collect();
        mprs.sort_unstable_by_key(|n| n.0);
        push_u64(out, mprs.len() as u64);
        for n in mprs {
            push_id(out, n);
        }
        let mut selectors: Vec<(&NodeId, &SimTime)> = self.mpr_selectors.iter().collect();
        selectors.sort_unstable_by_key(|(n, _)| n.0);
        push_u64(out, selectors.len() as u64);
        for (n, exp) in selectors {
            push_id(out, *n);
            push_u64(out, exp.as_nanos());
        }
        let mut topology: Vec<_> = self.topology.iter().collect();
        topology.sort_unstable_by_key(|&(&(o, s), _)| (o.0, s.0));
        push_u64(out, topology.len() as u64);
        for ((orig, sel), (ansn, exp)) in topology {
            push_id(out, *orig);
            push_id(out, *sel);
            out.extend_from_slice(&ansn.to_le_bytes());
            push_u64(out, exp.as_nanos());
        }
        let mut dup: Vec<(&(NodeId, u16), &SimTime)> = self.dup.iter().collect();
        dup.sort_unstable_by_key(|((o, s), _)| (o.0, *s));
        push_u64(out, dup.len() as u64);
        for ((orig, seq), exp) in dup {
            push_id(out, *orig);
            out.extend_from_slice(&seq.to_le_bytes());
            push_u64(out, exp.as_nanos());
        }
        let mut table: Vec<(&NodeId, &(NodeId, u32))> = self.table.iter().collect();
        table.sort_unstable_by_key(|(d, _)| d.0);
        push_u64(out, table.len() as u64);
        for (dest, (next, hops)) in table {
            push_id(out, *dest);
            push_id(out, *next);
            out.extend_from_slice(&hops.to_le_bytes());
        }
        out.push(u8::from(self.dirty));
        out.extend_from_slice(&self.ansn.to_le_bytes());
        out.extend_from_slice(&self.tc_seq.to_le_bytes());
        push_u64(out, self.outq.len() as u64);
        for (kind, bytes, initiated) in &self.outq {
            out.push(*kind as u8);
            push_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
            out.push(u8::from(*initiated));
        }
        out.push(u8::from(self.drain_scheduled));
        push_u64(out, self.clock.as_nanos());
    }

    fn sym_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            self.links.iter().filter(|(_, l)| l.sym && l.expires > now).map(|(&n, _)| n).collect();
        v.sort_unstable_by_key(|n| n.0);
        v
    }

    fn heard_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            self.links.iter().filter(|(_, l)| !l.sym && l.expires > now).map(|(&n, _)| n).collect();
        v.sort_unstable_by_key(|n| n.0);
        v
    }

    /// Greedy MPR selection: cover every strict two-hop neighbour.
    pub(crate) fn recompute_mprs(&mut self, now: SimTime) {
        let n1: Vec<NodeId> = self.sym_neighbors(now);
        let n1_set: HashSet<NodeId> = n1.iter().copied().collect();
        // coverage[n2] = the one-hop neighbours reaching it. Ordered
        // maps: the greedy loop below iterates these, and iteration
        // order must not depend on process-level hash state.
        let mut coverage: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &n in &n1 {
            if let Some((twos, exp)) = self.two_hop.get(&n) {
                if *exp > now {
                    for &t in twos {
                        if t != self.id && !n1_set.contains(&t) {
                            coverage.entry(t).or_default().push(n);
                        }
                    }
                }
            }
        }
        let mut mprs: FxSet<NodeId> = FxSet::default();
        let mut uncovered: BTreeSet<NodeId> = coverage.keys().copied().collect();
        // Mandatory: sole providers.
        for providers in coverage.values() {
            if providers.len() == 1 {
                mprs.insert(providers[0]);
            }
        }
        uncovered.retain(|t| !coverage[t].iter().any(|p| mprs.contains(p)));
        // Greedy: max coverage, ties by smallest id (deterministic).
        while !uncovered.is_empty() {
            let mut best: Option<(usize, NodeId)> = None;
            for &n in &n1 {
                if mprs.contains(&n) {
                    continue;
                }
                let covers = uncovered.iter().filter(|t| coverage[t].contains(&n)).count();
                if covers > 0 {
                    let cand = (covers, n);
                    best = Some(match best {
                        None => cand,
                        Some((bc, bn)) => {
                            if covers > bc || (covers == bc && n.0 < bn.0) {
                                cand
                            } else {
                                (bc, bn)
                            }
                        }
                    });
                }
            }
            match best {
                Some((_, n)) => {
                    mprs.insert(n);
                    uncovered.retain(|t| !coverage[t].contains(&n));
                }
                None => break, // unreachable two-hop nodes
            }
        }
        self.mpr_set = mprs;
    }

    /// Breadth-first route computation over links + topology.
    ///
    /// Runs once per forwarding decision after a topology change, so it
    /// is the hottest code in the protocol at paper scale. Node ids are
    /// compact (`0..n`), so the graph and the BFS bookkeeping live in
    /// dense arrays indexed by id rather than hash maps; the visit
    /// order (sorted one-hop set, sorted adjacency lists, FIFO queue)
    /// and the resulting table are exactly those of the map-based
    /// formulation.
    fn recompute_routes(&mut self, now: SimTime) {
        self.dirty = false;
        let n1 = self.sym_neighbors(now);
        let mut max_id = self.id.0;
        for &n in &n1 {
            max_id = max_id.max(n.0);
        }
        for (&n, (twos, exp)) in &self.two_hop {
            if *exp > now {
                max_id = max_id.max(n.0);
                for &t in twos {
                    max_id = max_id.max(t.0);
                }
            }
        }
        for (&(orig, sel), &(_, exp)) in &self.topology {
            if exp > now {
                max_id = max_id.max(orig.0).max(sel.0);
            }
        }
        let size = max_id as usize + 1;
        let mut scr = std::mem::take(&mut self.scratch);
        scr.edges.iter_mut().for_each(Vec::clear);
        scr.edges.resize_with(size.max(scr.edges.len()), Vec::new);
        scr.edges[self.id.index()].extend_from_slice(&n1);
        for (&n, (twos, exp)) in &self.two_hop {
            if *exp > now {
                scr.edges[n.index()].extend(twos.iter().copied());
            }
        }
        for (&(orig, sel), &(_, exp)) in &self.topology {
            if exp > now {
                scr.edges[orig.index()].push(sel);
                scr.edges[sel.index()].push(orig);
            }
        }
        for v in scr.edges.iter_mut().take(size) {
            v.sort_unstable_by_key(|n| n.0);
            v.dedup();
        }
        const UNSET: u32 = u32::MAX;
        scr.dist.clear();
        scr.dist.resize(size, UNSET);
        scr.first_hop.clear();
        scr.first_hop.resize(size, NodeId(0));
        scr.queue.clear();
        self.table.clear();
        scr.dist[self.id.index()] = 0;
        for &n in &n1 {
            if scr.dist[n.index()] == UNSET {
                scr.dist[n.index()] = 1;
                scr.first_hop[n.index()] = n;
                self.table.insert(n, (n, 1));
                scr.queue.push_back(n);
            }
        }
        while let Some(u) = scr.queue.pop_front() {
            let du = scr.dist[u.index()];
            let fh = scr.first_hop[u.index()];
            for &v in &scr.edges[u.index()] {
                if scr.dist[v.index()] == UNSET {
                    scr.dist[v.index()] = du + 1;
                    scr.first_hop[v.index()] = fh;
                    self.table.insert(v, (fh, du + 1));
                    scr.queue.push_back(v);
                }
            }
        }
        self.scratch = scr;
    }

    /// Recomputes routes if the topology is dirty, emitting
    /// [`TraceEvent::RouteInstall`] / [`TraceEvent::RouteInvalidate`]
    /// diffs against the previous table when tracing is on. OLSR has no
    /// `(sn, d, fd)` machinery, so installs scalarise as `d = fd =`
    /// hop count with no sequence number.
    fn recompute_traced(&mut self, ctx: &mut Ctx) {
        if !self.dirty {
            return;
        }
        if !ctx.trace_enabled() {
            self.recompute_routes(ctx.now());
            return;
        }
        let snapshot = |table: &FxMap<NodeId, (NodeId, u32)>| {
            let mut v: Vec<(NodeId, (NodeId, u32))> = table.iter().map(|(&d, &e)| (d, e)).collect();
            v.sort_unstable_by_key(|(d, _)| d.0);
            v
        };
        let before = snapshot(&self.table);
        self.recompute_routes(ctx.now());
        let after = snapshot(&self.table);
        let node = self.id;
        // Destinations that dropped out of the shortest-path tree.
        for &(dest, _) in &before {
            if after.binary_search_by_key(&dest.0, |&(d, _)| d.0).is_err() {
                ctx.trace(|| TraceEvent::RouteInvalidate {
                    node,
                    dest,
                    seqno: None,
                    cause: InvalidateCause::LinkFailure,
                });
            }
        }
        // New or changed entries.
        for &(dest, (next, hops)) in &after {
            let prev =
                before.binary_search_by_key(&dest.0, |&(d, _)| d.0).ok().map(|i| before[i].1);
            if prev != Some((next, hops)) {
                let before_snap = prev.map(|(_, h)| InvariantSnapshot { sn: None, d: h, fd: h });
                ctx.trace(|| TraceEvent::RouteInstall {
                    node,
                    dest,
                    next,
                    before: before_snap,
                    after: InvariantSnapshot { sn: None, d: hops, fd: hops },
                });
            }
        }
    }

    fn enqueue_control(
        &mut self,
        ctx: &mut Ctx,
        kind: ControlKind,
        bytes: Vec<u8>,
        initiated: bool,
    ) {
        match self.cfg.jitter_max {
            None => ctx.broadcast(kind, bytes, initiated),
            Some(maxj) => {
                self.outq.push_back((kind, bytes, initiated));
                if !self.drain_scheduled {
                    self.drain_scheduled = true;
                    let j = SimDuration::from_nanos(ctx.rng().below(maxj.as_nanos().max(1)));
                    ctx.set_timer(j, JITTER_TOKEN);
                }
            }
        }
    }

    fn drain_one(&mut self, ctx: &mut Ctx) {
        self.drain_scheduled = false;
        if let Some((kind, bytes, initiated)) = self.outq.pop_front() {
            ctx.broadcast(kind, bytes, initiated);
        }
        if !self.outq.is_empty() {
            self.drain_scheduled = true;
            let maxj = self.cfg.jitter_max.unwrap_or(SimDuration::from_millis(1));
            let j = SimDuration::from_nanos(ctx.rng().below(maxj.as_nanos().max(1)));
            ctx.set_timer(j, JITTER_TOKEN);
        }
    }

    fn send_hello(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        self.recompute_mprs(now);
        let mut mpr: Vec<NodeId> = self.mpr_set.iter().copied().collect();
        mpr.sort_unstable_by_key(|n| n.0);
        let hello = Hello { sym: self.sym_neighbors(now), heard: self.heard_neighbors(now), mpr };
        self.enqueue_control(ctx, ControlKind::Hello, hello.encode(), true);
    }

    fn send_tc(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        self.mpr_selectors.retain(|_, &mut e| e > now);
        if self.mpr_selectors.is_empty() {
            return;
        }
        self.ansn = self.ansn.wrapping_add(1);
        self.tc_seq = self.tc_seq.wrapping_add(1);
        let mut selectors: Vec<NodeId> = self.mpr_selectors.keys().copied().collect();
        selectors.sort_unstable_by_key(|n| n.0);
        let tc = Tc {
            originator: self.id,
            ansn: self.ansn,
            seq: self.tc_seq,
            ttl: self.cfg.tc_ttl,
            selectors,
        };
        self.enqueue_control(ctx, ControlKind::Tc, tc.encode(), true);
    }

    fn handle_hello(&mut self, ctx: &mut Ctx, prev: NodeId, h: Hello) {
        let now = ctx.now();
        let hold = self.cfg.neighbor_hold;
        // Link sensing: symmetric once the neighbour lists us.
        let hears_us = h.sym.contains(&self.id) || h.heard.contains(&self.id);
        let entry = self.links.entry(prev).or_insert(LinkState { sym: false, expires: now + hold });
        entry.sym = hears_us;
        entry.expires = now + hold;
        // Two-hop set (only via symmetric links).
        self.two_hop.insert(prev, (h.sym.clone(), now + hold));
        // MPR selector set.
        if h.mpr.contains(&self.id) {
            self.mpr_selectors.insert(prev, now + hold);
        } else {
            self.mpr_selectors.remove(&prev);
        }
        self.dirty = true;
    }

    fn handle_tc(&mut self, ctx: &mut Ctx, prev: NodeId, tc: Tc) {
        let now = ctx.now();
        if tc.originator == self.id {
            return;
        }
        let dkey = (tc.originator, tc.seq);
        let seen = self.dup.get(&dkey).is_some_and(|&e| e > now);
        if !seen {
            self.dup.insert(dkey, now + self.cfg.duplicate_hold);
            // ANSN logic: ignore stale sets; replace older ones.
            let current = self
                .topology
                .iter()
                .filter(|((o, _), _)| *o == tc.originator)
                .map(|(_, &(a, _))| a)
                .max();
            let stale = current.is_some_and(|a| ansn_newer(a, tc.ansn));
            if !stale {
                if current.is_some_and(|a| ansn_newer(tc.ansn, a)) {
                    self.topology.retain(|(o, _), _| *o != tc.originator);
                }
                for &sel in &tc.selectors {
                    self.topology
                        .insert((tc.originator, sel), (tc.ansn, now + self.cfg.topology_hold));
                }
                self.dirty = true;
            }
            // Default forwarding: retransmit only if the sender selected
            // us as an MPR.
            let from_selector = self.mpr_selectors.get(&prev).is_some_and(|&e| e > now);
            if from_selector && tc.ttl > 1 {
                let fwd = Tc { ttl: tc.ttl - 1, ..tc };
                self.enqueue_control(ctx, ControlKind::Tc, fwd.encode(), false);
            }
        }
    }
}

/// Sequence-number comparison with wraparound (RFC 3626 §19).
fn ansn_newer(a: u16, b: u16) -> bool {
    a != b && ((a > b && a - b <= 32768) || (b > a && b - a > 32768))
}

impl RoutingProtocol for Olsr {
    fn name(&self) -> &'static str {
        "OLSR"
    }

    fn start(&mut self, ctx: &mut Ctx) {
        self.clock = ctx.now();
        // Stagger the first hello across the interval to avoid
        // network-wide synchronisation.
        let h = ctx.rng().below(self.cfg.hello_interval.as_nanos().max(1));
        ctx.set_timer(SimDuration::from_nanos(h), HELLO_TOKEN);
        let t = ctx.rng().below(self.cfg.tc_interval.as_nanos().max(1));
        ctx.set_timer(SimDuration::from_nanos(t), TC_TOKEN);
        ctx.set_timer(SimDuration::from_secs(30), CLEANUP_TOKEN);
    }

    fn handle_reboot(&mut self, ctx: &mut Ctx) {
        // Link-state soft state is all volatile; neighbours age the
        // crashed incarnation's TCs out on their own timers.
        self.links.clear();
        self.two_hop.clear();
        self.mpr_set.clear();
        self.mpr_selectors.clear();
        self.topology.clear();
        self.dup.clear();
        self.table.clear();
        self.dirty = false;
        self.ansn = 0;
        self.tc_seq = 0;
        self.outq.clear();
        self.drain_scheduled = false;
        self.start(ctx);
    }

    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.clock = ctx.now();
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        self.recompute_traced(ctx);
        match self.table.get(&data.dst) {
            Some(&(next, _)) => ctx.send_data(next, data),
            None => ctx.drop_data(data, DropReason::NoRoute),
        }
    }

    fn handle_data_packet(&mut self, ctx: &mut Ctx, _prev_hop: NodeId, mut data: DataPacket) {
        self.clock = ctx.now();
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        if data.ttl == 0 {
            ctx.drop_data(data, DropReason::TtlExpired);
            return;
        }
        data.ttl -= 1;
        self.recompute_traced(ctx);
        match self.table.get(&data.dst) {
            Some(&(next, _)) => ctx.send_data(next, data),
            None => ctx.drop_data(data, DropReason::NoRoute),
        }
    }

    fn handle_control(
        &mut self,
        ctx: &mut Ctx,
        prev_hop: NodeId,
        ctrl: ControlPacket,
        _was_broadcast: bool,
    ) {
        self.clock = ctx.now();
        match ctrl.kind {
            ControlKind::Hello => match Hello::decode(&ctrl.bytes) {
                Some(h) => self.handle_hello(ctx, prev_hop, h),
                None => ctx.drop_malformed(ControlKind::Hello),
            },
            ControlKind::Tc => match Tc::decode(&ctrl.bytes) {
                Some(t) => self.handle_tc(ctx, prev_hop, t),
                None => ctx.drop_malformed(ControlKind::Tc),
            },
            _ => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.clock = ctx.now();
        match token {
            HELLO_TOKEN => {
                self.send_hello(ctx);
                ctx.set_timer(self.cfg.hello_interval, HELLO_TOKEN);
            }
            TC_TOKEN => {
                self.send_tc(ctx);
                ctx.set_timer(self.cfg.tc_interval, TC_TOKEN);
            }
            JITTER_TOKEN => self.drain_one(ctx),
            CLEANUP_TOKEN => {
                let now = ctx.now();
                self.dup.retain(|_, &mut e| e > now);
                self.topology.retain(|_, &mut (_, e)| e > now);
                self.links.retain(|_, l| l.expires > now);
                self.two_hop.retain(|_, (_, e)| *e > now);
                self.dirty = true;
                ctx.set_timer(SimDuration::from_secs(30), CLEANUP_TOKEN);
            }
            _ => {}
        }
    }

    fn handle_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.clock = ctx.now();
        if self.cfg.link_layer_feedback {
            self.links.remove(&next_hop);
            self.two_hop.remove(&next_hop);
            self.dirty = true;
        }
        if let PacketBody::Data(data) = packet.body {
            // Try once more over the recomputed topology.
            self.recompute_traced(ctx);
            match self.table.get(&data.dst) {
                Some(&(next, _)) if next != next_hop => ctx.send_data(next, data),
                _ => ctx.drop_data(data, DropReason::NoRoute),
            }
        }
    }

    fn route_successors(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self.table.iter().map(|(&d, &(n, _))| (d, n)).collect();
        v.sort_unstable_by_key(|(d, _)| d.0);
        v
    }

    fn route_table_dump(&self) -> Vec<RouteDump> {
        let mut v: Vec<RouteDump> = self
            .table
            .iter()
            .map(|(&dest, &(next, hops))| RouteDump {
                dest,
                next,
                dist: hops,
                feasible_dist: None,
                seqno: None,
                valid: true,
            })
            .collect();
        v.sort_unstable_by_key(|r| r.dest.0);
        v
    }

    fn telemetry_snapshot(&self) -> RouteTelemetry {
        // Every BFS-computed entry is usable until the next recompute,
        // so entries and valid coincide.
        let n = self.table.len() as u64;
        RouteTelemetry { entries: n, valid: n }
    }
}

#[cfg(test)]
mod tests;
