//! Crate-level property tests for the baseline protocols.

#![cfg(test)]

use crate::dsr::cache::RouteCache;
use crate::olsr::{Olsr, OlsrConfig};
use manet_sim::packet::NodeId;
use manet_sim::protocol::{Ctx, RoutingProtocol};
use manet_sim::rng::SimRng;
use manet_sim::time::SimTime;
use proptest::prelude::*;

fn ids(v: &[u16]) -> Vec<NodeId> {
    v.iter().map(|&i| NodeId(i)).collect()
}

proptest! {
    /// DSR cache invariant: after `remove_link(a, b)`, no retrievable
    /// path traverses the directed link `a → b` (including the implicit
    /// first hop from the owner), and untouched paths survive.
    #[test]
    fn dsr_cache_remove_link_is_complete(
        paths in proptest::collection::vec(
            proptest::collection::vec(1u16..10, 1..6),
            1..12,
        ),
        link in (0u16..10, 1u16..10),
    ) {
        let owner = NodeId(0);
        let mut cache = RouteCache::new(owner, 64, None);
        let t = SimTime::from_secs(1);
        for p in &paths {
            cache.insert(&ids(p), t);
        }
        let (a, b) = link;
        cache.remove_link(NodeId(a), NodeId(b));
        // Every destination still retrievable must avoid the link.
        for dst in 1u16..10 {
            if let Some(path) = cache.lookup(NodeId(dst), t) {
                let full: Vec<NodeId> =
                    std::iter::once(owner).chain(path.iter().copied()).collect();
                for w in full.windows(2) {
                    prop_assert!(
                        !(w[0] == NodeId(a) && w[1] == NodeId(b)),
                        "retrieved a path through the removed link"
                    );
                }
            }
        }
    }

    /// DSR cache lookups always return a loop-free path ending at the
    /// requested destination, and the shortest one stored.
    #[test]
    fn dsr_cache_lookup_shortest_loop_free(
        paths in proptest::collection::vec(
            proptest::collection::vec(1u16..12, 1..6),
            1..12,
        ),
        dst in 1u16..12,
    ) {
        let mut cache = RouteCache::new(NodeId(0), 64, None);
        let t = SimTime::from_secs(1);
        let mut stored: Vec<Vec<NodeId>> = Vec::new();
        for p in &paths {
            if cache.insert(&ids(p), t) {
                stored.push(ids(p));
            }
        }
        if let Some(path) = cache.lookup(NodeId(dst), t) {
            prop_assert_eq!(path.last(), Some(&NodeId(dst)));
            let mut uniq = std::collections::HashSet::new();
            prop_assert!(path.iter().all(|n| uniq.insert(*n)), "looping path");
            let best = stored
                .iter()
                .filter(|p| p.last() == Some(&NodeId(dst)))
                .map(|p| p.len())
                .min()
                .expect("something stored");
            prop_assert_eq!(path.len(), best, "not the shortest stored path");
        }
    }

    /// OLSR MPR selection covers the entire strict two-hop
    /// neighbourhood reachable through one-hop neighbours.
    #[test]
    fn olsr_mpr_selection_covers_two_hop_set(
        neighbours in proptest::collection::vec(
            proptest::collection::vec(0u16..25, 0..8), // each 1-hop's 2-hop list
            1..8,
        ),
    ) {
        let me = NodeId(0);
        let mut olsr = Olsr::new(me, OlsrConfig::default());
        let mut rng = SimRng::from_seed(1);
        let now = SimTime::from_secs(1);
        // Node ids 100.. for the one-hop neighbours, arbitrary small ids
        // (possibly overlapping with each other) for the two-hop set.
        let mut n1_twos: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for (i, twos) in neighbours.iter().enumerate() {
            let n1 = NodeId(100 + i as u16);
            let mut sym: Vec<NodeId> = ids(twos)
                .into_iter()
                .filter(|t| *t != me)
                .collect();
            sym.push(me); // hears us: symmetric
            let hello = crate::olsr::messages::Hello {
                sym: sym.clone(),
                heard: vec![],
                mpr: vec![],
            };
            let mut actions = Vec::new();
            let mut ctx = Ctx::new(now, me, 200, &mut rng, &mut actions);
            olsr.handle_control(
                &mut ctx,
                n1,
                manet_sim::packet::ControlPacket {
                    kind: manet_sim::packet::ControlKind::Hello,
                    bytes: hello.encode(),
                },
                true,
            );
            n1_twos.push((n1, sym));
        }
        olsr.recompute_mprs(now);
        let mprs = olsr.mprs().clone();
        // Every strict two-hop node must be covered by an MPR.
        let n1_set: std::collections::HashSet<NodeId> =
            n1_twos.iter().map(|(n, _)| *n).collect();
        let mut uncovered = Vec::new();
        for (n1, twos) in &n1_twos {
            for t in twos {
                if *t == me || n1_set.contains(t) {
                    continue;
                }
                let covered = n1_twos
                    .iter()
                    .any(|(n, tw)| mprs.contains(n) && tw.contains(t));
                if !covered {
                    uncovered.push((*n1, *t));
                }
            }
        }
        prop_assert!(uncovered.is_empty(), "two-hop nodes uncovered: {uncovered:?}");
    }
}
