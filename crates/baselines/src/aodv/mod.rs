//! AODV — Ad hoc On-demand Distance Vector routing
//! (draft-ietf-manet-aodv-10, the comparison baseline of the paper).
//!
//! AODV attains loop freedom purely through per-destination sequence
//! numbers: numbers are non-increasing moving away from the
//! destination, and a node that loses a route *increments its stored
//! copy of the destination's number* before re-querying. That inflation
//! is exactly what LDR eliminates — it suppresses replies from
//! downstream nodes holding perfectly good loop-free routes under the
//! previous number, and it is what Fig. 7 measures.

pub mod messages;

use manet_sim::hash::FxBuild;
use manet_sim::packet::{ControlKind, ControlPacket, DataPacket, NodeId, Packet, PacketBody};
use manet_sim::protocol::{
    Ctx, DropReason, ProtoCounter, RouteDump, RouteTelemetry, RoutingProtocol,
};
use manet_sim::time::{SimDuration, SimTime};
use messages::{Rerr, RerrEntry, Rrep, Rreq};
use std::collections::{HashMap, VecDeque};

/// Protocol state maps use the deterministic Fx hasher: every iteration
/// over them is sorted or commutative before it can influence behaviour,
/// and SipHash cost is measurable on the per-packet paths.
type FxMap<K, V> = HashMap<K, V, FxBuild>;

/// Timer token for the periodic state sweep.
const CLEANUP_TOKEN: u64 = u64::MAX;
/// Timer token for periodic hello emission and neighbour sweeps.
const HELLO_TOKEN: u64 = u64::MAX - 1;
const CLEANUP_INTERVAL: SimDuration = SimDuration::from_secs(10);

fn discovery_token(dest: NodeId, generation: u64) -> u64 {
    (u64::from(dest.0) << 32) | (generation & 0xFFFF_FFFF)
}

/// AODV protocol constants (RFC 3561 defaults).
#[derive(Clone, Debug, PartialEq)]
pub struct AodvConfig {
    /// ACTIVE_ROUTE_TIMEOUT.
    pub active_route_timeout: SimDuration,
    /// MY_ROUTE_TIMEOUT (granted by destinations).
    pub my_route_timeout: SimDuration,
    /// NODE_TRAVERSAL_TIME.
    pub node_traversal_time: SimDuration,
    /// TTL_START.
    pub ttl_start: u8,
    /// TTL_INCREMENT.
    pub ttl_increment: u8,
    /// TTL_THRESHOLD.
    pub ttl_threshold: u8,
    /// NET_DIAMETER.
    pub net_diameter: u8,
    /// Total discovery attempts before giving up.
    pub max_attempts: u32,
    /// Data packets buffered per destination during discovery.
    pub buffer_cap: usize,
    /// PATH_DISCOVERY_TIME (RREQ flood dedup state lifetime).
    pub rreq_cache_ttl: SimDuration,
    /// `D` flag on originated RREQs: only destinations may answer.
    pub destination_only: bool,
    /// Periodic hello messages (RFC 3561 §6.9) for link sensing, as an
    /// alternative to MAC-layer feedback. `None` (the default, and the
    /// evaluation's configuration) relies on link-layer detection only.
    pub hello_interval: Option<SimDuration>,
    /// Hellos missed before a neighbour is declared lost.
    pub allowed_hello_loss: u32,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_timeout: SimDuration::from_secs(3),
            my_route_timeout: SimDuration::from_secs(6),
            node_traversal_time: SimDuration::from_millis(40),
            ttl_start: 2,
            ttl_increment: 2,
            ttl_threshold: 7,
            net_diameter: 35,
            max_attempts: 5,
            buffer_cap: 64,
            rreq_cache_ttl: SimDuration::from_millis(2800),
            destination_only: false,
            hello_interval: None,
            allowed_hello_loss: 2,
        }
    }
}

impl AodvConfig {
    /// TTL for discovery attempt `attempt` (1-based expanding ring).
    fn ttl_for_attempt(&self, attempt: u32) -> u8 {
        let mut ttl = self.ttl_start;
        for _ in 1..attempt {
            if ttl >= self.ttl_threshold {
                return self.net_diameter;
            }
            ttl = ttl.saturating_add(self.ttl_increment);
            if ttl > self.ttl_threshold {
                return self.net_diameter;
            }
        }
        ttl.min(self.net_diameter)
    }

    fn discovery_timeout(&self, ttl: u8) -> SimDuration {
        self.node_traversal_time.saturating_mul(2 * u64::from(ttl.max(1)))
    }
}

/// One AODV routing-table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Destination sequence number (`None` = unknown/invalid flag).
    pub seq: Option<u32>,
    /// Hop count.
    pub hops: u32,
    /// Next hop.
    pub next: NodeId,
    /// Validity (false after breaks/errors).
    pub valid: bool,
    /// Soft-state expiry.
    pub expires: SimTime,
    /// Upstream nodes known to route through us (RERR recipients).
    pub precursors: Vec<NodeId>,
}

impl Route {
    fn is_active(&self, now: SimTime) -> bool {
        self.valid && now < self.expires
    }
}

#[derive(Clone, Debug)]
struct Discovery {
    generation: u64,
    attempts: u32,
    queue: VecDeque<DataPacket>,
}

/// An AODV node.
#[derive(Clone)]
pub struct Aodv {
    id: NodeId,
    cfg: AodvConfig,
    own_seq: u32,
    routes: FxMap<NodeId, Route>,
    /// RREQ flood dedup: (origin, rreqid) → expiry.
    seen: FxMap<(NodeId, u32), SimTime>,
    /// Strongest RREP forwarded per (orig, dst): (seq, hops, expiry).
    forwarded: FxMap<(NodeId, NodeId), (u32, u8, SimTime)>,
    pending: FxMap<NodeId, Discovery>,
    /// Hello-based link sensing: neighbour -> liveness deadline.
    neighbors: FxMap<NodeId, SimTime>,
    next_rreqid: u32,
    next_generation: u64,
    clock: SimTime,
}

impl Aodv {
    /// A new node.
    pub fn new(id: NodeId, cfg: AodvConfig) -> Self {
        Aodv {
            id,
            cfg,
            own_seq: 0,
            routes: FxMap::default(),
            // Pre-sized: one insert per RREQ flood received; retain
            // keeps capacity, so this removes all growth rehashes.
            seen: FxMap::with_capacity_and_hasher(256, Default::default()),
            forwarded: FxMap::default(),
            pending: FxMap::default(),
            neighbors: FxMap::default(),
            next_rreqid: 0,
            next_generation: 0,
            clock: SimTime::ZERO,
        }
    }

    /// A factory closure for [`manet_sim::world::World::new`].
    pub fn factory(cfg: AodvConfig) -> impl FnMut(NodeId, usize) -> Box<dyn RoutingProtocol> {
        move |id, _| Box::new(Aodv::new(id, cfg.clone()))
    }

    /// This node's own sequence number.
    pub fn own_seq(&self) -> u32 {
        self.own_seq
    }

    /// Routing-table entry for a destination.
    pub fn route(&self, dest: NodeId) -> Option<&Route> {
        self.routes.get(&dest)
    }

    /// Whether a discovery for `dest` is in progress.
    pub fn is_discovering(&self, dest: NodeId) -> bool {
        self.pending.contains_key(&dest)
    }

    fn active(&self, dest: NodeId, now: SimTime) -> Option<&Route> {
        self.routes.get(&dest).filter(|r| r.is_active(now))
    }

    // ----- verification hooks ----------------------------------------------
    //
    // Counterparts of the `ldr::Ldr` hooks, used by `crates/modelcheck`
    // to drive AODV through the same exhaustive event interleavings.

    /// Forces the route towards `dest` (if any) to expire immediately —
    /// the model checker's route-table-timeout transition. A timeout is
    /// not an invalidation: `valid` and the stored sequence number are
    /// untouched (RFC 3561 increments the number only on *detected*
    /// breaks, which is exactly the distinction the known AODV loop
    /// scenarios exploit).
    pub fn force_expire(&mut self, dest: NodeId) -> bool {
        match self.routes.get_mut(&dest) {
            Some(r) => {
                r.expires = SimTime::ZERO;
                true
            }
            None => false,
        }
    }

    /// Raises this node's own sequence number by one — the model
    /// checker's destination-seqno-increment transition.
    pub fn bump_own_seqno(&mut self) {
        self.own_seq = self.own_seq.wrapping_add(1);
    }

    /// How many expanding-ring attempts the TTL schedule needs before
    /// an RREQ reaches a destination `dist` hops away, or `None` when
    /// the configured schedule tops out short of `dist`. Used by the
    /// model checker's liveness executor to grant a probe discovery its
    /// schedule-mandated retries and not one more.
    pub fn discovery_attempts_for(&self, dist: u32) -> Option<u32> {
        let mut attempt = 1u32;
        while attempt < self.cfg.max_attempts && u32::from(self.cfg.ttl_for_attempt(attempt)) < dist
        {
            attempt += 1;
        }
        (u32::from(self.cfg.ttl_for_attempt(attempt)) >= dist).then_some(attempt)
    }

    /// Appends a canonical byte encoding of the complete protocol state
    /// to `out` (sorted map iteration; see
    /// `ldr::Ldr::verification_digest` for the contract).
    pub fn verification_digest(&self, out: &mut Vec<u8>) {
        fn push_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn push_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        push_u32(out, self.own_seq);
        push_u32(out, self.next_rreqid);
        push_u64(out, self.next_generation);
        push_u64(out, self.clock.as_nanos());

        let mut routes: Vec<(&NodeId, &Route)> = self.routes.iter().collect();
        routes.sort_unstable_by_key(|(d, _)| d.0);
        push_u64(out, routes.len() as u64);
        for (dest, r) in routes {
            out.extend_from_slice(&dest.0.to_le_bytes());
            match r.seq {
                None => out.push(0),
                Some(s) => {
                    out.push(1);
                    push_u32(out, s);
                }
            }
            push_u32(out, r.hops);
            out.extend_from_slice(&r.next.0.to_le_bytes());
            out.push(u8::from(r.valid));
            push_u64(out, r.expires.as_nanos());
            let mut pre: Vec<u16> = r.precursors.iter().map(|n| n.0).collect();
            pre.sort_unstable();
            push_u64(out, pre.len() as u64);
            for p in pre {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }

        let mut seen: Vec<(&(NodeId, u32), &SimTime)> = self.seen.iter().collect();
        seen.sort_unstable_by_key(|((origin, rreqid), _)| (origin.0, *rreqid));
        push_u64(out, seen.len() as u64);
        for ((origin, rreqid), exp) in seen {
            out.extend_from_slice(&origin.0.to_le_bytes());
            push_u32(out, *rreqid);
            push_u64(out, exp.as_nanos());
        }

        let mut fwd: Vec<_> = self.forwarded.iter().collect();
        fwd.sort_unstable_by_key(|((orig, dst), _)| (orig.0, dst.0));
        push_u64(out, fwd.len() as u64);
        for ((orig, dst), (seq, hops, exp)) in fwd {
            out.extend_from_slice(&orig.0.to_le_bytes());
            out.extend_from_slice(&dst.0.to_le_bytes());
            push_u32(out, *seq);
            out.push(*hops);
            push_u64(out, exp.as_nanos());
        }

        let mut pending: Vec<(&NodeId, &Discovery)> = self.pending.iter().collect();
        pending.sort_unstable_by_key(|(d, _)| d.0);
        push_u64(out, pending.len() as u64);
        for (dest, disc) in pending {
            out.extend_from_slice(&dest.0.to_le_bytes());
            push_u64(out, disc.generation);
            push_u32(out, disc.attempts);
            push_u64(out, disc.queue.len() as u64);
            for p in &disc.queue {
                out.extend_from_slice(&p.src.0.to_le_bytes());
                out.extend_from_slice(&p.dst.0.to_le_bytes());
                push_u32(out, p.flow);
                push_u32(out, p.seq);
                out.push(p.ttl);
            }
        }

        let mut nb: Vec<(&NodeId, &SimTime)> = self.neighbors.iter().collect();
        nb.sort_unstable_by_key(|(n, _)| n.0);
        push_u64(out, nb.len() as u64);
        for (n, deadline) in nb {
            out.extend_from_slice(&n.0.to_le_bytes());
            push_u64(out, deadline.as_nanos());
        }
    }

    /// RFC 3561 §6.2 update rule: accept if the sequence number is
    /// newer, or unknown locally, or equal with a shorter hop count, or
    /// equal while the current entry is invalid.
    fn update_route(
        &mut self,
        dest: NodeId,
        seq: Option<u32>,
        hops: u32,
        next: NodeId,
        now: SimTime,
        expires: SimTime,
    ) -> bool {
        match self.routes.get_mut(&dest) {
            None => {
                self.routes.insert(
                    dest,
                    Route { seq, hops, next, valid: true, expires, precursors: Vec::new() },
                );
                true
            }
            Some(r) => {
                let accept = match (seq, r.seq) {
                    (Some(n), Some(o)) => n > o || (n == o && (hops < r.hops || !r.is_active(now))),
                    (Some(_), None) => true,
                    (None, _) => !r.is_active(now),
                };
                if accept {
                    r.seq = seq.or(r.seq);
                    r.hops = hops;
                    r.next = next;
                    r.valid = true;
                    r.expires = r.expires.max(expires);
                    true
                } else {
                    if r.is_active(now) && r.next == next {
                        r.expires = r.expires.max(expires);
                    }
                    false
                }
            }
        }
    }

    fn refresh(&mut self, dest: NodeId, expires: SimTime) {
        if let Some(r) = self.routes.get_mut(&dest) {
            r.expires = r.expires.max(expires);
        }
    }

    fn add_precursor(&mut self, dest: NodeId, precursor: NodeId) {
        if let Some(r) = self.routes.get_mut(&dest) {
            if !r.precursors.contains(&precursor) {
                r.precursors.push(precursor);
            }
        }
    }

    // ----- discovery ---------------------------------------------------------

    fn queue_and_discover(&mut self, ctx: &mut Ctx, data: DataPacket) {
        let dest = data.dst;
        match self.pending.get_mut(&dest) {
            Some(d) => {
                if d.queue.len() >= self.cfg.buffer_cap {
                    ctx.drop_data(data, DropReason::BufferOverflow);
                } else {
                    d.queue.push_back(data);
                }
            }
            None => {
                let generation = self.next_generation;
                self.next_generation += 1;
                let mut queue = VecDeque::new();
                queue.push_back(data);
                self.pending.insert(dest, Discovery { generation, attempts: 1, queue });
                ctx.count(ProtoCounter::DiscoveryStarted);
                self.send_rreq(ctx, dest, 1, generation);
            }
        }
    }

    fn send_rreq(&mut self, ctx: &mut Ctx, dest: NodeId, attempt: u32, generation: u64) {
        // "Immediately before a node originates a route discovery, it
        // MUST increment its own sequence number" — this, plus the
        // break-time inflation below, is what Fig. 7 measures.
        self.own_seq = self.own_seq.wrapping_add(1);
        ctx.count(ProtoCounter::SeqnoIncrement);
        let ttl = self.cfg.ttl_for_attempt(attempt);
        let rreqid = self.next_rreqid;
        self.next_rreqid += 1;
        let rreq = Rreq {
            dst: dest,
            dst_seq: self.routes.get(&dest).and_then(|r| r.seq),
            rreqid,
            src: self.id,
            src_seq: self.own_seq,
            hop_count: 0,
            ttl,
            dest_only: self.cfg.destination_only,
        };
        ctx.broadcast(ControlKind::Rreq, rreq.encode(), true);
        ctx.set_timer(self.cfg.discovery_timeout(ttl), discovery_token(dest, generation));
    }

    fn finish_success(&mut self, ctx: &mut Ctx, dest: NodeId) {
        let Some(mut d) = self.pending.remove(&dest) else { return };
        ctx.count(ProtoCounter::DiscoverySucceeded);
        let now = ctx.now();
        while let Some(p) = d.queue.pop_front() {
            match self.active(dest, now).map(|r| r.next) {
                Some(next) => {
                    self.refresh(dest, now + self.cfg.active_route_timeout);
                    ctx.send_data(next, p);
                }
                None => ctx.drop_data(p, DropReason::NoRoute),
            }
        }
    }

    // ----- RREQ --------------------------------------------------------------

    fn handle_rreq(&mut self, ctx: &mut Ctx, prev: NodeId, rreq: Rreq) {
        if rreq.src == self.id {
            return;
        }
        let now = ctx.now();
        let key = (rreq.src, rreq.rreqid);
        if self.seen.get(&key).is_some_and(|&e| e > now) {
            return;
        }
        self.seen.insert(key, now + self.cfg.rreq_cache_ttl);

        let hops = u32::from(rreq.hop_count) + 1;
        // Reverse route to the originator.
        self.update_route(
            rreq.src,
            Some(rreq.src_seq),
            hops,
            prev,
            now,
            now + self.cfg.active_route_timeout,
        );

        if rreq.dst == self.id {
            // Destination reply: catch up with inflation done by other
            // nodes, and increment when the request matches our number.
            if let Some(rs) = rreq.dst_seq {
                if rs > self.own_seq {
                    self.own_seq = rs;
                    ctx.count(ProtoCounter::SeqnoIncrement);
                }
                if rs == self.own_seq {
                    self.own_seq = self.own_seq.wrapping_add(1);
                    ctx.count(ProtoCounter::SeqnoIncrement);
                }
            }
            let rrep = Rrep {
                dst: self.id,
                dst_seq: self.own_seq,
                orig: rreq.src,
                hop_count: 0,
                lifetime_ms: self.cfg.my_route_timeout.as_millis() as u32,
            };
            ctx.unicast_control(prev, ControlKind::Rrep, rrep.encode(), true, true);
            return;
        }

        // Intermediate reply: active route with a known, fresh-enough
        // sequence number.
        if !rreq.dest_only {
            if let Some(r) = self.active(rreq.dst, now) {
                if let Some(seq) = r.seq {
                    let fresh = rreq.dst_seq.is_none_or(|rs| seq >= rs);
                    if fresh {
                        let (r_hops, r_next, r_exp) = (r.hops, r.next, r.expires);
                        let rrep = Rrep {
                            dst: rreq.dst,
                            dst_seq: seq,
                            orig: rreq.src,
                            hop_count: r_hops.min(255) as u8,
                            lifetime_ms: r_exp.saturating_since(now).as_millis() as u32,
                        };
                        ctx.unicast_control(prev, ControlKind::Rrep, rrep.encode(), true, true);
                        // Precursor bookkeeping for later RERRs.
                        self.add_precursor(rreq.dst, prev);
                        self.add_precursor(rreq.src, r_next);
                        return;
                    }
                }
            }
        }

        // Relay, raising the requested number to our stored one.
        if rreq.ttl <= 1 {
            return;
        }
        let stored = self.routes.get(&rreq.dst).and_then(|r| r.seq);
        let dst_seq = match (rreq.dst_seq, stored) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let fwd = Rreq {
            dst_seq,
            hop_count: rreq.hop_count.saturating_add(1),
            ttl: rreq.ttl - 1,
            ..rreq
        };
        ctx.broadcast(ControlKind::Rreq, fwd.encode(), false);
    }

    // ----- RREP --------------------------------------------------------------

    fn handle_rrep(&mut self, ctx: &mut Ctx, prev: NodeId, rrep: Rrep) {
        let now = ctx.now();
        if rrep.orig == rrep.dst {
            // A hello (RFC 3561 §6.9): refresh the neighbour route and
            // liveness, never forward.
            let life = SimDuration::from_millis(u64::from(rrep.lifetime_ms));
            self.update_route(prev, Some(rrep.dst_seq), 1, prev, now, now + life);
            self.refresh(prev, now + life);
            self.neighbors.insert(prev, now + life);
            return;
        }
        let hops = u32::from(rrep.hop_count) + 1;
        let lifetime = SimDuration::from_millis(u64::from(rrep.lifetime_ms));
        let installed =
            self.update_route(rrep.dst, Some(rrep.dst_seq), hops, prev, now, now + lifetime);
        if installed {
            ctx.count(ProtoCounter::RrepUsableRecv);
        }
        if rrep.orig == self.id {
            if self.active(rrep.dst, now).is_some() {
                self.finish_success(ctx, rrep.dst);
            }
            return;
        }
        // Forward towards the originator via the reverse route.
        let Some(rev) = self.active(rrep.orig, now) else { return };
        let rev_next = rev.next;
        // Forward only the first RREP per (orig, dst), or a strictly
        // better one (greater seq, or equal seq and fewer hops).
        let fkey = (rrep.orig, rrep.dst);
        let better = match self.forwarded.get(&fkey) {
            Some(&(s, h, exp)) if exp > now => {
                rrep.dst_seq > s || (rrep.dst_seq == s && rrep.hop_count.saturating_add(1) < h)
            }
            _ => true,
        };
        if !better {
            return;
        }
        self.forwarded.insert(
            fkey,
            (rrep.dst_seq, rrep.hop_count.saturating_add(1), now + self.cfg.rreq_cache_ttl),
        );
        let fwd = Rrep { hop_count: rrep.hop_count.saturating_add(1), ..rrep };
        ctx.unicast_control(rev_next, ControlKind::Rrep, fwd.encode(), false, true);
        // Precursors: downstream knows upstream uses it, and vice versa.
        self.add_precursor(rrep.dst, rev_next);
        self.add_precursor(rrep.orig, prev);
    }

    // ----- RERR --------------------------------------------------------------

    fn handle_rerr(&mut self, ctx: &mut Ctx, prev: NodeId, rerr: Rerr) {
        let now = ctx.now();
        let mut propagate = Vec::new();
        for e in &rerr.entries {
            if let Some(r) = self.routes.get_mut(&e.dst) {
                if r.is_active(now) && r.next == prev {
                    r.valid = false;
                    r.seq = Some(e.dst_seq);
                    propagate.push(RerrEntry { dst: e.dst, dst_seq: e.dst_seq });
                }
            }
        }
        if !propagate.is_empty() {
            ctx.broadcast(ControlKind::Rerr, Rerr { entries: propagate }.encode(), false);
        }
    }
}

impl RoutingProtocol for Aodv {
    fn name(&self) -> &'static str {
        "AODV"
    }

    fn start(&mut self, ctx: &mut Ctx) {
        self.clock = ctx.now();
        ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
        if let Some(interval) = self.cfg.hello_interval {
            // Stagger first hellos across the interval.
            let j = ctx.rng().below(interval.as_nanos().max(1));
            ctx.set_timer(SimDuration::from_nanos(j), HELLO_TOKEN);
        }
    }

    fn handle_reboot(&mut self, ctx: &mut Ctx) {
        // RFC 3561 stores nothing across a power cycle: the routing
        // table, dedup caches, pending discoveries AND the node's own
        // sequence number are all gone. Restarting at own_seq = 0 is
        // exactly the behaviour "Sequence Numbers Do Not Guarantee Loop
        // Freedom" exploits — neighbours still hold stale routes
        // *through* this node with higher destination numbers, so a
        // post-restart discovery can be answered from that stale state
        // and close a loop. We keep it honest rather than adopting the
        // (optional, rarely deployed) DELETE_PERIOD quarantine.
        self.own_seq = 0;
        self.routes.clear();
        self.seen.clear();
        self.forwarded.clear();
        self.pending.clear();
        self.neighbors.clear();
        self.next_rreqid = 0;
        self.next_generation = 0;
        self.start(ctx);
    }

    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.clock = ctx.now();
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        let now = ctx.now();
        match self.active(data.dst, now).map(|r| r.next) {
            Some(next) => {
                self.refresh(data.dst, now + self.cfg.active_route_timeout);
                ctx.send_data(next, data);
            }
            None => self.queue_and_discover(ctx, data),
        }
    }

    fn handle_data_packet(&mut self, ctx: &mut Ctx, prev_hop: NodeId, mut data: DataPacket) {
        self.clock = ctx.now();
        let now = ctx.now();
        self.refresh(data.src, now + self.cfg.active_route_timeout);
        self.refresh(prev_hop, now + self.cfg.active_route_timeout);
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        if data.ttl == 0 {
            ctx.drop_data(data, DropReason::TtlExpired);
            return;
        }
        data.ttl -= 1;
        match self.active(data.dst, now).map(|r| r.next) {
            Some(next) => {
                self.refresh(data.dst, now + self.cfg.active_route_timeout);
                ctx.send_data(next, data);
            }
            None => {
                // Unrepairable at a relay: RERR upstream, drop.
                let seq = self
                    .routes
                    .get_mut(&data.dst)
                    .map(|r| {
                        let s = r.seq.map_or(1, |s| s.wrapping_add(1));
                        r.seq = Some(s);
                        s
                    })
                    .unwrap_or(0);
                let rerr = Rerr { entries: vec![RerrEntry { dst: data.dst, dst_seq: seq }] };
                ctx.broadcast(ControlKind::Rerr, rerr.encode(), true);
                ctx.drop_data(data, DropReason::NoRoute);
            }
        }
    }

    fn handle_control(
        &mut self,
        ctx: &mut Ctx,
        prev_hop: NodeId,
        ctrl: ControlPacket,
        _was_broadcast: bool,
    ) {
        self.clock = ctx.now();
        match ctrl.kind {
            ControlKind::Rreq => match Rreq::decode(&ctrl.bytes) {
                Some(m) => self.handle_rreq(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rreq),
            },
            ControlKind::Rrep => match Rrep::decode(&ctrl.bytes) {
                Some(m) => self.handle_rrep(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rrep),
            },
            ControlKind::Rerr => match Rerr::decode(&ctrl.bytes) {
                Some(m) => self.handle_rerr(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rerr),
            },
            ControlKind::Hello => match Rrep::decode(&ctrl.bytes) {
                Some(m) => self.handle_rrep(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Hello),
            },
            _ => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.clock = ctx.now();
        if token == CLEANUP_TOKEN {
            let now = ctx.now();
            self.seen.retain(|_, &mut e| e > now);
            self.forwarded.retain(|_, &mut (_, _, e)| e > now);
            ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
            return;
        }
        if token == HELLO_TOKEN {
            let Some(interval) = self.cfg.hello_interval else { return };
            let now = ctx.now();
            // Declare hello-silent neighbours lost.
            let mut dead: Vec<NodeId> = self
                .neighbors
                .iter()
                .filter(|(_, &deadline)| deadline <= now)
                .map(|(&n, _)| n)
                .collect();
            // Hash-map iteration order must not decide the RERR emission
            // order (it is observable through FEL sequencing).
            dead.sort_unstable_by_key(|n| n.0);
            for n in dead {
                self.neighbors.remove(&n);
                let mut lost = Vec::new();
                for (&dest, r) in self.routes.iter_mut() {
                    if r.next == n && r.is_active(now) {
                        r.valid = false;
                        let s = r.seq.map_or(1, |s| s.wrapping_add(1));
                        r.seq = Some(s);
                        lost.push(RerrEntry { dst: dest, dst_seq: s });
                    }
                }
                lost.sort_unstable_by_key(|e| e.dst.0);
                if !lost.is_empty() {
                    ctx.broadcast(ControlKind::Rerr, Rerr { entries: lost }.encode(), true);
                }
            }
            // Emit a hello if this node is part of any active route.
            if self.routes.values().any(|r| r.is_active(now)) {
                let life = interval.saturating_mul(u64::from(self.cfg.allowed_hello_loss) + 1);
                let hello = Rrep {
                    dst: self.id,
                    dst_seq: self.own_seq,
                    orig: self.id,
                    hop_count: 0,
                    lifetime_ms: life.as_millis() as u32,
                };
                ctx.broadcast(ControlKind::Hello, hello.encode(), true);
            }
            ctx.set_timer(interval, HELLO_TOKEN);
            return;
        }
        let dest = NodeId((token >> 32) as u16);
        let gen32 = token & 0xFFFF_FFFF;
        let now = ctx.now();
        let Some(d) = self.pending.get(&dest) else { return };
        if (d.generation & 0xFFFF_FFFF) != gen32 {
            return;
        }
        if self.active(dest, now).is_some() {
            self.finish_success(ctx, dest);
            return;
        }
        let attempts = d.attempts + 1;
        if attempts > self.cfg.max_attempts {
            if let Some(d) = self.pending.remove(&dest) {
                for p in d.queue {
                    ctx.drop_data(p, DropReason::NoRoute);
                }
            }
            ctx.count(ProtoCounter::DiscoveryFailed);
        } else if let Some(d) = self.pending.get_mut(&dest) {
            let generation = d.generation;
            d.attempts = attempts;
            self.send_rreq(ctx, dest, attempts, generation);
        }
    }

    fn handle_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.clock = ctx.now();
        let now = ctx.now();
        // Invalidate every route through the dead hop, incrementing the
        // stored destination sequence numbers (AODV's signature move).
        let mut lost = Vec::new();
        for (&dest, r) in self.routes.iter_mut() {
            if r.next == next_hop && r.is_active(now) {
                r.valid = false;
                let s = r.seq.map_or(1, |s| s.wrapping_add(1));
                r.seq = Some(s);
                lost.push(RerrEntry { dst: dest, dst_seq: s });
            }
        }
        lost.sort_unstable_by_key(|e| e.dst.0);
        if let PacketBody::Data(data) = packet.body {
            if data.src == self.id {
                self.queue_and_discover(ctx, data);
            } else {
                ctx.drop_data(data, DropReason::NoRoute);
            }
        }
        if !lost.is_empty() {
            ctx.broadcast(ControlKind::Rerr, Rerr { entries: lost }.encode(), true);
        }
    }

    fn route_successors(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self
            .routes
            .iter()
            .filter(|(_, r)| r.is_active(self.clock))
            .map(|(&d, r)| (d, r.next))
            .collect();
        v.sort_unstable_by_key(|(d, _)| d.0);
        v
    }

    fn route_table_dump(&self) -> Vec<RouteDump> {
        let mut v: Vec<RouteDump> = self
            .routes
            .iter()
            .map(|(&dest, r)| RouteDump {
                dest,
                next: r.next,
                dist: r.hops,
                feasible_dist: None,
                seqno: r.seq.map(u64::from),
                valid: r.is_active(self.clock),
            })
            .collect();
        v.sort_unstable_by_key(|r| r.dest.0);
        v
    }

    fn own_seqno_value(&self) -> Option<f64> {
        Some(f64::from(self.own_seq))
    }

    fn telemetry_snapshot(&self) -> RouteTelemetry {
        // Avoids the dump's allocation + sort; called per node on every
        // sampler tick.
        let mut t = RouteTelemetry::default();
        for r in self.routes.values() {
            t.entries += 1;
            if r.is_active(self.clock) {
                t.valid += 1;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests;
