//! AODV unit tests driving the state machine directly.

use super::*;
use manet_sim::protocol::Action;
use manet_sim::rng::SimRng;

struct Node {
    aodv: Aodv,
    rng: SimRng,
    now: SimTime,
}

impl Node {
    fn new(id: u16) -> Self {
        Node {
            aodv: Aodv::new(NodeId(id), AodvConfig::default()),
            rng: SimRng::from_seed(u64::from(id)),
            now: SimTime::from_secs(1),
        }
    }

    fn at(&mut self, t: SimTime) -> &mut Self {
        self.now = t;
        self
    }

    fn call<F: FnOnce(&mut Aodv, &mut Ctx)>(&mut self, f: F) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(self.now, self.aodv.id, 50, &mut self.rng, &mut actions);
        f(&mut self.aodv, &mut ctx);
        actions
    }

    fn originate(&mut self, d: DataPacket) -> Vec<Action> {
        self.call(|a, ctx| a.handle_data_origination(ctx, d))
    }
    fn rreq_from(&mut self, prev: u16, m: Rreq) -> Vec<Action> {
        self.call(|a, ctx| a.handle_rreq(ctx, NodeId(prev), m))
    }
    fn rrep_from(&mut self, prev: u16, m: Rrep) -> Vec<Action> {
        self.call(|a, ctx| a.handle_rrep(ctx, NodeId(prev), m))
    }
    fn link_failure(&mut self, next: u16, d: DataPacket) -> Vec<Action> {
        let p = Packet { uid: 1, origin: self.aodv.id, body: PacketBody::Data(d) };
        self.call(|a, ctx| a.handle_unicast_failure(ctx, NodeId(next), p))
    }
    fn install(&mut self, dest: u16, seq: u32, hops: u8, via: u16) {
        let m = Rrep {
            dst: NodeId(dest),
            dst_seq: seq,
            orig: NodeId(49),
            hop_count: hops,
            lifetime_ms: 6000,
        };
        self.rrep_from(via, m);
        assert!(self.aodv.active(NodeId(dest), self.now).is_some());
    }
}

fn data(src: u16, dst: u16) -> DataPacket {
    DataPacket {
        src: NodeId(src),
        dst: NodeId(dst),
        flow: 1,
        seq: 0,
        created: SimTime::from_secs(1),
        payload_len: 512,
        ttl: 64,
        ext: vec![],
    }
}

fn base_rreq(src: u16, dst: u16, id: u32) -> Rreq {
    Rreq {
        dst: NodeId(dst),
        dst_seq: None,
        rreqid: id,
        src: NodeId(src),
        src_seq: 5,
        hop_count: 0,
        ttl: 10,
        dest_only: false,
    }
}

fn sent_rreqs(actions: &[Action]) -> Vec<Rreq> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast { ctrl, .. } if ctrl.kind == ControlKind::Rreq => {
                Rreq::decode(&ctrl.bytes)
            }
            _ => None,
        })
        .collect()
}

fn sent_rreps(actions: &[Action]) -> Vec<(Rrep, NodeId)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::UnicastControl { next, ctrl, .. } if ctrl.kind == ControlKind::Rrep => {
                Rrep::decode(&ctrl.bytes).map(|m| (m, *next))
            }
            _ => None,
        })
        .collect()
}

fn sent_rerrs(actions: &[Action]) -> Vec<Rerr> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast { ctrl, .. } if ctrl.kind == ControlKind::Rerr => {
                Rerr::decode(&ctrl.bytes)
            }
            _ => None,
        })
        .collect()
}

#[test]
fn origination_increments_own_seq_and_floods() {
    let mut n = Node::new(0);
    assert_eq!(n.aodv.own_seq(), 0);
    let acts = n.originate(data(0, 7));
    assert_eq!(n.aodv.own_seq(), 1, "AODV bumps its own number per RREQ");
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert_eq!(rreqs[0].src_seq, 1);
    assert_eq!(rreqs[0].dst_seq, None);
}

#[test]
fn destination_increments_when_request_matches_own_number() {
    let mut n = Node::new(7);
    // Request carries our exact current number (0): we must move past it.
    let m = Rreq { dst_seq: Some(0), ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert_eq!(n.aodv.own_seq(), 1);
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps[0].0.dst_seq, 1);
    assert_eq!(rreps[0].0.hop_count, 0);
}

#[test]
fn destination_catches_up_with_inflated_numbers() {
    // Other nodes incremented our number to 41 on breaks; when the
    // request reaches us we must adopt and exceed it.
    let mut n = Node::new(7);
    let m = Rreq { dst_seq: Some(41), ..base_rreq(0, 7, 1) };
    n.rreq_from(2, m);
    assert_eq!(n.aodv.own_seq(), 42);
}

#[test]
fn intermediate_with_fresh_route_replies() {
    let mut n = Node::new(5);
    n.install(7, 9, 1, 6);
    let m = Rreq { dst_seq: Some(9), ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps.len(), 1);
    assert_eq!(rreps[0].0.dst_seq, 9);
    assert_eq!(rreps[0].1, NodeId(2));
    assert!(sent_rreqs(&acts).is_empty());
}

#[test]
fn intermediate_with_stale_seq_must_relay_not_reply() {
    // The AODV pathology LDR fixes: a downstream node with a perfectly
    // good route under the *previous* number cannot answer.
    let mut n = Node::new(5);
    n.install(7, 9, 1, 6);
    let m = Rreq { dst_seq: Some(10), ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert!(sent_rreps(&acts).is_empty());
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert_eq!(rreqs[0].hop_count, 1);
    assert_eq!(rreqs[0].dst_seq, Some(10), "relay keeps the max number");
}

#[test]
fn relay_raises_requested_seq_to_stored() {
    let mut n = Node::new(5);
    n.install(7, 12, 1, 6);
    n.aodv.routes.get_mut(&NodeId(7)).unwrap().valid = false;
    let m = Rreq { dst_seq: Some(3), ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs[0].dst_seq, Some(12));
}

#[test]
fn duplicate_rreq_suppressed() {
    let mut n = Node::new(5);
    assert_eq!(sent_rreqs(&n.rreq_from(2, base_rreq(0, 7, 1))).len(), 1);
    assert!(n.rreq_from(3, base_rreq(0, 7, 1)).is_empty());
}

#[test]
fn reverse_route_installed_from_rreq() {
    let mut n = Node::new(5);
    n.rreq_from(2, Rreq { hop_count: 3, ..base_rreq(0, 7, 1) });
    let r = n.aodv.route(NodeId(0)).unwrap();
    assert_eq!((r.hops, r.next, r.seq), (4, NodeId(2), Some(5)));
}

#[test]
fn rrep_forwarded_along_reverse_route() {
    let mut n = Node::new(5);
    n.rreq_from(2, base_rreq(0, 7, 1)); // reverse route to 0 via 2
    let m = Rrep { dst: NodeId(7), dst_seq: 4, orig: NodeId(0), hop_count: 1, lifetime_ms: 6000 };
    let acts = n.rrep_from(6, m);
    let fwd = sent_rreps(&acts);
    assert_eq!(fwd.len(), 1);
    assert_eq!(fwd[0].1, NodeId(2));
    assert_eq!(fwd[0].0.hop_count, 2);
    // Duplicate (same strength) suppressed.
    let acts = n.rrep_from(6, m);
    assert!(sent_rreps(&acts).is_empty());
    // Strictly better forwarded.
    let better = Rrep { dst_seq: 5, ..m };
    assert_eq!(sent_rreps(&n.rrep_from(6, better)).len(), 1);
}

#[test]
fn link_break_increments_stored_seq_and_sends_rerr() {
    let mut n = Node::new(5);
    n.install(7, 9, 2, 6);
    n.install(8, 3, 1, 6);
    let acts = n.link_failure(6, data(1, 7));
    assert!(n.aodv.active(NodeId(7), n.now).is_none());
    let rerrs = sent_rerrs(&acts);
    assert_eq!(rerrs.len(), 1);
    let mut seqs: Vec<(u16, u32)> = rerrs[0].entries.iter().map(|e| (e.dst.0, e.dst_seq)).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![(7, 10), (8, 4)], "numbers inflate on breaks");
    assert_eq!(n.aodv.route(NodeId(7)).unwrap().seq, Some(10));
}

#[test]
fn rerr_propagates_only_for_routes_through_sender() {
    let mut n = Node::new(5);
    n.install(7, 9, 2, 6);
    let rerr = Rerr { entries: vec![RerrEntry { dst: NodeId(7), dst_seq: 10 }] };
    let acts = n.call(|a, ctx| a.handle_rerr(ctx, NodeId(6), rerr.clone()));
    assert!(n.aodv.active(NodeId(7), n.now).is_none());
    assert_eq!(sent_rerrs(&acts).len(), 1);
    // From a non-successor: inert.
    let mut n2 = Node::new(5);
    n2.install(7, 9, 2, 6);
    let acts = n2.call(|a, ctx| a.handle_rerr(ctx, NodeId(4), rerr));
    assert!(n2.aodv.active(NodeId(7), n2.now).is_some());
    assert!(sent_rerrs(&acts).is_empty());
}

#[test]
fn stale_rediscovery_inhibits_downstream_answers_end_to_end() {
    // After a break, the origin's RREQ carries seq+1; a downstream
    // holder of the old number relays instead of replying.
    let mut origin = Node::new(0);
    origin.install(7, 9, 3, 1);
    origin.link_failure(1, data(0, 7)); // stored seq becomes 10, rediscovery starts
    assert!(origin.aodv.pending.contains_key(&NodeId(7)));
    let r = origin.aodv.route(NodeId(7)).unwrap();
    assert_eq!(r.seq, Some(10));

    let mut downstream = Node::new(5);
    downstream.install(7, 9, 1, 6); // still has the old number
    let m = Rreq { dst_seq: Some(10), src_seq: 2, ..base_rreq(0, 7, 77) };
    let acts = downstream.rreq_from(2, m);
    assert!(sent_rreps(&acts).is_empty(), "old-number route cannot answer");
    assert_eq!(sent_rreqs(&acts).len(), 1);
}

#[test]
fn route_update_rules_follow_rfc() {
    let mut n = Node::new(5);
    let now = n.now;
    let exp = now + SimDuration::from_secs(3);
    // Fresh install.
    assert!(n.aodv.update_route(NodeId(7), Some(5), 3, NodeId(2), now, exp));
    // Older seq rejected.
    assert!(!n.aodv.update_route(NodeId(7), Some(4), 1, NodeId(3), now, exp));
    // Same seq, shorter: accepted.
    assert!(n.aodv.update_route(NodeId(7), Some(5), 2, NodeId(4), now, exp));
    // Same seq, longer: rejected.
    assert!(!n.aodv.update_route(NodeId(7), Some(5), 6, NodeId(3), now, exp));
    // Newer seq, any hops: accepted.
    assert!(n.aodv.update_route(NodeId(7), Some(6), 9, NodeId(3), now, exp));
    assert_eq!(n.aodv.route(NodeId(7)).unwrap().next, NodeId(3));
}

#[test]
fn data_with_route_forwards_and_refreshes() {
    let mut n = Node::new(5);
    n.install(7, 9, 1, 6);
    let acts = n.call(|a, ctx| a.handle_data_packet(ctx, NodeId(2), data(0, 7)));
    assert!(acts.iter().any(|a| matches!(a, Action::SendData { next, .. } if *next == NodeId(6))));
}

#[test]
fn data_without_route_at_relay_errs_upstream() {
    let mut n = Node::new(5);
    let acts = n.call(|a, ctx| a.handle_data_packet(ctx, NodeId(2), data(0, 7)));
    assert_eq!(sent_rerrs(&acts).len(), 1);
    assert!(acts.iter().any(|a| matches!(a, Action::DropData { reason: DropReason::NoRoute, .. })));
}

#[test]
fn expanding_ring_retry_with_timer() {
    let mut n = Node::new(0);
    let first = sent_rreqs(&n.originate(data(0, 7)));
    let acts = n.timer(discovery_token(NodeId(7), 0));
    let second = sent_rreqs(&acts);
    assert_eq!(second.len(), 1);
    assert!(second[0].ttl > first[0].ttl);
    assert!(second[0].src_seq > first[0].src_seq, "every attempt bumps own seq");
}

impl Node {
    fn timer(&mut self, token: u64) -> Vec<Action> {
        self.call(|a, ctx| a.handle_timer(ctx, token))
    }
}

#[test]
fn own_seqno_value_reflects_growth() {
    let mut n = Node::new(0);
    for _ in 0..30 {
        // Each failed discovery cycle bumps the number.
        n.originate(data(0, 7));
        // Simulate timeout exhaustion quickly by clearing pending.
        n.aodv.pending.clear();
    }
    assert_eq!(n.aodv.own_seqno_value(), Some(30.0));
}

// ----- hello-based link sensing (RFC 3561 §6.9, optional) -------------------

fn hello_node(id: u16) -> Node {
    let cfg =
        AodvConfig { hello_interval: Some(SimDuration::from_secs(1)), ..AodvConfig::default() };
    Node {
        aodv: Aodv::new(NodeId(id), cfg),
        rng: SimRng::from_seed(u64::from(id)),
        now: SimTime::from_secs(1),
    }
}

#[test]
fn hellos_emitted_only_with_active_routes() {
    let mut n = hello_node(5);
    // No routes: the timer reschedules but stays silent.
    let acts = n.timer(HELLO_TOKEN);
    assert!(!acts
        .iter()
        .any(|a| matches!(a, Action::Broadcast { ctrl, .. } if ctrl.kind == ControlKind::Hello)));
    assert!(acts
        .iter()
        .any(|a| matches!(a, Action::SetTimer { token, .. } if *token == HELLO_TOKEN)));
    // With a route: a hello goes out, carrying our own number.
    n.install(7, 9, 1, 6);
    let acts = n.timer(HELLO_TOKEN);
    let hello = acts
        .iter()
        .find_map(|a| match a {
            Action::Broadcast { ctrl, .. } if ctrl.kind == ControlKind::Hello => {
                Rrep::decode(&ctrl.bytes)
            }
            _ => None,
        })
        .expect("hello broadcast");
    assert_eq!(hello.dst, NodeId(5));
    assert_eq!(hello.orig, NodeId(5), "hellos mark orig == dst");
    assert_eq!(hello.hop_count, 0);
}

#[test]
fn received_hello_installs_neighbor_route_without_forwarding() {
    let mut n = hello_node(5);
    let hello =
        Rrep { dst: NodeId(2), dst_seq: 7, orig: NodeId(2), hop_count: 0, lifetime_ms: 3000 };
    let acts = n.call(|a, ctx| {
        a.handle_control(
            ctx,
            NodeId(2),
            manet_sim::packet::ControlPacket { kind: ControlKind::Hello, bytes: hello.encode() },
            true,
        )
    });
    assert!(sent_rreps(&acts).is_empty(), "hellos are never forwarded");
    let r = n.aodv.route(NodeId(2)).expect("neighbour route");
    assert_eq!((r.hops, r.next), (1, NodeId(2)));
}

#[test]
fn silent_neighbor_triggers_rerr_on_hello_sweep() {
    let mut n = hello_node(5);
    // Neighbour 6 said hello at t=1 with 3 s of life...
    let hello =
        Rrep { dst: NodeId(6), dst_seq: 1, orig: NodeId(6), hop_count: 0, lifetime_ms: 3000 };
    n.call(|a, ctx| {
        a.handle_control(
            ctx,
            NodeId(6),
            manet_sim::packet::ControlPacket { kind: ControlKind::Hello, bytes: hello.encode() },
            true,
        )
    });
    // ...and we route to 7 through it.
    n.install(7, 9, 1, 6);
    // At t=5 the hello deadline has passed: the sweep declares 6 lost.
    n.at(SimTime::from_secs(5));
    let acts = n.timer(HELLO_TOKEN);
    let rerrs = sent_rerrs(&acts);
    assert_eq!(rerrs.len(), 1, "routes through the silent neighbour are revoked");
    assert!(rerrs[0].entries.iter().any(|e| e.dst == NodeId(7)));
}
