//! AODV control messages (after draft-ietf-manet-aodv-10, the version
//! the paper compares against) with a fixed wire layout.

use manet_sim::packet::NodeId;
use manet_sim::wire::{clamp_count, get_u16, get_u32, get_u8};

/// AODV route request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rreq {
    /// Sought destination.
    pub dst: NodeId,
    /// Last known destination sequence number (`None` = unknown flag).
    pub dst_seq: Option<u32>,
    /// Origin-unique flood identifier.
    pub rreqid: u32,
    /// Originator.
    pub src: NodeId,
    /// Originator's own sequence number.
    pub src_seq: u32,
    /// Hops traversed so far.
    pub hop_count: u8,
    /// Remaining flood TTL.
    pub ttl: u8,
    /// `D` flag: only the destination may respond.
    pub dest_only: bool,
}

/// AODV route reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rrep {
    /// Destination the route leads to.
    pub dst: NodeId,
    /// Destination sequence number.
    pub dst_seq: u32,
    /// Originator of the RREQ (where the RREP is headed).
    pub orig: NodeId,
    /// Hops from the replying node to the destination.
    pub hop_count: u8,
    /// Route lifetime in milliseconds.
    pub lifetime_ms: u32,
}

/// One unreachable destination in a route error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RerrEntry {
    /// Unreachable destination.
    pub dst: NodeId,
    /// Its (incremented) sequence number.
    pub dst_seq: u32,
}

/// AODV route error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rerr {
    /// Unreachable destinations.
    pub entries: Vec<RerrEntry>,
}

const RREQ_LEN: usize = 20;
const RREP_LEN: usize = 16;

impl Rreq {
    /// Encodes to the 20-byte wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut f = 0u8;
        if self.dst_seq.is_none() {
            f |= 1; // U: unknown sequence number
        }
        if self.dest_only {
            f |= 2; // D
        }
        let mut b = Vec::with_capacity(RREQ_LEN);
        b.push(1u8);
        b.push(f);
        b.push(self.hop_count);
        b.push(self.ttl);
        b.extend_from_slice(&self.rreqid.to_be_bytes());
        b.extend_from_slice(&self.dst.0.to_be_bytes());
        b.extend_from_slice(&self.src.0.to_be_bytes());
        b.extend_from_slice(&self.dst_seq.unwrap_or(0).to_be_bytes());
        b.extend_from_slice(&self.src_seq.to_be_bytes());
        debug_assert_eq!(b.len(), RREQ_LEN);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != RREQ_LEN || get_u8(b, 0)? != 1 {
            return None;
        }
        let f = get_u8(b, 1)?;
        let dst_seq = if f & 1 == 0 { Some(get_u32(b, 12)?) } else { None };
        Some(Rreq {
            dst: NodeId(get_u16(b, 8)?),
            dst_seq,
            rreqid: get_u32(b, 4)?,
            src: NodeId(get_u16(b, 10)?),
            src_seq: get_u32(b, 16)?,
            hop_count: get_u8(b, 2)?,
            ttl: get_u8(b, 3)?,
            dest_only: f & 2 != 0,
        })
    }
}

impl Rrep {
    /// Encodes to the 16-byte wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(RREP_LEN);
        b.push(2u8);
        b.push(0);
        b.push(self.hop_count);
        b.push(0);
        b.extend_from_slice(&self.dst.0.to_be_bytes());
        b.extend_from_slice(&self.orig.0.to_be_bytes());
        b.extend_from_slice(&self.dst_seq.to_be_bytes());
        b.extend_from_slice(&self.lifetime_ms.to_be_bytes());
        debug_assert_eq!(b.len(), RREP_LEN);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != RREP_LEN || get_u8(b, 0)? != 2 {
            return None;
        }
        Some(Rrep {
            dst: NodeId(get_u16(b, 4)?),
            dst_seq: get_u32(b, 8)?,
            orig: NodeId(get_u16(b, 6)?),
            hop_count: get_u8(b, 2)?,
            lifetime_ms: get_u32(b, 12)?,
        })
    }
}

impl Rerr {
    /// Encodes: 4-byte header plus 8 bytes per entry.
    pub fn encode(&self) -> Vec<u8> {
        let count = clamp_count(self.entries.len());
        let mut b = Vec::with_capacity(4 + 8 * self.entries.len());
        b.push(3u8);
        b.push(count);
        b.extend_from_slice(&[0, 0]);
        for e in self.entries.iter().take(usize::from(count)) {
            b.extend_from_slice(&e.dst.0.to_be_bytes());
            b.extend_from_slice(&[0, 0]);
            b.extend_from_slice(&e.dst_seq.to_be_bytes());
        }
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 3 {
            return None;
        }
        let count = usize::from(get_u8(b, 1)?);
        let body = b.get(4..)?;
        if body.len() != count.checked_mul(8)? {
            return None;
        }
        let entries = body
            .chunks_exact(8)
            .map(|c| Some(RerrEntry { dst: NodeId(get_u16(c, 0)?), dst_seq: get_u32(c, 4)? }))
            .collect::<Option<Vec<_>>>()?;
        Some(Rerr { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rreq_round_trip() {
        let m = Rreq {
            dst: NodeId(7),
            dst_seq: Some(19),
            rreqid: 3,
            src: NodeId(1),
            src_seq: 88,
            hop_count: 4,
            ttl: 9,
            dest_only: true,
        };
        assert_eq!(Rreq::decode(&m.encode()), Some(m));
        let unknown = Rreq { dst_seq: None, dest_only: false, ..m };
        assert_eq!(Rreq::decode(&unknown.encode()), Some(unknown));
    }

    #[test]
    fn rrep_round_trip() {
        let m =
            Rrep { dst: NodeId(7), dst_seq: 20, orig: NodeId(1), hop_count: 2, lifetime_ms: 3000 };
        assert_eq!(Rrep::decode(&m.encode()), Some(m));
    }

    #[test]
    fn rerr_round_trip() {
        let m = Rerr {
            entries: vec![
                RerrEntry { dst: NodeId(4), dst_seq: 9 },
                RerrEntry { dst: NodeId(5), dst_seq: 0 },
            ],
        };
        assert_eq!(Rerr::decode(&m.encode()), Some(m));
    }

    #[test]
    fn malformed_rejected() {
        assert!(Rreq::decode(&[0u8; 20]).is_none());
        assert!(Rrep::decode(&[2u8; 15]).is_none());
        assert!(Rerr::decode(&[3, 1, 0, 0]).is_none());
    }

    proptest! {
        #[test]
        fn rreq_round_trips(
            dst in any::<u16>(), src in any::<u16>(), id in any::<u32>(),
            ds in proptest::option::of(any::<u32>()), ss in any::<u32>(),
            hc in any::<u8>(), ttl in any::<u8>(), d in any::<bool>(),
        ) {
            let m = Rreq {
                dst: NodeId(dst), dst_seq: ds, rreqid: id, src: NodeId(src),
                src_seq: ss, hop_count: hc, ttl, dest_only: d,
            };
            prop_assert_eq!(Rreq::decode(&m.encode()), Some(m));
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..48)) {
            let _ = Rreq::decode(&bytes);
            let _ = Rrep::decode(&bytes);
            let _ = Rerr::decode(&bytes);
        }
    }
}
