//! The DSR route cache (path cache).
//!
//! Stores complete paths from this node to destinations. Draft-03-style
//! caches have no timeout — stale routes linger until a route error
//! removes the broken link, which is a major contributor to DSR's poor
//! delivery under mobility (§4 of the paper). A draft-07-flavoured
//! expiry is available via [`RouteCache::new`]'s `timeout`.

use manet_sim::packet::NodeId;
use manet_sim::time::{SimDuration, SimTime};

/// One cached path (this node excluded; `path[0]` is the first hop and
/// `path.last()` the destination).
#[derive(Clone, Debug, PartialEq, Eq)]
struct CachedPath {
    path: Vec<NodeId>,
    added: SimTime,
}

/// A bounded path cache.
#[derive(Clone, Debug)]
pub struct RouteCache {
    owner: NodeId,
    paths: Vec<CachedPath>,
    cap: usize,
    timeout: Option<SimDuration>,
}

impl RouteCache {
    /// A cache for `owner` holding at most `cap` paths; `timeout` of
    /// `None` reproduces draft-03 behaviour (entries never expire).
    pub fn new(owner: NodeId, cap: usize, timeout: Option<SimDuration>) -> Self {
        RouteCache { owner, paths: Vec::new(), cap, timeout }
    }

    fn alive(&self, p: &CachedPath, now: SimTime) -> bool {
        match self.timeout {
            Some(t) => now < p.added + t,
            None => true,
        }
    }

    /// Inserts a path from this node (`path[0]` = first hop, last =
    /// destination). Rejects paths containing the owner or duplicate
    /// nodes (source routes must be loop-free by construction). Evicts
    /// the oldest entry when full. Returns whether the path was stored.
    pub fn insert(&mut self, path: &[NodeId], now: SimTime) -> bool {
        if path.is_empty() || path.contains(&self.owner) {
            return false;
        }
        // Duplicate-node check: paths are a handful of hops, so a
        // quadratic scan beats building a hash set (which allocated on
        // every insert — this is DSR's hottest helper).
        if path.iter().enumerate().any(|(i, n)| path[..i].contains(n)) {
            return false;
        }
        if let Some(existing) = self.paths.iter_mut().find(|p| p.path == path) {
            existing.added = now;
            return true;
        }
        if self.paths.len() >= self.cap {
            // Evict the oldest.
            if let Some((i, _)) = self.paths.iter().enumerate().min_by_key(|(_, p)| p.added) {
                self.paths.remove(i);
            }
        }
        self.paths.push(CachedPath { path: path.to_vec(), added: now });
        true
    }

    /// The shortest live cached path to `dst`, if any.
    pub fn lookup(&self, dst: NodeId, now: SimTime) -> Option<Vec<NodeId>> {
        self.paths
            .iter()
            .filter(|p| self.alive(p, now))
            .filter(|p| p.path.last() == Some(&dst))
            .min_by_key(|p| p.path.len())
            .map(|p| p.path.clone())
    }

    /// A live cached path to `dst` that avoids the directed link
    /// `from → to` (for salvaging).
    pub fn lookup_avoiding(
        &self,
        dst: NodeId,
        from: NodeId,
        to: NodeId,
        now: SimTime,
    ) -> Option<Vec<NodeId>> {
        self.paths
            .iter()
            .filter(|p| self.alive(p, now))
            .filter(|p| p.path.last() == Some(&dst))
            .filter(|p| !contains_link(self.owner, &p.path, from, to))
            .min_by_key(|p| p.path.len())
            .map(|p| p.path.clone())
    }

    /// Removes every path using the directed link `from → to`.
    /// Returns how many paths were dropped.
    pub fn remove_link(&mut self, from: NodeId, to: NodeId) -> usize {
        let owner = self.owner;
        let before = self.paths.len();
        self.paths.retain(|p| !contains_link(owner, &p.path, from, to));
        before - self.paths.len()
    }

    /// Removes every path ending at `dest` (the model checker's
    /// cache-timeout transition). Returns how many paths were dropped.
    pub fn remove_dest(&mut self, dest: NodeId) -> usize {
        let before = self.paths.len();
        self.paths.retain(|p| p.path.last() != Some(&dest));
        before - self.paths.len()
    }

    /// Every cached entry as `(path, added)`, sorted by path — the
    /// canonical order for state digests and verification dumps.
    pub(crate) fn entries_sorted(&self) -> Vec<(&[NodeId], SimTime)> {
        let mut v: Vec<(&[NodeId], SimTime)> =
            self.paths.iter().map(|p| (p.path.as_slice(), p.added)).collect();
        v.sort_unstable();
        v
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of cached paths still alive at `now` (all of them under
    /// draft-03's no-timeout behaviour).
    pub fn live_paths(&self, now: SimTime) -> usize {
        self.paths.iter().filter(|p| self.alive(p, now)).count()
    }
}

/// Whether the path (owned by `owner`, implicitly prefixed with it)
/// traverses the directed link `from → to`.
fn contains_link(owner: NodeId, path: &[NodeId], from: NodeId, to: NodeId) -> bool {
    if owner == from && path.first() == Some(&to) {
        return true;
    }
    path.windows(2).any(|w| w[0] == from && w[1] == to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_and_lookup_shortest() {
        let mut c = RouteCache::new(NodeId(0), 10, None);
        assert!(c.insert(&ids(&[1, 2, 9]), t(0)));
        assert!(c.insert(&ids(&[3, 9]), t(1)));
        assert_eq!(c.lookup(NodeId(9), t(2)), Some(ids(&[3, 9])));
        assert_eq!(c.lookup(NodeId(7), t(2)), None);
    }

    #[test]
    fn rejects_loops_and_self() {
        let mut c = RouteCache::new(NodeId(0), 10, None);
        assert!(!c.insert(&ids(&[1, 2, 1, 9]), t(0)), "duplicate node");
        assert!(!c.insert(&ids(&[1, 0, 9]), t(0)), "contains owner");
        assert!(!c.insert(&[], t(0)));
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_at_capacity_removes_oldest() {
        let mut c = RouteCache::new(NodeId(0), 2, None);
        c.insert(&ids(&[1, 8]), t(0));
        c.insert(&ids(&[2, 9]), t(1));
        c.insert(&ids(&[3, 7]), t(2)); // evicts the t(0) entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(NodeId(8), t(3)), None);
        assert!(c.lookup(NodeId(9), t(3)).is_some());
    }

    #[test]
    fn remove_link_drops_affected_paths() {
        let mut c = RouteCache::new(NodeId(0), 10, None);
        c.insert(&ids(&[1, 2, 9]), t(0));
        c.insert(&ids(&[3, 4, 9]), t(0));
        assert_eq!(c.remove_link(NodeId(1), NodeId(2)), 1);
        assert_eq!(c.lookup(NodeId(9), t(1)), Some(ids(&[3, 4, 9])));
        // First-hop links count too (owner -> 3).
        assert_eq!(c.remove_link(NodeId(0), NodeId(3)), 1);
        assert_eq!(c.lookup(NodeId(9), t(1)), None);
    }

    #[test]
    fn lookup_avoiding_skips_broken_link() {
        let mut c = RouteCache::new(NodeId(0), 10, None);
        c.insert(&ids(&[1, 2, 9]), t(0));
        c.insert(&ids(&[3, 4, 9]), t(0));
        let got = c.lookup_avoiding(NodeId(9), NodeId(1), NodeId(2), t(1));
        assert_eq!(got, Some(ids(&[3, 4, 9])));
        let none = c.lookup_avoiding(NodeId(9), NodeId(0), NodeId(1), t(1));
        assert_eq!(none, Some(ids(&[3, 4, 9])), "only the broken first hop is avoided");
    }

    #[test]
    fn draft7_timeout_expires_entries() {
        let mut c = RouteCache::new(NodeId(0), 10, Some(SimDuration::from_secs(5)));
        c.insert(&ids(&[1, 9]), t(0));
        assert!(c.lookup(NodeId(9), t(4)).is_some());
        assert_eq!(c.lookup(NodeId(9), t(5)), None, "expired");
        // Draft-03: never expires.
        let mut c3 = RouteCache::new(NodeId(0), 10, None);
        c3.insert(&ids(&[1, 9]), t(0));
        assert!(c3.lookup(NodeId(9), t(10_000)).is_some());
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut c = RouteCache::new(NodeId(0), 10, Some(SimDuration::from_secs(5)));
        c.insert(&ids(&[1, 9]), t(0));
        c.insert(&ids(&[1, 9]), t(4));
        assert!(c.lookup(NodeId(9), t(8)).is_some(), "refreshed at t=4");
        assert_eq!(c.len(), 1, "no duplicate entry");
    }
}
