//! DSR — Dynamic Source Routing (draft-ietf-manet-dsr-03 behaviour,
//! with a draft-07 flavour for the paper's Fig. 6 Qualnet cross-check).
//!
//! Every data packet carries its complete route in an extension header;
//! loop freedom is by construction (source routes never repeat a node).
//! Route discovery floods an RREQ that accumulates the traversed path;
//! any node holding a cached route to the destination may answer with
//! the concatenation. Route maintenance detects broken links hop-by-hop
//! and reports them to sources with RERRs; packets can be *salvaged*
//! onto alternate cached routes mid-path.
//!
//! The paper observes DSR's delivery collapsing under mobility and
//! load — stale route caches keep answering discoveries with dead
//! routes (draft-03 caches never expire). This implementation
//! reproduces that behaviour faithfully. Promiscuous-mode optimisations
//! (overhearing, automatic route shortening) are not modelled — the
//! simulator's MAC does not deliver frames promiscuously.

pub mod cache;
pub mod messages;

use cache::RouteCache;
use manet_sim::hash::FxBuild;
use manet_sim::packet::{ControlKind, ControlPacket, DataPacket, NodeId, Packet, PacketBody};
use manet_sim::protocol::{
    Ctx, DropReason, ProtoCounter, RouteDump, RouteTelemetry, RoutingProtocol,
};
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::trace::{InvalidateCause, InvariantSnapshot, TraceEvent};
use messages::{Rerr, Rrep, Rreq, SourceRoute};
use std::collections::{HashMap, VecDeque};

/// Deterministic fast-hashed map for protocol state (iterations over
/// these are order-insensitive: retain-only or sorted afterwards).
type FxMap<K, V> = HashMap<K, V, FxBuild>;

const CLEANUP_TOKEN: u64 = u64::MAX;
const CLEANUP_INTERVAL: SimDuration = SimDuration::from_secs(10);

fn discovery_token(dest: NodeId, generation: u64) -> u64 {
    (u64::from(dest.0) << 32) | (generation & 0xFFFF_FFFF)
}

/// DSR parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DsrConfig {
    /// Maximum cached paths.
    pub cache_cap: usize,
    /// Cache entry lifetime: `None` = draft-03 (never expires),
    /// `Some(300 s)` approximates draft-07's RouteCacheTimeout.
    pub cache_timeout: Option<SimDuration>,
    /// RREQ dedup-table entry lifetime.
    pub rreq_cache_ttl: SimDuration,
    /// Discovery attempts before giving up.
    pub max_attempts: u32,
    /// First retransmission timeout; doubles per attempt.
    pub backoff_base: SimDuration,
    /// First attempt is a non-propagating (TTL 1) neighbourhood query.
    pub non_propagating_first: bool,
    /// Flood TTL for propagating requests.
    pub flood_ttl: u8,
    /// Packets buffered per destination during discovery.
    pub buffer_cap: usize,
    /// Maximum times one packet may be salvaged.
    pub salvage_limit: u8,
}

impl Default for DsrConfig {
    fn default() -> Self {
        Self::draft3()
    }
}

impl DsrConfig {
    /// Draft-03 behaviour (the paper's GloMoSim runs).
    pub fn draft3() -> Self {
        DsrConfig {
            cache_cap: 64,
            cache_timeout: None,
            rreq_cache_ttl: SimDuration::from_secs(30),
            max_attempts: 6,
            backoff_base: SimDuration::from_millis(500),
            non_propagating_first: true,
            flood_ttl: 35,
            buffer_cap: 64,
            salvage_limit: 4,
        }
    }

    /// Draft-07 flavour (the paper's Qualnet cross-check, Fig. 6):
    /// cached routes expire, which slightly improves mobile delivery.
    pub fn draft7() -> Self {
        DsrConfig { cache_timeout: Some(SimDuration::from_secs(300)), ..Self::draft3() }
    }

    fn discovery_timeout(&self, attempt: u32) -> SimDuration {
        self.backoff_base.saturating_mul(1u64 << (attempt - 1).min(10))
    }
}

#[derive(Clone, Debug)]
struct Discovery {
    generation: u64,
    attempts: u32,
    queue: VecDeque<DataPacket>,
}

/// A DSR node.
#[derive(Clone)]
pub struct Dsr {
    id: NodeId,
    cfg: DsrConfig,
    cache: RouteCache,
    seen: FxMap<(NodeId, u32), SimTime>,
    pending: FxMap<NodeId, Discovery>,
    next_id: u32,
    next_generation: u64,
    clock: SimTime,
}

impl Dsr {
    /// A new node.
    pub fn new(id: NodeId, cfg: DsrConfig) -> Self {
        let cache = RouteCache::new(id, cfg.cache_cap, cfg.cache_timeout);
        Dsr {
            id,
            cfg,
            cache,
            // Pre-sized: one insert per RREQ flood received; retain
            // keeps capacity, so this removes all growth rehashes.
            seen: FxMap::with_capacity_and_hasher(256, Default::default()),
            pending: FxMap::default(),
            next_id: 0,
            next_generation: 0,
            clock: SimTime::ZERO,
        }
    }

    /// A factory closure for [`manet_sim::world::World::new`].
    pub fn factory(cfg: DsrConfig) -> impl FnMut(NodeId, usize) -> Box<dyn RoutingProtocol> {
        move |id, _| Box::new(Dsr::new(id, cfg.clone()))
    }

    /// The route cache (for tests and inspection).
    pub fn cache(&self) -> &RouteCache {
        &self.cache
    }

    /// Whether a discovery for `dest` is pending.
    pub fn is_discovering(&self, dest: NodeId) -> bool {
        self.pending.contains_key(&dest)
    }

    // ----- verification hooks ----------------------------------------------
    //
    // Counterparts of the `ldr::Ldr` hooks, used by `crates/modelcheck`
    // to drive DSR through the same exhaustive event interleavings.

    /// Forces every cached path towards `dest` to time out — the model
    /// checker's route-cache-timeout transition (the draft-07
    /// RouteCacheTimeout, collapsed to an instant). Returns whether any
    /// path existed to expire.
    pub fn force_expire(&mut self, dest: NodeId) -> bool {
        self.cache.remove_dest(dest) > 0
    }

    /// How many discovery attempts reach a destination `dist` hops
    /// away: two when the first attempt is a non-propagating (TTL 1)
    /// neighbourhood query that cannot get there, one otherwise —
    /// `None` if the attempt budget forbids the propagating retry.
    /// Used by the model checker's liveness executor.
    pub fn discovery_attempts_for(&self, dist: u32) -> Option<u32> {
        if self.cfg.non_propagating_first && dist > 1 {
            (self.cfg.max_attempts >= 2).then_some(2)
        } else {
            Some(1)
        }
    }

    /// Route-cache snapshot in the route-table dump shape the model
    /// checker consumes: one row per destination (the shortest cached
    /// path), `d = fd =` hop count, no sequence number. The simulator's
    /// own `route_table_dump` stays empty — DSR keeps no next-hop table
    /// and its loop freedom is per packet — so this view exists only
    /// for verification.
    pub fn verification_route_dump(&self) -> Vec<RouteDump> {
        let now = self.clock;
        let mut rows: Vec<RouteDump> = Vec::new();
        for (path, _) in self.cache.entries_sorted() {
            let (Some(&next), Some(&dest)) = (path.first(), path.last()) else { continue };
            let hops = path.len() as u32;
            match rows.iter_mut().find(|r| r.dest == dest) {
                Some(row) => {
                    if hops < row.dist {
                        row.next = next;
                        row.dist = hops;
                    }
                }
                None => rows.push(RouteDump {
                    dest,
                    next,
                    dist: hops,
                    feasible_dist: None,
                    seqno: None,
                    valid: self.cache.lookup(dest, now).is_some(),
                }),
            }
        }
        rows.sort_unstable_by_key(|r| r.dest.0);
        rows
    }

    /// Appends a canonical byte encoding of the complete protocol state
    /// to `out` (sorted iteration everywhere; see
    /// `ldr::Ldr::verification_digest` for the contract).
    pub fn verification_digest(&self, out: &mut Vec<u8>) {
        fn push_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.next_id.to_le_bytes());
        push_u64(out, self.next_generation);
        push_u64(out, self.clock.as_nanos());
        let entries = self.cache.entries_sorted();
        push_u64(out, entries.len() as u64);
        for (path, added) in entries {
            push_u64(out, path.len() as u64);
            for n in path {
                out.extend_from_slice(&n.0.to_le_bytes());
            }
            push_u64(out, added.as_nanos());
        }
        let mut seen: Vec<(&(NodeId, u32), &SimTime)> = self.seen.iter().collect();
        seen.sort_unstable_by_key(|((origin, id), _)| (origin.0, *id));
        push_u64(out, seen.len() as u64);
        for ((origin, id), exp) in seen {
            out.extend_from_slice(&origin.0.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            push_u64(out, exp.as_nanos());
        }
        let mut pending: Vec<(&NodeId, &Discovery)> = self.pending.iter().collect();
        pending.sort_unstable_by_key(|(d, _)| d.0);
        push_u64(out, pending.len() as u64);
        for (dest, disc) in pending {
            out.extend_from_slice(&dest.0.to_le_bytes());
            push_u64(out, disc.generation);
            out.extend_from_slice(&disc.attempts.to_le_bytes());
            push_u64(out, disc.queue.len() as u64);
            for p in &disc.queue {
                out.extend_from_slice(&p.src.0.to_le_bytes());
                out.extend_from_slice(&p.dst.0.to_le_bytes());
                out.extend_from_slice(&p.flow.to_le_bytes());
                out.extend_from_slice(&p.seq.to_le_bytes());
                out.push(p.ttl);
            }
        }
    }

    fn send_with_route(&mut self, ctx: &mut Ctx, mut data: DataPacket, cached: Vec<NodeId>) {
        let mut path = Vec::with_capacity(cached.len() + 1);
        path.push(self.id);
        path.extend_from_slice(&cached);
        let sr = SourceRoute { path, idx: 1, salvage: 0 };
        let next = cached[0];
        data.ext = sr.encode();
        ctx.send_data(next, data);
    }

    fn queue_and_discover(&mut self, ctx: &mut Ctx, data: DataPacket) {
        let dest = data.dst;
        match self.pending.get_mut(&dest) {
            Some(d) => {
                if d.queue.len() >= self.cfg.buffer_cap {
                    ctx.drop_data(data, DropReason::BufferOverflow);
                } else {
                    d.queue.push_back(data);
                }
            }
            None => {
                let generation = self.next_generation;
                self.next_generation += 1;
                let mut queue = VecDeque::new();
                queue.push_back(data);
                self.pending.insert(dest, Discovery { generation, attempts: 1, queue });
                ctx.count(ProtoCounter::DiscoveryStarted);
                self.send_rreq(ctx, dest, 1, generation);
            }
        }
    }

    fn send_rreq(&mut self, ctx: &mut Ctx, dest: NodeId, attempt: u32, generation: u64) {
        let ttl =
            if attempt == 1 && self.cfg.non_propagating_first { 1 } else { self.cfg.flood_ttl };
        let id = self.next_id;
        self.next_id += 1;
        let rreq = Rreq { src: self.id, dst: dest, id, ttl, route: vec![] };
        ctx.broadcast(ControlKind::Rreq, rreq.encode(), true);
        ctx.set_timer(self.cfg.discovery_timeout(attempt), discovery_token(dest, generation));
    }

    fn finish_success(&mut self, ctx: &mut Ctx, dest: NodeId) {
        let Some(mut d) = self.pending.remove(&dest) else { return };
        ctx.count(ProtoCounter::DiscoverySucceeded);
        let now = ctx.now();
        while let Some(p) = d.queue.pop_front() {
            match self.cache.lookup(dest, now) {
                Some(cached) => self.send_with_route(ctx, p, cached),
                None => ctx.drop_data(p, DropReason::NoRoute),
            }
        }
    }

    // ----- cache mutation (traced) ---------------------------------------------

    /// Inserts a path into the route cache, emitting a
    /// [`TraceEvent::RouteInstall`] when a path is actually stored. DSR
    /// has no `(sn, d, fd)` triple, so the snapshot scalarises the
    /// path: `d = fd =` hop count, no sequence number.
    fn cache_insert(&mut self, ctx: &mut Ctx, path: &[NodeId], now: SimTime) {
        if !self.cache.insert(path, now) {
            return;
        }
        let (Some(&next), Some(&dest)) = (path.first(), path.last()) else { return };
        let hops = path.len() as u32;
        let node = self.id;
        ctx.trace(|| TraceEvent::RouteInstall {
            node,
            dest,
            next,
            before: None,
            after: InvariantSnapshot { sn: None, d: hops, fd: hops },
        });
    }

    /// Removes every cached path over `from → to`, emitting one
    /// [`TraceEvent::RouteInvalidate`] (dest = the link's head, DSR's
    /// closest analogue of an invalidated table entry) when at least
    /// one path was actually dropped.
    fn cache_remove_link(
        &mut self,
        ctx: &mut Ctx,
        from: NodeId,
        to: NodeId,
        cause: InvalidateCause,
    ) {
        if self.cache.remove_link(from, to) == 0 {
            return;
        }
        let node = self.id;
        ctx.trace(|| TraceEvent::RouteInvalidate { node, dest: to, seqno: None, cause });
    }

    // ----- control ------------------------------------------------------------

    fn handle_rreq(&mut self, ctx: &mut Ctx, _prev: NodeId, m: Rreq) {
        if m.src == self.id || m.route.contains(&self.id) {
            return;
        }
        let now = ctx.now();
        // Learn the reverse path to the originator.
        let mut back: Vec<NodeId> = m.route.iter().rev().copied().collect();
        back.push(m.src);
        self.cache_insert(ctx, &back, now);

        let key = (m.src, m.id);
        if self.seen.get(&key).is_some_and(|&e| e > now) {
            return;
        }
        self.seen.insert(key, now + self.cfg.rreq_cache_ttl);

        if m.dst == self.id {
            // Target reply: the accumulated record is the route. The
            // reply's idx always addresses the node it is sent to.
            let mut path = Vec::with_capacity(m.route.len() + 2);
            path.push(m.src);
            path.extend_from_slice(&m.route);
            path.push(self.id);
            let idx = (path.len() - 2) as u8;
            let back_hop = path[path.len() - 2];
            let rrep = Rrep { orig: m.src, id: m.id, path, idx };
            ctx.unicast_control(back_hop, ControlKind::Rrep, rrep.encode(), true, true);
            return;
        }

        // Cache reply: concatenate the record with a cached route,
        // provided the splice repeats no node.
        if let Some(cached) = self.cache.lookup(m.dst, now) {
            let mut path = Vec::with_capacity(m.route.len() + cached.len() + 2);
            path.push(m.src);
            path.extend_from_slice(&m.route);
            path.push(self.id);
            path.extend_from_slice(&cached);
            let mut uniq = std::collections::HashSet::new();
            if path.iter().all(|n| uniq.insert(*n)) {
                // This node sits at position route.len() + 1; the reply
                // goes to the previous hop, whose position is idx.
                let idx = m.route.len() as u8;
                let back_hop = path[idx as usize];
                let rrep = Rrep { orig: m.src, id: m.id, path, idx };
                ctx.unicast_control(back_hop, ControlKind::Rrep, rrep.encode(), true, true);
                return;
            }
        }

        if m.ttl <= 1 {
            return;
        }
        let mut route = m.route.clone();
        route.push(self.id);
        let fwd = Rreq { route, ttl: m.ttl - 1, ..m };
        ctx.broadcast(ControlKind::Rreq, fwd.encode(), false);
    }

    fn handle_rrep(&mut self, ctx: &mut Ctx, _prev: NodeId, m: Rrep) {
        let now = ctx.now();
        let idx = m.idx as usize;
        if m.path.get(idx) != Some(&self.id) {
            return;
        }
        // Learn both directions.
        if idx + 1 < m.path.len() {
            let fwd: Vec<NodeId> = m.path[idx + 1..].to_vec();
            self.cache_insert(ctx, &fwd, now);
        }
        if idx > 0 {
            let back: Vec<NodeId> = m.path[..idx].iter().rev().copied().collect();
            self.cache_insert(ctx, &back, now);
        }
        ctx.count(ProtoCounter::RrepUsableRecv);
        if idx == 0 {
            // We are the originator.
            if let Some(&dst) = m.path.last() {
                if self.pending.contains_key(&dst) {
                    self.finish_success(ctx, dst);
                }
            }
            return;
        }
        let fwd = Rrep { idx: (idx - 1) as u8, ..m.clone() };
        ctx.unicast_control(m.path[idx - 1], ControlKind::Rrep, fwd.encode(), false, true);
    }

    fn handle_rerr(&mut self, ctx: &mut Ctx, _prev: NodeId, m: Rerr) {
        self.cache_remove_link(ctx, m.from, m.to, InvalidateCause::RouteError);
        if m.target == self.id || m.path.is_empty() {
            return;
        }
        let next = m.path[0];
        let fwd = Rerr { path: m.path[1..].to_vec(), ..m };
        ctx.unicast_control(next, ControlKind::Rerr, fwd.encode(), false, false);
    }
}

impl RoutingProtocol for Dsr {
    fn name(&self) -> &'static str {
        "DSR"
    }

    fn start(&mut self, ctx: &mut Ctx) {
        self.clock = ctx.now();
        ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
    }

    fn handle_reboot(&mut self, ctx: &mut Ctx) {
        // Everything DSR knows is soft state: the route cache, RREQ
        // dedup set and pending discoveries vanish with the power.
        self.cache = RouteCache::new(self.id, self.cfg.cache_cap, self.cfg.cache_timeout);
        self.seen.clear();
        self.pending.clear();
        self.next_id = 0;
        self.next_generation = 0;
        self.start(ctx);
    }

    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.clock = ctx.now();
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        match self.cache.lookup(data.dst, ctx.now()) {
            Some(cached) => self.send_with_route(ctx, data, cached),
            None => self.queue_and_discover(ctx, data),
        }
    }

    fn handle_data_packet(&mut self, ctx: &mut Ctx, _prev_hop: NodeId, mut data: DataPacket) {
        self.clock = ctx.now();
        let now = ctx.now();
        let Some(sr) = SourceRoute::decode(&data.ext) else {
            ctx.drop_data(data, DropReason::BrokenSourceRoute);
            return;
        };
        let idx = sr.idx as usize;
        if sr.path.get(idx) != Some(&self.id) {
            ctx.drop_data(data, DropReason::BrokenSourceRoute);
            return;
        }
        // Learn from the carried route.
        if idx + 1 < sr.path.len() {
            let fwd: Vec<NodeId> = sr.path[idx + 1..].to_vec();
            self.cache_insert(ctx, &fwd, now);
        }
        if idx > 0 {
            let back: Vec<NodeId> = sr.path[..idx].iter().rev().copied().collect();
            self.cache_insert(ctx, &back, now);
        }
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        if data.ttl == 0 {
            ctx.drop_data(data, DropReason::TtlExpired);
            return;
        }
        data.ttl -= 1;
        let Some(next) = sr.next_hop() else {
            ctx.drop_data(data, DropReason::BrokenSourceRoute);
            return;
        };
        let fwd = SourceRoute { idx: sr.idx + 1, ..sr };
        data.ext = fwd.encode();
        ctx.send_data(next, data);
    }

    fn handle_control(
        &mut self,
        ctx: &mut Ctx,
        prev_hop: NodeId,
        ctrl: ControlPacket,
        _was_broadcast: bool,
    ) {
        self.clock = ctx.now();
        match ctrl.kind {
            ControlKind::Rreq => match Rreq::decode(&ctrl.bytes) {
                Some(m) => self.handle_rreq(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rreq),
            },
            ControlKind::Rrep => match Rrep::decode(&ctrl.bytes) {
                Some(m) => self.handle_rrep(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rrep),
            },
            ControlKind::Rerr => match Rerr::decode(&ctrl.bytes) {
                Some(m) => self.handle_rerr(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rerr),
            },
            _ => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.clock = ctx.now();
        if token == CLEANUP_TOKEN {
            let now = ctx.now();
            self.seen.retain(|_, &mut e| e > now);
            ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
            return;
        }
        let dest = NodeId((token >> 32) as u16);
        let gen32 = token & 0xFFFF_FFFF;
        let Some(d) = self.pending.get(&dest) else { return };
        if (d.generation & 0xFFFF_FFFF) != gen32 {
            return;
        }
        if self.cache.lookup(dest, ctx.now()).is_some() {
            self.finish_success(ctx, dest);
            return;
        }
        let attempts = d.attempts + 1;
        let generation = d.generation;
        if attempts > self.cfg.max_attempts {
            if let Some(d) = self.pending.remove(&dest) {
                for p in d.queue {
                    ctx.drop_data(p, DropReason::NoRoute);
                }
                ctx.count(ProtoCounter::DiscoveryFailed);
            }
        } else {
            if let Some(d) = self.pending.get_mut(&dest) {
                d.attempts = attempts;
            }
            self.send_rreq(ctx, dest, attempts, generation);
        }
    }

    fn handle_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.clock = ctx.now();
        let now = ctx.now();
        self.cache_remove_link(ctx, self.id, next_hop, InvalidateCause::LinkFailure);
        let PacketBody::Data(mut data) = packet.body else { return };
        let Some(sr) = SourceRoute::decode(&data.ext) else {
            ctx.drop_data(data, DropReason::BrokenSourceRoute);
            return;
        };
        // Report the broken link to the packet's source.
        let holder = (sr.idx as usize).saturating_sub(1).min(sr.path.len().saturating_sub(1));
        if let Some(&target) = sr.path.first() {
            if target != self.id && holder > 0 {
                let mut back: Vec<NodeId> = sr.path[..holder].iter().rev().copied().collect();
                let first = back.remove(0);
                let rerr = Rerr { from: self.id, to: next_hop, target, path: back };
                ctx.unicast_control(first, ControlKind::Rerr, rerr.encode(), true, false);
            }
        }
        // Salvage onto an alternate cached route, or drop / re-discover.
        if data.src == self.id {
            data.ext.clear();
            self.handle_data_origination(ctx, data);
            return;
        }
        if sr.salvage < self.cfg.salvage_limit {
            if let Some(alt) = self.cache.lookup_avoiding(data.dst, self.id, next_hop, now) {
                let mut path = Vec::with_capacity(alt.len() + 1);
                path.push(self.id);
                path.extend_from_slice(&alt);
                let next = alt[0];
                let new_sr = SourceRoute { path, idx: 1, salvage: sr.salvage + 1 };
                data.ext = new_sr.encode();
                ctx.count(ProtoCounter::Salvage);
                ctx.send_data(next, data);
                return;
            }
        }
        ctx.drop_data(data, DropReason::BrokenSourceRoute);
    }

    fn route_successors(&self) -> Vec<(NodeId, NodeId)> {
        // DSR keeps no next-hop table; loop freedom is per packet
        // (source routes never repeat a node), so the successor-graph
        // auditor does not apply.
        Vec::new()
    }

    fn route_table_dump(&self) -> Vec<RouteDump> {
        Vec::new()
    }

    fn telemetry_snapshot(&self) -> RouteTelemetry {
        // DSR's "table" is the path cache: entries = cached paths,
        // valid = paths still alive under the draft-07 timeout (all of
        // them under draft-03's never-expiring caches).
        RouteTelemetry {
            entries: self.cache.len() as u64,
            valid: self.cache.live_paths(self.clock) as u64,
        }
    }
}

#[cfg(test)]
mod tests;
