//! DSR unit tests driving the state machine directly.

use super::*;
use manet_sim::protocol::Action;
use manet_sim::rng::SimRng;

struct Node {
    dsr: Dsr,
    rng: SimRng,
    now: SimTime,
}

impl Node {
    fn new(id: u16) -> Self {
        Node {
            dsr: Dsr::new(NodeId(id), DsrConfig::draft3()),
            rng: SimRng::from_seed(u64::from(id)),
            now: SimTime::from_secs(1),
        }
    }

    fn call<F: FnOnce(&mut Dsr, &mut Ctx)>(&mut self, f: F) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(self.now, self.dsr.id, 50, &mut self.rng, &mut actions);
        f(&mut self.dsr, &mut ctx);
        actions
    }
}

fn ids(v: &[u16]) -> Vec<NodeId> {
    v.iter().map(|&i| NodeId(i)).collect()
}

fn data(src: u16, dst: u16) -> DataPacket {
    DataPacket {
        src: NodeId(src),
        dst: NodeId(dst),
        flow: 1,
        seq: 0,
        created: SimTime::from_secs(1),
        payload_len: 512,
        ttl: 64,
        ext: vec![],
    }
}

fn sent_data(actions: &[Action]) -> Vec<(NodeId, DataPacket)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::SendData { next, data } => Some((*next, data.clone())),
            _ => None,
        })
        .collect()
}

fn sent_rreps(actions: &[Action]) -> Vec<(Rrep, NodeId)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::UnicastControl { next, ctrl, .. } if ctrl.kind == ControlKind::Rrep => {
                Rrep::decode(&ctrl.bytes).map(|m| (m, *next))
            }
            _ => None,
        })
        .collect()
}

fn sent_rreqs(actions: &[Action]) -> Vec<Rreq> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast { ctrl, .. } if ctrl.kind == ControlKind::Rreq => {
                Rreq::decode(&ctrl.bytes)
            }
            _ => None,
        })
        .collect()
}

#[test]
fn origination_with_cached_route_attaches_source_route() {
    let mut n = Node::new(0);
    n.dsr.cache.insert(&ids(&[2, 5, 9]), n.now);
    let acts = n.call(|d, ctx| d.handle_data_origination(ctx, data(0, 9)));
    let sent = sent_data(&acts);
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].0, NodeId(2));
    let sr = SourceRoute::decode(&sent[0].1.ext).unwrap();
    assert_eq!(sr.path, ids(&[0, 2, 5, 9]));
    assert_eq!(sr.idx, 1, "idx points at the receiver");
}

#[test]
fn origination_without_route_floods_nonpropagating_first() {
    let mut n = Node::new(0);
    let acts = n.call(|d, ctx| d.handle_data_origination(ctx, data(0, 9)));
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert_eq!(rreqs[0].ttl, 1, "first attempt queries neighbours only");
    assert!(n.dsr.is_discovering(NodeId(9)));
    // Retry propagates network-wide.
    let acts = n.call(|d, ctx| d.handle_timer(ctx, discovery_token(NodeId(9), 0)));
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs[0].ttl, 35);
}

#[test]
fn target_replies_with_accumulated_route() {
    let mut n = Node::new(9);
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: ids(&[2, 5]) };
    let acts = n.call(|d, ctx| d.handle_rreq(ctx, NodeId(5), m));
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps.len(), 1);
    let (r, to) = &rreps[0];
    assert_eq!(r.path, ids(&[0, 2, 5, 9]));
    assert_eq!(r.idx, 2, "idx addresses the receiver");
    assert_eq!(*to, NodeId(5), "travels backwards along the route");
}

#[test]
fn cached_route_produces_spliced_reply() {
    let mut n = Node::new(5);
    n.dsr.cache.insert(&ids(&[6, 9]), n.now);
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: ids(&[2]) };
    let acts = n.call(|d, ctx| d.handle_rreq(ctx, NodeId(2), m));
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps.len(), 1);
    assert_eq!(rreps[0].0.path, ids(&[0, 2, 5, 6, 9]));
    assert_eq!(rreps[0].0.idx, 1, "addressed to node 2 at position 1");
    assert!(sent_rreqs(&acts).is_empty(), "cache reply suppresses the flood");
}

#[test]
fn splice_with_duplicate_node_falls_through_to_relay() {
    let mut n = Node::new(5);
    // Cached route goes back through 2, which is already on the record.
    n.dsr.cache.insert(&ids(&[2, 9]), n.now);
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: ids(&[2]) };
    let acts = n.call(|d, ctx| d.handle_rreq(ctx, NodeId(2), m));
    assert!(sent_rreps(&acts).is_empty(), "looping splice is forbidden");
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert_eq!(rreqs[0].route, ids(&[2, 5]));
}

#[test]
fn duplicate_rreq_suppressed_and_own_rreq_ignored() {
    let mut n = Node::new(5);
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: vec![] };
    assert_eq!(sent_rreqs(&n.call(|d, ctx| d.handle_rreq(ctx, NodeId(0), m.clone()))).len(), 1);
    assert!(n.call(|d, ctx| d.handle_rreq(ctx, NodeId(0), m)).is_empty());
    let own = Rreq { src: NodeId(5), dst: NodeId(9), id: 1, ttl: 5, route: vec![] };
    assert!(n.call(|d, ctx| d.handle_rreq(ctx, NodeId(2), own)).is_empty());
}

#[test]
fn rreq_with_self_in_record_ignored() {
    let mut n = Node::new(5);
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: ids(&[5, 3]) };
    assert!(n.call(|d, ctx| d.handle_rreq(ctx, NodeId(3), m)).is_empty());
}

#[test]
fn rrep_relay_moves_backwards_and_learns_routes() {
    let mut n = Node::new(2);
    let m = Rrep { orig: NodeId(0), id: 7, path: ids(&[0, 2, 5, 9]), idx: 1 };
    let acts = n.call(|d, ctx| d.handle_rrep(ctx, NodeId(5), m));
    let fwd = sent_rreps(&acts);
    assert_eq!(fwd.len(), 1);
    assert_eq!(fwd[0].1, NodeId(0));
    assert_eq!(fwd[0].0.idx, 0);
    assert_eq!(n.dsr.cache.lookup(NodeId(9), n.now), Some(ids(&[5, 9])));
    assert_eq!(n.dsr.cache.lookup(NodeId(0), n.now), Some(ids(&[0])));
}

#[test]
fn rrep_at_origin_flushes_buffered_packets() {
    let mut n = Node::new(0);
    n.call(|d, ctx| d.handle_data_origination(ctx, data(0, 9)));
    n.call(|d, ctx| d.handle_data_origination(ctx, data(0, 9)));
    let m = Rrep { orig: NodeId(0), id: 0, path: ids(&[0, 2, 9]), idx: 0 };
    let acts = n.call(|d, ctx| d.handle_rrep(ctx, NodeId(2), m));
    let sent = sent_data(&acts);
    assert_eq!(sent.len(), 2);
    assert!(!n.dsr.is_discovering(NodeId(9)));
}

#[test]
fn forwarding_follows_the_source_route() {
    let mut n = Node::new(5);
    let sr = SourceRoute { path: ids(&[0, 2, 5, 9]), idx: 2, salvage: 0 };
    let mut d = data(0, 9);
    d.ext = sr.encode();
    let acts = n.call(|p, ctx| p.handle_data_packet(ctx, NodeId(2), d));
    let sent = sent_data(&acts);
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].0, NodeId(9));
    let fwd = SourceRoute::decode(&sent[0].1.ext).unwrap();
    assert_eq!(fwd.idx, 3);
}

#[test]
fn delivery_at_destination_and_malformed_headers() {
    let mut n = Node::new(9);
    let sr = SourceRoute { path: ids(&[0, 2, 9]), idx: 2, salvage: 0 };
    let mut d = data(0, 9);
    d.ext = sr.encode();
    let acts = n.call(|p, ctx| p.handle_data_packet(ctx, NodeId(2), d));
    assert!(acts.iter().any(|a| matches!(a, Action::Deliver { .. })));
    // Garbage extension: dropped.
    let mut bad = data(0, 9);
    bad.ext = vec![9, 9, 9];
    let acts = n.call(|p, ctx| p.handle_data_packet(ctx, NodeId(2), bad));
    assert!(acts
        .iter()
        .any(|a| matches!(a, Action::DropData { reason: DropReason::BrokenSourceRoute, .. })));
}

#[test]
fn link_failure_salvages_onto_alternate_route() {
    let mut n = Node::new(5);
    n.dsr.cache.insert(&ids(&[6, 9]), n.now); // alternate avoiding the broken hop
    let sr = SourceRoute { path: ids(&[0, 2, 5, 7, 9]), idx: 3, salvage: 0 };
    let mut d = data(0, 9);
    d.ext = sr.encode();
    let p = Packet { uid: 1, origin: NodeId(5), body: PacketBody::Data(d) };
    let acts = n.call(|x, ctx| x.handle_unicast_failure(ctx, NodeId(7), p));
    let sent = sent_data(&acts);
    assert_eq!(sent.len(), 1, "salvaged");
    assert_eq!(sent[0].0, NodeId(6));
    let new_sr = SourceRoute::decode(&sent[0].1.ext).unwrap();
    assert_eq!(new_sr.path, ids(&[5, 6, 9]));
    assert_eq!(new_sr.salvage, 1);
    // And a RERR headed back to the source via node 2.
    let rerr = acts.iter().find_map(|a| match a {
        Action::UnicastControl { next, ctrl, .. } if ctrl.kind == ControlKind::Rerr => {
            Rerr::decode(&ctrl.bytes).map(|m| (m, *next))
        }
        _ => None,
    });
    let (m, to) = rerr.expect("RERR sent");
    assert_eq!(to, NodeId(2));
    assert_eq!((m.from, m.to, m.target), (NodeId(5), NodeId(7), NodeId(0)));
}

#[test]
fn link_failure_without_alternate_drops() {
    let mut n = Node::new(5);
    let sr = SourceRoute { path: ids(&[0, 2, 5, 7, 9]), idx: 3, salvage: 0 };
    let mut d = data(0, 9);
    d.ext = sr.encode();
    let p = Packet { uid: 1, origin: NodeId(5), body: PacketBody::Data(d) };
    let acts = n.call(|x, ctx| x.handle_unicast_failure(ctx, NodeId(7), p));
    assert!(acts
        .iter()
        .any(|a| matches!(a, Action::DropData { reason: DropReason::BrokenSourceRoute, .. })));
}

#[test]
fn source_failure_rediscoveres() {
    let mut n = Node::new(0);
    n.dsr.cache.insert(&ids(&[2, 9]), n.now);
    let sr = SourceRoute { path: ids(&[0, 2, 9]), idx: 1, salvage: 0 };
    let mut d = data(0, 9);
    d.ext = sr.encode();
    let p = Packet { uid: 1, origin: NodeId(0), body: PacketBody::Data(d) };
    let acts = n.call(|x, ctx| x.handle_unicast_failure(ctx, NodeId(2), p));
    // Link 0->2 removed; cached route gone; re-discovery begins.
    assert!(n.dsr.is_discovering(NodeId(9)));
    assert_eq!(sent_rreqs(&acts).len(), 1);
}

#[test]
fn rerr_removes_link_and_forwards_toward_target() {
    let mut n = Node::new(2);
    n.dsr.cache.insert(&ids(&[5, 7, 9]), n.now);
    let m = Rerr { from: NodeId(5), to: NodeId(7), target: NodeId(0), path: ids(&[0]) };
    let acts = n.call(|d, ctx| d.handle_rerr(ctx, NodeId(5), m));
    assert_eq!(n.dsr.cache.lookup(NodeId(9), n.now), None, "stale path purged");
    let fwd = acts.iter().find_map(|a| match a {
        Action::UnicastControl { next, ctrl, .. } if ctrl.kind == ControlKind::Rerr => {
            Rerr::decode(&ctrl.bytes).map(|m| (m, *next))
        }
        _ => None,
    });
    let (m, to) = fwd.expect("forwarded");
    assert_eq!(to, NodeId(0));
    assert!(m.path.is_empty());
}

#[test]
fn stale_cache_answers_discoveries_with_dead_routes() {
    // The failure mode the paper blames for DSR's poor delivery:
    // draft-03 caches never expire, so a long-dead route keeps being
    // offered in cache replies.
    let mut n = Node::new(5);
    n.dsr.cache.insert(&ids(&[6, 9]), SimTime::from_secs(1));
    n.now = SimTime::from_secs(800); // 13+ minutes later
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: ids(&[2]) };
    let acts = n.call(|d, ctx| d.handle_rreq(ctx, NodeId(2), m));
    assert_eq!(sent_rreps(&acts).len(), 1, "stale reply served");
    // Draft-07 flavour expires it.
    let mut n7 = Node::new(5);
    n7.dsr = Dsr::new(NodeId(5), DsrConfig::draft7());
    n7.dsr.cache.insert(&ids(&[6, 9]), SimTime::from_secs(1));
    n7.now = SimTime::from_secs(800);
    let m = Rreq { src: NodeId(0), dst: NodeId(9), id: 7, ttl: 5, route: ids(&[2]) };
    let acts = n7.call(|d, ctx| d.handle_rreq(ctx, NodeId(2), m));
    assert!(sent_rreps(&acts).is_empty(), "draft-07 cache expired");
}
