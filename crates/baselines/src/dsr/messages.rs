//! DSR control messages and the source-route header carried in data
//! packets (after draft-ietf-manet-dsr-03, which the paper's GloMoSim
//! runs used; the draft-07 differences live in [`super::DsrConfig`]).

use manet_sim::packet::NodeId;
use manet_sim::wire::{get_u16, get_u32, get_u8, push_node_list, read_node_list};

/// Route request with its accumulated route record (intermediate
/// relays only; the originator is in `src`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rreq {
    /// Originator.
    pub src: NodeId,
    /// Sought destination.
    pub dst: NodeId,
    /// Originator-unique flood identifier.
    pub id: u32,
    /// Remaining flood TTL.
    pub ttl: u8,
    /// Relays traversed so far.
    pub route: Vec<NodeId>,
}

/// Route reply carrying a complete source route `path[0] = orig`
/// through `path.last() = dst`, travelling backwards along it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rrep {
    /// The requester this reply answers.
    pub orig: NodeId,
    /// The request id being answered.
    pub id: u32,
    /// Full path, `orig` first, destination last.
    pub path: Vec<NodeId>,
    /// Index of the node currently holding the reply (moves toward 0).
    pub idx: u8,
}

/// Route error: link `from → to` is broken; travels back to `target`
/// (the source of the failed packet) along `path` (a reversed prefix
/// of the failed packet's source route).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rerr {
    /// The node that detected the break.
    pub from: NodeId,
    /// The unreachable next hop.
    pub to: NodeId,
    /// Where the error is headed.
    pub target: NodeId,
    /// Hops to traverse (current holder first).
    pub path: Vec<NodeId>,
}

/// The source-route header placed in a data packet's extension bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceRoute {
    /// Full path, source first, destination last.
    pub path: Vec<NodeId>,
    /// Index of the node currently holding the packet.
    pub idx: u8,
    /// Times this packet has been salvaged onto another route.
    pub salvage: u8,
}

impl Rreq {
    /// Encodes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![1u8, self.ttl];
        b.extend_from_slice(&self.src.0.to_be_bytes());
        b.extend_from_slice(&self.dst.0.to_be_bytes());
        b.extend_from_slice(&self.id.to_be_bytes());
        push_node_list(&mut b, &self.route);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 1 {
            return None;
        }
        let (route, end) = read_node_list(b, 10)?;
        if end != b.len() {
            return None;
        }
        Some(Rreq {
            src: NodeId(get_u16(b, 2)?),
            dst: NodeId(get_u16(b, 4)?),
            id: get_u32(b, 6)?,
            ttl: get_u8(b, 1)?,
            route,
        })
    }
}

impl Rrep {
    /// Encodes the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![2u8, self.idx];
        b.extend_from_slice(&self.orig.0.to_be_bytes());
        b.extend_from_slice(&self.id.to_be_bytes());
        push_node_list(&mut b, &self.path);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 2 {
            return None;
        }
        let (path, end) = read_node_list(b, 8)?;
        if end != b.len() {
            return None;
        }
        Some(Rrep { orig: NodeId(get_u16(b, 2)?), id: get_u32(b, 4)?, path, idx: get_u8(b, 1)? })
    }
}

impl Rerr {
    /// Encodes the error.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![3u8, 0];
        b.extend_from_slice(&self.from.0.to_be_bytes());
        b.extend_from_slice(&self.to.0.to_be_bytes());
        b.extend_from_slice(&self.target.0.to_be_bytes());
        push_node_list(&mut b, &self.path);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 3 {
            return None;
        }
        let (path, end) = read_node_list(b, 8)?;
        if end != b.len() {
            return None;
        }
        Some(Rerr {
            from: NodeId(get_u16(b, 2)?),
            to: NodeId(get_u16(b, 4)?),
            target: NodeId(get_u16(b, 6)?),
            path,
        })
    }
}

impl SourceRoute {
    /// Encodes into a data packet's extension bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![self.idx, self.salvage];
        push_node_list(&mut b, &self.path);
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        let (path, end) = read_node_list(b, 2)?;
        if end != b.len() {
            return None;
        }
        Some(SourceRoute { path, idx: get_u8(b, 0)?, salvage: get_u8(b, 1)? })
    }

    /// The next hop from the current holder, if any.
    pub fn next_hop(&self) -> Option<NodeId> {
        self.path.get(usize::from(self.idx).checked_add(1)?).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u16]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn rreq_round_trip() {
        let m = Rreq { src: NodeId(1), dst: NodeId(9), id: 77, ttl: 12, route: ids(&[2, 3, 4]) };
        assert_eq!(Rreq::decode(&m.encode()), Some(m.clone()));
        let empty = Rreq { route: vec![], ..m };
        assert_eq!(Rreq::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn rrep_round_trip() {
        let m = Rrep { orig: NodeId(1), id: 5, path: ids(&[1, 2, 3, 9]), idx: 2 };
        assert_eq!(Rrep::decode(&m.encode()), Some(m));
    }

    #[test]
    fn rerr_round_trip() {
        let m = Rerr { from: NodeId(3), to: NodeId(4), target: NodeId(1), path: ids(&[2, 1]) };
        assert_eq!(Rerr::decode(&m.encode()), Some(m));
    }

    #[test]
    fn source_route_round_trip_and_next_hop() {
        let sr = SourceRoute { path: ids(&[1, 2, 3, 9]), idx: 1, salvage: 2 };
        assert_eq!(SourceRoute::decode(&sr.encode()), Some(sr.clone()));
        assert_eq!(sr.next_hop(), Some(NodeId(3)));
        let at_end = SourceRoute { idx: 3, ..sr };
        assert_eq!(at_end.next_hop(), None);
    }

    #[test]
    fn malformed_rejected() {
        assert!(Rreq::decode(&[1, 2, 3]).is_none());
        assert!(Rreq::decode(&[1, 5, 0, 1, 0, 9, 0, 0, 0, 7, 9]).is_none(), "bad node count");
        assert!(SourceRoute::decode(&[0]).is_none());
    }

    proptest! {
        #[test]
        fn rreq_round_trips(
            src in any::<u16>(), dst in any::<u16>(), id in any::<u32>(),
            ttl in any::<u8>(), route in proptest::collection::vec(any::<u16>(), 0..30),
        ) {
            let m = Rreq { src: NodeId(src), dst: NodeId(dst), id, ttl, route: ids(&route) };
            prop_assert_eq!(Rreq::decode(&m.encode()), Some(m.clone()));
        }

        #[test]
        fn source_route_round_trips(
            path in proptest::collection::vec(any::<u16>(), 0..30),
            idx in any::<u8>(), salvage in any::<u8>(),
        ) {
            let sr = SourceRoute { path: ids(&path), idx, salvage };
            prop_assert_eq!(SourceRoute::decode(&sr.encode()), Some(sr.clone()));
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Rreq::decode(&bytes);
            let _ = Rrep::decode(&bytes);
            let _ = Rerr::decode(&bytes);
            let _ = SourceRoute::decode(&bytes);
        }
    }
}
