//! Destination-controlled sequence numbers (§3 of the paper).
//!
//! LDR's sequence number is "a destination-specific time stamp taken
//! from a node's real-time clock and an unsigned monotonically
//! increasing counter. When the counter reaches its maximum value, the
//! node places a new time stamp in its sequence number and resets the
//! counter to zero." Only the *owning destination* ever increments its
//! number — unlike AODV, where any node whose route breaks increments
//! its stored copy of the destination's number.
//!
//! The pair orders lexicographically: `(epoch, counter)`.

use std::fmt;

/// A destination sequence number: `(epoch, counter)`.
///
/// `epoch` models the boot-stable real-time-clock stamp; `counter` is
/// the monotonically increasing part. Comparison is lexicographic.
///
/// ```
/// use ldr::seqno::SeqNo;
/// let mut sn = SeqNo::initial();
/// let old = sn;
/// sn.increment();
/// assert!(sn > old);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo {
    /// Real-time-clock stamp (advances only on counter wrap or reboot).
    pub epoch: u32,
    /// Monotonically increasing counter.
    pub counter: u32,
}

impl SeqNo {
    /// The first sequence number a node uses after (simulated) boot.
    pub const fn initial() -> Self {
        SeqNo { epoch: 1, counter: 0 }
    }

    /// A sequence number for a later "reboot" — the fresh clock stamp
    /// dominates anything issued under earlier epochs, which is how the
    /// scheme avoids AODV's reboot-hold procedure.
    pub const fn after_reboot(epoch: u32) -> Self {
        SeqNo { epoch, counter: 0 }
    }

    /// Increments the number (owner-only operation). Wraps the counter
    /// into a new epoch when exhausted.
    pub fn increment(&mut self) {
        match self.counter.checked_add(1) {
            Some(c) => self.counter = c,
            None => {
                self.epoch += 1;
                self.counter = 0;
            }
        }
    }

    /// Packs into a `u64` for wire encoding.
    pub const fn to_u64(self) -> u64 {
        ((self.epoch as u64) << 32) | self.counter as u64
    }

    /// Unpacks from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        SeqNo { epoch: (v >> 32) as u32, counter: v as u32 }
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sn({},{})", self.epoch, self.counter)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.epoch, self.counter)
    }
}

/// Compares a known sequence number with a possibly-unknown one:
/// "no information" is weaker than any real number.
///
/// Returns `true` when `a` is strictly newer than `b`.
pub fn newer(a: Option<SeqNo>, b: Option<SeqNo>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x > y,
        (Some(_), None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_orders() {
        let mut a = SeqNo::initial();
        let b = a;
        a.increment();
        assert!(a > b);
        a.increment();
        assert_eq!(a.counter, 2);
    }

    #[test]
    fn counter_wrap_advances_epoch() {
        let mut s = SeqNo { epoch: 3, counter: u32::MAX };
        let before = s;
        s.increment();
        assert_eq!(s, SeqNo { epoch: 4, counter: 0 });
        assert!(s > before, "wrap must still move forward");
    }

    #[test]
    fn epoch_dominates_counter() {
        let old_epoch_huge_counter = SeqNo { epoch: 1, counter: u32::MAX };
        let new_epoch = SeqNo { epoch: 2, counter: 0 };
        assert!(new_epoch > old_epoch_huge_counter);
    }

    #[test]
    fn reboot_dominates_prior_history() {
        let mut pre = SeqNo::initial();
        for _ in 0..1000 {
            pre.increment();
        }
        let post = SeqNo::after_reboot(pre.epoch + 1);
        assert!(post > pre, "fresh clock stamp beats any old counter");
    }

    #[test]
    fn u64_round_trip() {
        let s = SeqNo { epoch: 0xDEAD_BEEF, counter: 0x1234_5678 };
        assert_eq!(SeqNo::from_u64(s.to_u64()), s);
        // Wire ordering matches semantic ordering.
        let t = SeqNo { epoch: 0xDEAD_BEF0, counter: 0 };
        assert!(t.to_u64() > s.to_u64());
    }

    #[test]
    fn newer_handles_unknowns() {
        let s = Some(SeqNo::initial());
        assert!(newer(s, None));
        assert!(!newer(None, s));
        assert!(!newer(None, None));
        assert!(!newer(s, s));
        let mut t = SeqNo::initial();
        t.increment();
        assert!(newer(Some(t), s));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SeqNo { epoch: 2, counter: 7 }), "2.7");
    }
}
