//! The LDR routing table and Procedure 3 ("set route").
//!
//! Each entry keeps, per destination: the destination sequence number,
//! the measured distance `d`, the feasible distance `fd` (the minimum
//! `d` ever attained under the current sequence number), the next hop,
//! validity and an expiry time. `sn` and `fd` are *history* — they
//! survive invalidation and expiry, because the loop-freedom invariant
//! depends on them even when no usable route exists.

use crate::invariants::{ndc_accepts, Distance, Invariants, INFINITY};
use crate::seqno::SeqNo;
use manet_sim::hash::FxBuild;
use manet_sim::packet::NodeId;
use manet_sim::time::SimTime;
use std::collections::HashMap;

/// One destination's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteEntry {
    /// Destination sequence number.
    pub seqno: SeqNo,
    /// Measured distance (hops).
    pub dist: Distance,
    /// Feasible distance: minimum `dist` under the current `seqno`.
    pub fd: Distance,
    /// Successor towards the destination.
    pub next_hop: NodeId,
    /// `false` once the route is revoked (link break, RERR).
    pub valid: bool,
    /// Soft-state expiry; the route is unusable after this instant.
    pub expires: SimTime,
}

impl RouteEntry {
    /// Whether the route can carry data right now.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.valid && now < self.expires
    }

    /// The `(sn, d, fd)` triple this entry contributes to the
    /// invariant conditions.
    pub fn invariants(&self) -> Invariants {
        Invariants { sn: Some(self.seqno), d: self.dist, fd: self.fd }
    }
}

/// What [`RouteTable::consider_advertisement`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvertOutcome {
    /// The advertisement was installed (new route or successor change).
    Installed,
    /// The advertisement refreshed the current successor (distance
    /// and/or lifetime updated; successor unchanged).
    Refreshed,
    /// Usable under NDC but not better than the active route; table
    /// unchanged except possibly `fd` bookkeeping.
    NotBetter,
    /// Rejected by NDC.
    Infeasible,
}

impl AdvertOutcome {
    /// Whether the advertisement was usable at this node under NDC
    /// (the paper's "RREP Recv" counts these).
    pub fn usable(self) -> bool {
        !matches!(self, AdvertOutcome::Infeasible)
    }
}

/// The routing table of one LDR node.
///
/// # Example
///
/// Procedure 3 keeps the feasible distance non-increasing for a fixed
/// sequence number, which is what makes successor changes loop-safe:
///
/// ```
/// use ldr::route_table::{AdvertOutcome, RouteTable};
/// use ldr::seqno::SeqNo;
/// use manet_sim::packet::NodeId;
/// use manet_sim::time::SimTime;
///
/// let mut rt = RouteTable::new();
/// let sn = SeqNo::initial();
/// let (now, exp) = (SimTime::from_secs(1), SimTime::from_secs(10));
/// rt.consider_advertisement(NodeId(9), sn, 4, NodeId(2), now, exp);
/// assert_eq!(rt.get(NodeId(9)).unwrap().fd, 5);
/// // A shorter advert from another neighbour is feasible (4 - 1 < 5):
/// let out = rt.consider_advertisement(NodeId(9), sn, 2, NodeId(3), now, exp);
/// assert_eq!(out, AdvertOutcome::Installed);
/// assert_eq!(rt.get(NodeId(9)).unwrap().fd, 3);
/// // An equal-distance advert is not (NDC): the table is unchanged.
/// let out = rt.consider_advertisement(NodeId(9), sn, 3, NodeId(4), now, exp);
/// assert_eq!(out, AdvertOutcome::Infeasible);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    /// Keyed by destination; every iteration is sorted before it can
    /// influence anything observable, so the deterministic fast hasher
    /// is sound here.
    entries: HashMap<NodeId, RouteEntry, FxBuild>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow an entry.
    pub fn get(&self, dest: NodeId) -> Option<&RouteEntry> {
        self.entries.get(&dest)
    }

    /// Mutably borrow an entry.
    pub fn get_mut(&mut self, dest: NodeId) -> Option<&mut RouteEntry> {
        self.entries.get_mut(&dest)
    }

    /// The invariants this node holds for `dest` (history included).
    pub fn invariants(&self, dest: NodeId) -> Invariants {
        self.get(dest).map_or(Invariants::NONE, |e| e.invariants())
    }

    /// The active entry for `dest`, if usable now.
    pub fn active(&self, dest: NodeId, now: SimTime) -> Option<&RouteEntry> {
        self.get(dest).filter(|e| e.is_active(now))
    }

    /// Processes an advertisement `(sn*, d*)` for `dest` from
    /// neighbour `via` (Procedure 3 guarded by NDC and the stable-path
    /// rule). `lifetime` is the fresh expiry to apply on success.
    ///
    /// Procedure 3: `sn ← sn*`, `d ← d* + 1`, and `fd ← d` when the
    /// sequence number increased, `fd ← min(fd, d)` when it stayed the
    /// same. The feasible distance is therefore non-increasing for a
    /// fixed sequence number.
    pub fn consider_advertisement(
        &mut self,
        dest: NodeId,
        adv_sn: SeqNo,
        adv_d: Distance,
        via: NodeId,
        now: SimTime,
        expires: SimTime,
    ) -> AdvertOutcome {
        let new_dist = adv_d.saturating_add(1);
        match self.entries.get_mut(&dest) {
            None => {
                self.entries.insert(
                    dest,
                    RouteEntry {
                        seqno: adv_sn,
                        dist: new_dist,
                        fd: new_dist,
                        next_hop: via,
                        valid: true,
                        expires,
                    },
                );
                AdvertOutcome::Installed
            }
            Some(e) => {
                if adv_sn > e.seqno {
                    // Newer sequence number: unconditional reset of the
                    // feasible distance (this is LDR's "path reset").
                    *e = RouteEntry {
                        seqno: adv_sn,
                        dist: new_dist,
                        fd: new_dist,
                        next_hop: via,
                        valid: true,
                        expires,
                    };
                    AdvertOutcome::Installed
                } else if adv_sn == e.seqno {
                    if e.is_active(now) {
                        if via == e.next_hop {
                            // Update through the current successor: the
                            // distance may rise or fall freely (the
                            // successor graph is unchanged), fd only
                            // shrinks.
                            e.dist = new_dist;
                            e.fd = e.fd.min(new_dist);
                            e.expires = e.expires.max(expires);
                            AdvertOutcome::Refreshed
                        } else if adv_d < e.fd && new_dist < e.dist {
                            // NDC-feasible and strictly shorter: switch
                            // (the stable-path rule: prefer the current
                            // successor unless the route improves).
                            e.dist = new_dist;
                            e.fd = e.fd.min(new_dist);
                            e.next_hop = via;
                            e.expires = e.expires.max(expires);
                            AdvertOutcome::Installed
                        } else if adv_d < e.fd {
                            AdvertOutcome::NotBetter
                        } else {
                            AdvertOutcome::Infeasible
                        }
                    } else if adv_d < e.fd {
                        // Re-validating an invalid route needs NDC.
                        e.dist = new_dist;
                        e.fd = e.fd.min(new_dist);
                        e.next_hop = via;
                        e.valid = true;
                        e.expires = expires;
                        AdvertOutcome::Installed
                    } else {
                        AdvertOutcome::Infeasible
                    }
                } else {
                    AdvertOutcome::Infeasible
                }
            }
        }
    }

    /// Whether NDC alone would accept `(sn*, d*)` for `dest`.
    pub fn ndc(&self, dest: NodeId, adv_sn: SeqNo, adv_d: Distance) -> bool {
        ndc_accepts(self.invariants(dest), adv_sn, adv_d)
    }

    /// Invalidates the route to `dest` (keeping `sn`/`fd` history).
    /// Returns the entry if it was active.
    pub fn invalidate(&mut self, dest: NodeId, now: SimTime) -> Option<RouteEntry> {
        let e = self.entries.get_mut(&dest)?;
        let was_active = e.is_active(now);
        e.valid = false;
        was_active.then_some(*e)
    }

    /// Invalidates every active route whose next hop is `via`; returns
    /// the affected destinations with their stored sequence numbers.
    pub fn invalidate_via(&mut self, via: NodeId, now: SimTime) -> Vec<(NodeId, SeqNo)> {
        let mut out = Vec::new();
        for (&dest, e) in self.entries.iter_mut() {
            if e.next_hop == via && e.is_active(now) {
                e.valid = false;
                out.push((dest, e.seqno));
            }
        }
        out.sort_unstable_by_key(|(d, _)| d.0);
        out
    }

    /// Adopts a higher sequence number learned from a RERR: the stored
    /// number rises and the feasible distance resets to infinity (no
    /// distance is yet known under the new number). The route becomes
    /// invalid.
    pub fn adopt_seqno(&mut self, dest: NodeId, sn: SeqNo) {
        match self.entries.get_mut(&dest) {
            Some(e) if sn > e.seqno => {
                e.seqno = sn;
                e.fd = INFINITY;
                e.dist = INFINITY;
                e.valid = false;
            }
            Some(_) => {}
            None => {
                self.entries.insert(
                    dest,
                    RouteEntry {
                        seqno: sn,
                        dist: INFINITY,
                        fd: INFINITY,
                        next_hop: dest,
                        valid: false,
                        expires: SimTime::ZERO,
                    },
                );
            }
        }
    }

    /// Forces the entry for `dest` to expire immediately, as if its
    /// soft-state lifetime had elapsed: `expires` drops to the epoch
    /// while `valid` and the `sn`/`fd` history are untouched (a timeout
    /// is not an invalidation). Returns whether an entry existed.
    ///
    /// This models the passage of time for callers that drive the
    /// protocol without a clock — the model checker's
    /// route-table-timeout transition.
    pub fn force_expire(&mut self, dest: NodeId) -> bool {
        match self.entries.get_mut(&dest) {
            Some(e) => {
                e.expires = SimTime::ZERO;
                true
            }
            None => false,
        }
    }

    /// Extends the lifetime of an entry (route used by data traffic).
    pub fn refresh(&mut self, dest: NodeId, expires: SimTime) {
        if let Some(e) = self.entries.get_mut(&dest) {
            e.expires = e.expires.max(expires);
        }
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.entries.iter()
    }

    /// Number of entries (history included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(dest, next_hop)` pairs for all active routes (loop auditor).
    pub fn successors(&self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.is_active(now))
            .map(|(&d, e)| (d, e.next_hop))
            .collect();
        v.sort_unstable_by_key(|(d, _)| d.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sn(c: u32) -> SeqNo {
        SeqNo { epoch: 1, counter: c }
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn install_fresh_route_sets_fd_to_dist() {
        let mut rt = RouteTable::new();
        let out = rt.consider_advertisement(NodeId(9), sn(1), 3, NodeId(2), t(0), t(10));
        assert_eq!(out, AdvertOutcome::Installed);
        let e = rt.get(NodeId(9)).unwrap();
        assert_eq!((e.dist, e.fd, e.next_hop), (4, 4, NodeId(2)));
        assert!(e.is_active(t(5)));
        assert!(!e.is_active(t(10)));
    }

    #[test]
    fn newer_seqno_resets_fd_even_to_larger_distance() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 1, NodeId(2), t(0), t(10));
        // fd is now 2. A newer seqno at much larger distance must win.
        let out = rt.consider_advertisement(NodeId(9), sn(2), 9, NodeId(3), t(1), t(10));
        assert_eq!(out, AdvertOutcome::Installed);
        let e = rt.get(NodeId(9)).unwrap();
        assert_eq!((e.seqno, e.dist, e.fd, e.next_hop), (sn(2), 10, 10, NodeId(3)));
    }

    #[test]
    fn same_seqno_shorter_route_switches_successor() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 4, NodeId(2), t(0), t(10));
        // fd = 5; a d* = 2 advert from another neighbour is feasible
        // and shorter.
        let out = rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(4), t(1), t(10));
        assert_eq!(out, AdvertOutcome::Installed);
        let e = rt.get(NodeId(9)).unwrap();
        assert_eq!((e.dist, e.fd, e.next_hop), (3, 3, NodeId(4)));
    }

    #[test]
    fn same_seqno_equal_or_longer_does_not_switch() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(2), t(0), t(10));
        // fd = 3. d* = 2 from another neighbour: feasible but not an
        // improvement over dist 3 -> NotBetter... new_dist = 3 == dist.
        let out = rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(4), t(1), t(10));
        assert_eq!(out, AdvertOutcome::NotBetter);
        assert_eq!(rt.get(NodeId(9)).unwrap().next_hop, NodeId(2));
        // d* >= fd: infeasible outright.
        let out = rt.consider_advertisement(NodeId(9), sn(1), 3, NodeId(4), t(1), t(10));
        assert_eq!(out, AdvertOutcome::Infeasible);
    }

    #[test]
    fn current_successor_may_report_longer_distance() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(2), t(0), t(10));
        // Same successor, distance grew (mobility): accept, fd keeps.
        let out = rt.consider_advertisement(NodeId(9), sn(1), 6, NodeId(2), t(1), t(12));
        assert_eq!(out, AdvertOutcome::Refreshed);
        let e = rt.get(NodeId(9)).unwrap();
        assert_eq!((e.dist, e.fd), (7, 3));
        assert_eq!(e.expires, t(12));
    }

    #[test]
    fn fd_is_monotone_nonincreasing_for_fixed_seqno() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 5, NodeId(2), t(0), t(10));
        let mut last_fd = rt.get(NodeId(9)).unwrap().fd;
        for (d, via) in [(4u32, 3u16), (6, 2), (3, 4), (2, 5), (9, 5)] {
            rt.consider_advertisement(NodeId(9), sn(1), d, NodeId(via), t(1), t(10));
            let fd = rt.get(NodeId(9)).unwrap().fd;
            assert!(fd <= last_fd, "fd rose from {last_fd} to {fd}");
            last_fd = fd;
        }
    }

    #[test]
    fn invalid_route_revalidation_requires_ndc() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(2), t(0), t(10));
        rt.invalidate(NodeId(9), t(1));
        // fd = 3 survives invalidation; d* = 3 >= fd rejected.
        let out = rt.consider_advertisement(NodeId(9), sn(1), 3, NodeId(4), t(2), t(10));
        assert_eq!(out, AdvertOutcome::Infeasible);
        // d* = 2 < fd = 3 accepted.
        let out = rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(4), t(2), t(10));
        assert_eq!(out, AdvertOutcome::Installed);
        assert!(rt.get(NodeId(9)).unwrap().valid);
    }

    #[test]
    fn invalidate_via_collects_only_active_routes_through_neighbour() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(5), sn(1), 1, NodeId(2), t(0), t(10));
        rt.consider_advertisement(NodeId(6), sn(3), 2, NodeId(2), t(0), t(10));
        rt.consider_advertisement(NodeId(7), sn(1), 1, NodeId(3), t(0), t(10));
        rt.consider_advertisement(NodeId(8), sn(1), 1, NodeId(2), t(0), t(2));
        let lost = rt.invalidate_via(NodeId(2), t(5)); // entry 8 already expired
        let dests: Vec<u16> = lost.iter().map(|(d, _)| d.0).collect();
        assert_eq!(dests, vec![5, 6]);
        assert!(!rt.get(NodeId(5)).unwrap().valid);
        assert!(rt.get(NodeId(7)).unwrap().is_active(t(5)));
    }

    #[test]
    fn adopt_seqno_resets_fd_to_infinity() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(9), sn(1), 2, NodeId(2), t(0), t(10));
        rt.adopt_seqno(NodeId(9), sn(4));
        let e = rt.get(NodeId(9)).unwrap();
        assert_eq!(e.seqno, sn(4));
        assert_eq!(e.fd, INFINITY);
        assert!(!e.valid);
        // Older adoption is a no-op.
        rt.adopt_seqno(NodeId(9), sn(2));
        assert_eq!(rt.get(NodeId(9)).unwrap().seqno, sn(4));
        // Unknown destination: records history.
        rt.adopt_seqno(NodeId(11), sn(2));
        assert_eq!(rt.invariants(NodeId(11)).sn, Some(sn(2)));
    }

    #[test]
    fn successors_lists_active_only() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(5), sn(1), 1, NodeId(2), t(0), t(10));
        rt.consider_advertisement(NodeId(6), sn(1), 1, NodeId(3), t(0), t(10));
        rt.invalidate(NodeId(6), t(1));
        assert_eq!(rt.successors(t(1)), vec![(NodeId(5), NodeId(2))]);
    }

    #[test]
    fn refresh_extends_but_never_shortens() {
        let mut rt = RouteTable::new();
        rt.consider_advertisement(NodeId(5), sn(1), 1, NodeId(2), t(0), t(10));
        rt.refresh(NodeId(5), t(20));
        assert_eq!(rt.get(NodeId(5)).unwrap().expires, t(20));
        rt.refresh(NodeId(5), t(15));
        assert_eq!(rt.get(NodeId(5)).unwrap().expires, t(20));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Whatever sequence of advertisements arrives, for a fixed
        /// sequence number the feasible distance never increases, and
        /// fd <= dist always holds (the paper's key table invariant).
        #[test]
        fn fd_invariants_hold_under_random_advertisements() {
            proptest!(|(ops in proptest::collection::vec(
                (0u32..3, 0u32..15, 0u16..6), 1..80
            ))| {
                let mut rt = RouteTable::new();
                let mut fd_per_sn: std::collections::HashMap<u32, u32> = Default::default();
                for (i, (c, d, via)) in ops.iter().enumerate() {
                    let now = t(i as u64);
                    let expires = t(i as u64 + 5);
                    rt.consider_advertisement(NodeId(99), sn(*c), *d, NodeId(*via), now, expires);
                    let e = *rt.get(NodeId(99)).unwrap();
                    prop_assert!(e.fd <= e.dist, "fd {} > dist {}", e.fd, e.dist);
                    if let Some(prev) = fd_per_sn.get(&e.seqno.counter) {
                        prop_assert!(e.fd <= *prev, "fd rose under fixed sn");
                    }
                    fd_per_sn.insert(e.seqno.counter, e.fd);
                }
            });
        }
    }
}
