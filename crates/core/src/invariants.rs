//! The three sufficient conditions for loop freedom (§2.1).
//!
//! * **NDC** (numbered distance condition) — when a node may accept a
//!   route advertisement and change its successor *without coordinating
//!   with anyone* (Theorem 1).
//! * **FDC** (feasible distance condition) — when a relay must set the
//!   `T` (reset-required) bit in a solicitation it forwards, enforcing
//!   the ordering of feasible distances along paths (Theorem 2).
//! * **SDC** (start distance condition) — when a node may answer a
//!   solicitation with an advertisement (Proposition 1).
//!
//! These are pure functions of the local invariants `(sn, d, fd)` and
//! the message fields `(sn#, fd#, rr#)`; the protocol machinery in
//! [`crate::protocol`] is built on them, and the property tests in this
//! module check the algebraic relationships the proofs rely on.

use crate::seqno::SeqNo;

/// Hop-count distance; `INFINITY` means "no finite distance known".
pub type Distance = u32;

/// The unreachable distance.
pub const INFINITY: Distance = u32::MAX;

/// A node's stored invariants for one destination: the sequence number
/// `sn`, measured distance `d`, and feasible distance `fd` (the minimum
/// `d` ever attained under the current `sn`; `fd ≤ d` always).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Invariants {
    /// Stored destination sequence number (`None` = no information).
    pub sn: Option<SeqNo>,
    /// Measured distance to the destination.
    pub d: Distance,
    /// Feasible distance (minimum `d` for the current `sn`).
    pub fd: Distance,
}

impl Invariants {
    /// "No information about the destination."
    pub const NONE: Invariants = Invariants { sn: None, d: INFINITY, fd: INFINITY };
}

/// The invariant fields a solicitation (RREQ) carries: the requested
/// sequence number `sn#`, the requester's feasible distance `fd#`
/// (possibly lowered by the *reduced distance* optimisation), and the
/// reset-required bit `rr#` (the `T` bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Solicited {
    /// Requested destination sequence number (`None` = unknown).
    pub sn: Option<SeqNo>,
    /// Answering feasible distance.
    pub fd: Distance,
    /// Reset-required (`T`) bit.
    pub rr: bool,
}

/// # Example
///
/// ```
/// use ldr::invariants::{ndc_accepts, Invariants};
/// use ldr::seqno::SeqNo;
///
/// let sn = SeqNo::initial();
/// let mine = Invariants { sn: Some(sn), d: 4, fd: 3 };
/// assert!(ndc_accepts(mine, sn, 2), "shorter than fd: safe");
/// assert!(!ndc_accepts(mine, sn, 3), "equal to fd: could loop");
/// let mut newer = sn;
/// newer.increment();
/// assert!(ndc_accepts(mine, newer, 99), "newer number resets the invariant");
/// ```
///
/// **NDC**: node with stored invariants `mine` may accept an
/// advertisement `(sn*, d*)` and update its routing table independently
/// of other nodes iff it has no information, or
///
/// 1. `sn* > sn`, or
/// 2. `sn* = sn ∧ d* < fd`.
pub fn ndc_accepts(mine: Invariants, adv_sn: SeqNo, adv_d: Distance) -> bool {
    match mine.sn {
        None => true,
        Some(sn) => adv_sn > sn || (adv_sn == sn && adv_d < mine.fd),
    }
}

/// **FDC**: relay `I` must set `rr# = 1` in the solicitation it
/// forwards iff `sn_I = sn# ∧ fd_I ≥ fd#`.
///
/// A relay with *no information* does not violate the ordering and
/// leaves the bit unchanged; a relay with a *newer* sequence number
/// clears it (its relayed solicitation acts as a reset — Eq. 8).
///
/// A relay whose feasible distance is [`INFINITY`] holds *no distance
/// yet* under the current sequence number (e.g. it adopted the number
/// from a route error): NDC lets it use **any** advertisement, exactly
/// like the no-information case of Lemma 3, so it does not violate the
/// ordering either.
pub fn fdc_violated(mine: Invariants, sol: Solicited) -> bool {
    match (mine.sn, sol.sn) {
        (Some(sn_i), Some(sn_sol)) => sn_i == sn_sol && mine.fd >= sol.fd && mine.fd != INFINITY,
        (Some(_), None) => false, // solicitor knows nothing: any reply works
        (None, _) => false,
    }
}

/// The relayed `T` bit (Eq. 8): cleared when the relay's sequence
/// number exceeds the solicitation's (the relay raised `sn#` by Eq. 5,
/// so any reply now acts as a path reset); kept as-is when the relay
/// matches the ordering criteria; set when the relay violates FDC.
pub fn relayed_t_bit(mine: Invariants, sol: Solicited) -> bool {
    match (mine.sn, sol.sn) {
        (Some(sn_i), Some(sn_sol)) => {
            if sn_i > sn_sol {
                false
            } else if sn_i == sn_sol {
                if mine.fd < sol.fd || mine.fd == INFINITY {
                    sol.rr
                } else {
                    true
                }
            } else {
                sol.rr
            }
        }
        (Some(_), None) => false, // relay raises the unknown sn# to its own
        (None, _) => sol.rr,
    }
}

/// Strengthened solicitation invariants a relay forwards (Eqs. 5–6):
/// `sn#' = max(sn_B, sn#)`, and `fd#'` is the relay's own feasible
/// distance when its sequence number is newer, the minimum of the two
/// when equal, and unchanged when older (or when the relay knows
/// nothing).
pub fn strengthen(mine: Invariants, sol: Solicited) -> Solicited {
    let rr = relayed_t_bit(mine, sol);
    match (mine.sn, sol.sn) {
        (Some(sn_i), Some(sn_sol)) => {
            if sn_i > sn_sol {
                Solicited { sn: Some(sn_i), fd: mine.fd, rr }
            } else if sn_i == sn_sol {
                Solicited { sn: sol.sn, fd: sol.fd.min(mine.fd), rr }
            } else {
                Solicited { rr, ..sol }
            }
        }
        (Some(sn_i), None) => Solicited { sn: Some(sn_i), fd: mine.fd, rr },
        (None, _) => Solicited { rr, ..sol },
    }
}

/// **SDC**: node `I` (with an *active* route carrying invariants
/// `mine`) may initiate an advertisement answering `sol` iff
///
/// 3. `sn_I = sn# ∧ d_I < fd# ∧ ¬rr#`, or
/// 4. `sn_I > sn#`.
pub fn sdc_allows(mine: Invariants, sol: Solicited) -> bool {
    sdc_allows_ignoring_t(mine, sol)
        && !(matches!((mine.sn, sol.sn), (Some(a), Some(b)) if a == b) && sol.rr)
}

/// SDC "without consideration to the T bit" — used to pick the node
/// that must *unicast* the solicitation to the destination for a path
/// reset (§2.2).
pub fn sdc_allows_ignoring_t(mine: Invariants, sol: Solicited) -> bool {
    match (mine.sn, sol.sn) {
        (Some(sn_i), Some(sn_sol)) => sn_i > sn_sol || (sn_i == sn_sol && mine.d < sol.fd),
        (Some(_), None) => true, // any active route answers an uninformed request
        (None, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sn(c: u32) -> SeqNo {
        SeqNo { epoch: 1, counter: c }
    }

    fn inv(c: u32, d: Distance, fd: Distance) -> Invariants {
        Invariants { sn: Some(sn(c)), d, fd }
    }

    // ---- NDC ----

    #[test]
    fn ndc_no_information_accepts_anything() {
        assert!(ndc_accepts(Invariants::NONE, sn(0), INFINITY - 1));
    }

    #[test]
    fn ndc_newer_seqno_accepts_any_distance() {
        let mine = inv(5, 2, 2);
        assert!(ndc_accepts(mine, sn(6), 100));
    }

    #[test]
    fn ndc_equal_seqno_requires_distance_below_fd() {
        let mine = inv(5, 4, 3);
        assert!(ndc_accepts(mine, sn(5), 2));
        assert!(!ndc_accepts(mine, sn(5), 3), "d* = fd must be rejected");
        assert!(!ndc_accepts(mine, sn(5), 4));
    }

    #[test]
    fn ndc_older_seqno_rejected() {
        let mine = inv(5, 4, 3);
        assert!(!ndc_accepts(mine, sn(4), 0));
    }

    // ---- FDC / T bit ----

    #[test]
    fn fdc_set_when_equal_sn_and_fd_not_smaller() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: false };
        assert!(fdc_violated(inv(5, 4, 3), sol), "fd = fd# violates");
        assert!(fdc_violated(inv(5, 9, 7), sol), "fd > fd# violates");
        assert!(!fdc_violated(inv(5, 2, 2), sol), "fd < fd# is ordered");
    }

    #[test]
    fn fdc_not_violated_with_newer_or_no_info() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: false };
        assert!(!fdc_violated(inv(6, 9, 9), sol));
        assert!(!fdc_violated(Invariants::NONE, sol));
        let unknown = Solicited { sn: None, fd: INFINITY, rr: false };
        assert!(!fdc_violated(inv(5, 4, 3), unknown));
    }

    #[test]
    fn t_bit_cleared_by_newer_seqno() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: true };
        assert!(!relayed_t_bit(inv(6, 9, 9), sol));
    }

    #[test]
    fn t_bit_preserved_by_ordered_relay_and_set_by_violator() {
        let clear = Solicited { sn: Some(sn(5)), fd: 3, rr: false };
        let set = Solicited { sn: Some(sn(5)), fd: 3, rr: true };
        // Ordered relay (fd 2 < 3): preserves whatever was there.
        assert!(!relayed_t_bit(inv(5, 2, 2), clear));
        assert!(relayed_t_bit(inv(5, 2, 2), set));
        // Violator: sets it.
        assert!(relayed_t_bit(inv(5, 4, 4), clear));
        // No information: preserves.
        assert!(!relayed_t_bit(Invariants::NONE, clear));
        assert!(relayed_t_bit(Invariants::NONE, set));
    }

    // ---- strengthen (Eqs. 5–6) ----

    #[test]
    fn strengthen_with_newer_seqno_replaces_both() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: true };
        let out = strengthen(inv(7, 6, 4), sol);
        assert_eq!(out.sn, Some(sn(7)));
        assert_eq!(out.fd, 4);
        assert!(!out.rr, "raising sn# clears the reset bit");
    }

    #[test]
    fn strengthen_equal_seqno_takes_min_fd() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: false };
        let out = strengthen(inv(5, 2, 2), sol);
        assert_eq!(out.fd, 2);
        assert_eq!(out.sn, Some(sn(5)));
        let out2 = strengthen(inv(5, 9, 8), sol);
        assert_eq!(out2.fd, 3, "weaker relay leaves fd#");
        assert!(out2.rr, "but must set the reset bit");
    }

    #[test]
    fn strengthen_unknown_solicitation_adopts_relay_invariants() {
        let sol = Solicited { sn: None, fd: INFINITY, rr: false };
        let out = strengthen(inv(5, 4, 3), sol);
        assert_eq!(out.sn, Some(sn(5)));
        assert_eq!(out.fd, 3);
        assert!(!out.rr);
    }

    #[test]
    fn strengthen_no_information_is_identity_except_t() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: false };
        let out = strengthen(Invariants::NONE, sol);
        assert_eq!(out, sol);
    }

    // ---- SDC ----

    #[test]
    fn sdc_equal_seqno_needs_shorter_distance_and_clear_t() {
        let sol = Solicited { sn: Some(sn(5)), fd: 3, rr: false };
        assert!(sdc_allows(inv(5, 2, 2), sol));
        assert!(!sdc_allows(inv(5, 3, 3), sol), "d = fd# insufficient");
        let with_t = Solicited { rr: true, ..sol };
        assert!(!sdc_allows(inv(5, 2, 2), with_t), "T bit blocks same-sn replies");
        assert!(sdc_allows_ignoring_t(inv(5, 2, 2), with_t));
    }

    #[test]
    fn sdc_newer_seqno_overrides_t_bit() {
        let with_t = Solicited { sn: Some(sn(5)), fd: 3, rr: true };
        assert!(sdc_allows(inv(6, 9, 9), with_t), "higher sn is itself a reset");
    }

    #[test]
    fn sdc_unknown_request_answered_by_any_route() {
        let sol = Solicited { sn: None, fd: INFINITY, rr: false };
        assert!(sdc_allows(inv(1, 30, 30), sol));
        assert!(!sdc_allows(Invariants::NONE, sol));
    }

    // ---- property tests on the proof obligations ----

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_inv() -> impl Strategy<Value = Invariants> {
            (0u32..4, 0u32..20, prop::bool::ANY).prop_map(|(c, fd, none)| {
                if none {
                    Invariants::NONE
                } else {
                    let d = fd + 3; // d >= fd always
                    Invariants { sn: Some(sn(c)), d, fd }
                }
            })
        }

        fn arb_sol() -> impl Strategy<Value = Solicited> {
            (0u32..4, 0u32..20, prop::bool::ANY, prop::bool::ANY).prop_map(|(c, fd, rr, none)| {
                if none {
                    Solicited { sn: None, fd: INFINITY, rr }
                } else {
                    Solicited { sn: Some(sn(c)), fd, rr }
                }
            })
        }

        proptest! {
            /// Theorem 2's ordering: a node that may *answer* under the
            /// same sequence number always has fd strictly below the
            /// requester's (because d < fd# and fd <= d).
            #[test]
            fn sdc_same_sn_implies_strict_fd_ordering(mine in arb_inv(), sol in arb_sol()) {
                if let (Some(a), Some(b)) = (mine.sn, sol.sn) {
                    if a == b && sdc_allows(mine, sol) {
                        prop_assert!(mine.fd < sol.fd);
                    }
                }
            }

            /// A relay that does not violate FDC never weakens the
            /// solicitation: sn#' ≥ sn#, and fd#' ≤ fd# at equal sn.
            #[test]
            fn strengthen_is_monotone(mine in arb_inv(), sol in arb_sol()) {
                let out = strengthen(mine, sol);
                match (out.sn, sol.sn) {
                    (Some(o), Some(s)) => prop_assert!(o >= s),
                    (None, Some(_)) => prop_assert!(false, "sn# lost"),
                    _ => {}
                }
                if out.sn == sol.sn {
                    prop_assert!(out.fd <= sol.fd);
                }
            }

            /// NDC acceptance under equal sequence numbers implies the
            /// advertised distance is strictly below fd — so the new
            /// fd (min(fd, d*+1)) never increases: the feasible
            /// distance is non-increasing for a fixed sn (Procedure 3).
            #[test]
            fn ndc_same_sn_never_raises_fd(mine in arb_inv(), d_star in 0u32..40) {
                if let Some(s) = mine.sn {
                    if ndc_accepts(mine, s, d_star) {
                        let new_fd = mine.fd.min(d_star.saturating_add(1));
                        prop_assert!(new_fd <= mine.fd);
                        prop_assert!(d_star < mine.fd);
                    }
                }
            }

            /// FDC and the relayed T bit agree: a violating relay
            /// always emits rr = 1; a relay with a strictly newer sn
            /// always emits rr = 0.
            #[test]
            fn t_bit_consistent_with_fdc(mine in arb_inv(), sol in arb_sol()) {
                if fdc_violated(mine, sol) {
                    prop_assert!(relayed_t_bit(mine, sol));
                }
                if let (Some(a), Some(b)) = (mine.sn, sol.sn) {
                    if a > b {
                        prop_assert!(!relayed_t_bit(mine, sol));
                    }
                }
            }

            /// Answering and violating are mutually exclusive: SDC and
            /// FDC cannot both hold (an ordered replier is never a
            /// violator).
            #[test]
            fn sdc_and_fdc_disjoint(mine in arb_inv(), sol in arb_sol()) {
                if sdc_allows(mine, sol) {
                    prop_assert!(!fdc_violated(mine, sol) || mine.sn > sol.sn);
                }
            }
        }
    }
}
