//! LDR control messages and their wire format.
//!
//! The messaging structure follows AODV's (§2): a route request
//! ([`Rreq`]) is both a *solicitation* for the destination and an
//! *advertisement* of the origin; a route reply ([`Rrep`]) is an
//! advertisement; a route error ([`Rerr`]) revokes broken routes.
//! Messages are encoded in a fixed big-endian layout so control-packet
//! sizes in the simulator are realistic; encode/decode round-trips are
//! tested below (including property tests).

use crate::invariants::Distance;
use crate::seqno::SeqNo;
use manet_sim::packet::NodeId;
use manet_sim::wire::{get_u16, get_u32, get_u64, get_u8, put_u16, put_u32, put_u64};

/// Flag bits carried in RREQ/RREP headers.
pub mod flags {
    /// `T`: reset required — an invariant-ordering violation occurred
    /// along the path and only the destination (or a higher sequence
    /// number) may answer.
    pub const T: u8 = 0b0000_0001;
    /// `N`: no reverse path — the message no longer advertises a route
    /// to the RREQ origin.
    pub const N: u8 = 0b0000_0010;
    /// `D`: destination-only — the solicitation is being unicast along
    /// a successor path for a path reset; only the destination (or a
    /// strictly newer sequence number) may answer.
    pub const D: u8 = 0b0000_0100;
    /// Internal: the destination sequence number field is unknown.
    pub const SN_UNKNOWN: u8 = 0b0000_1000;
}

/// A route request: solicitation for `dst`, advertisement of `src`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rreq {
    /// Sought destination.
    pub dst: NodeId,
    /// Last destination sequence number known to the requester
    /// (`None` = no information).
    pub sn_dst: Option<SeqNo>,
    /// Origin-unique request identifier (flood control).
    pub rreqid: u32,
    /// Requesting node.
    pub src: NodeId,
    /// The origin's own sequence number (advertising a route to it).
    pub sn_src: SeqNo,
    /// The requester's (answering) feasible distance.
    pub fd: Distance,
    /// Distance accumulated along the path from `src`.
    pub dist: Distance,
    /// Remaining flood time-to-live.
    pub ttl: u8,
    /// Reset-required bit.
    pub t_bit: bool,
    /// No-reverse-path bit.
    pub n_bit: bool,
    /// Destination-only (unicast path-reset) bit.
    pub d_bit: bool,
}

/// A route reply: advertisement of a route to `dst`, addressed to the
/// computation `(src, rreqid)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rrep {
    /// Advertised destination.
    pub dst: NodeId,
    /// The advertised destination sequence number.
    pub sn_dst: SeqNo,
    /// Terminus: the origin of the RREQ being answered.
    pub src: NodeId,
    /// The answered request id.
    pub rreqid: u32,
    /// The replier's measured distance to `dst`.
    pub dist: Distance,
    /// Remaining route lifetime in milliseconds.
    pub lifetime_ms: u32,
    /// Set when the reverse path to `src` was not established.
    pub n_bit: bool,
}

/// One unreachable destination inside a route error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RerrEntry {
    /// The destination that became unreachable.
    pub dst: NodeId,
    /// The sender's stored sequence number for it (`None` = unknown).
    pub sn: Option<SeqNo>,
}

/// A route error listing destinations lost via the sender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rerr {
    /// Unreachable destinations.
    pub entries: Vec<RerrEntry>,
}

const RREQ_LEN: usize = 36;
const RREP_LEN: usize = 28;

// The bounds-checked big-endian readers/writers live in
// `manet_sim::wire`: they return `None` instead of panicking on
// truncated input, because wire bytes come off a simulated radio that
// the fault layer can corrupt arbitrarily — a decoder slip (a new
// field, a stale length constant) must surface as a rejected packet,
// never as a kernel panic.

impl Rreq {
    /// Encodes to the 32-byte wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut f = 0u8;
        if self.t_bit {
            f |= flags::T;
        }
        if self.n_bit {
            f |= flags::N;
        }
        if self.d_bit {
            f |= flags::D;
        }
        if self.sn_dst.is_none() {
            f |= flags::SN_UNKNOWN;
        }
        let mut b = Vec::with_capacity(RREQ_LEN);
        b.push(1u8); // type
        b.push(f);
        b.push(self.ttl);
        b.push(0); // reserved
        put_u16(&mut b, self.dst.0);
        put_u16(&mut b, self.src.0);
        put_u32(&mut b, self.rreqid);
        put_u64(&mut b, self.sn_dst.unwrap_or(SeqNo { epoch: 0, counter: 0 }).to_u64());
        put_u64(&mut b, self.sn_src.to_u64());
        put_u32(&mut b, self.fd);
        put_u32(&mut b, self.dist);
        debug_assert_eq!(b.len(), RREQ_LEN);
        b
    }

    /// Decodes from the wire layout; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != RREQ_LEN || get_u8(b, 0)? != 1 {
            return None;
        }
        let f = get_u8(b, 1)?;
        let sn_dst =
            if f & flags::SN_UNKNOWN != 0 { None } else { Some(SeqNo::from_u64(get_u64(b, 12)?)) };
        Some(Rreq {
            dst: NodeId(get_u16(b, 4)?),
            sn_dst,
            rreqid: get_u32(b, 8)?,
            src: NodeId(get_u16(b, 6)?),
            sn_src: SeqNo::from_u64(get_u64(b, 20)?),
            fd: get_u32(b, 28)?,
            dist: get_u32(b, 32)?,
            ttl: get_u8(b, 2)?,
            t_bit: f & flags::T != 0,
            n_bit: f & flags::N != 0,
            d_bit: f & flags::D != 0,
        })
    }
}

impl Rrep {
    /// Encodes to the 28-byte wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut f = 0u8;
        if self.n_bit {
            f |= flags::N;
        }
        let mut b = Vec::with_capacity(RREP_LEN);
        b.push(2u8); // type
        b.push(f);
        put_u16(&mut b, 0); // reserved
        put_u16(&mut b, self.dst.0);
        put_u16(&mut b, self.src.0);
        put_u32(&mut b, self.rreqid);
        put_u64(&mut b, self.sn_dst.to_u64());
        put_u32(&mut b, self.dist);
        put_u32(&mut b, self.lifetime_ms);
        debug_assert_eq!(b.len(), RREP_LEN);
        b
    }

    /// Decodes from the wire layout; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != RREP_LEN || get_u8(b, 0)? != 2 {
            return None;
        }
        Some(Rrep {
            dst: NodeId(get_u16(b, 4)?),
            sn_dst: SeqNo::from_u64(get_u64(b, 12)?),
            src: NodeId(get_u16(b, 6)?),
            rreqid: get_u32(b, 8)?,
            dist: get_u32(b, 20)?,
            lifetime_ms: get_u32(b, 24)?,
            n_bit: get_u8(b, 1)? & flags::N != 0,
        })
    }
}

impl Rerr {
    /// Encodes: 4-byte header plus 12 bytes per entry.
    pub fn encode(&self) -> Vec<u8> {
        let count = manet_sim::wire::clamp_count(self.entries.len());
        let mut b = Vec::with_capacity(4 + 12 * self.entries.len());
        b.push(3u8); // type
        b.push(count);
        put_u16(&mut b, 0); // reserved
        for e in self.entries.iter().take(usize::from(count)) {
            put_u16(&mut b, e.dst.0);
            put_u16(&mut b, if e.sn.is_some() { 1 } else { 0 });
            put_u64(&mut b, e.sn.unwrap_or(SeqNo { epoch: 0, counter: 0 }).to_u64());
        }
        b
    }

    /// Decodes; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if get_u8(b, 0)? != 3 {
            return None;
        }
        let count = usize::from(get_u8(b, 1)?);
        let body = b.get(4..)?;
        if body.len() != count.checked_mul(12)? {
            return None;
        }
        let entries = body
            .chunks_exact(12)
            .map(|c| {
                let has_sn = get_u16(c, 2)? != 0;
                Some(RerrEntry {
                    dst: NodeId(get_u16(c, 0)?),
                    sn: if has_sn { Some(SeqNo::from_u64(get_u64(c, 4)?)) } else { None },
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Rerr { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rreq() -> Rreq {
        Rreq {
            dst: NodeId(7),
            sn_dst: Some(SeqNo { epoch: 2, counter: 9 }),
            rreqid: 0xCAFE_BABE,
            src: NodeId(3),
            sn_src: SeqNo { epoch: 1, counter: 4 },
            fd: 5,
            dist: 2,
            ttl: 7,
            t_bit: true,
            n_bit: false,
            d_bit: true,
        }
    }

    #[test]
    fn rreq_round_trip() {
        let m = sample_rreq();
        let bytes = m.encode();
        assert_eq!(bytes.len(), 36);
        assert_eq!(Rreq::decode(&bytes), Some(m));
    }

    #[test]
    fn rreq_unknown_seqno_round_trip() {
        let m = Rreq { sn_dst: None, t_bit: false, d_bit: false, ..sample_rreq() };
        assert_eq!(Rreq::decode(&m.encode()), Some(m));
    }

    #[test]
    fn rrep_round_trip() {
        let m = Rrep {
            dst: NodeId(7),
            sn_dst: SeqNo { epoch: 3, counter: 1 },
            src: NodeId(3),
            rreqid: 42,
            dist: 4,
            lifetime_ms: 6000,
            n_bit: true,
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), 28);
        assert_eq!(Rrep::decode(&bytes), Some(m));
    }

    #[test]
    fn rerr_round_trip_multiple_entries() {
        let m = Rerr {
            entries: vec![
                RerrEntry { dst: NodeId(1), sn: Some(SeqNo { epoch: 1, counter: 2 }) },
                RerrEntry { dst: NodeId(9), sn: None },
                RerrEntry { dst: NodeId(400), sn: Some(SeqNo { epoch: 7, counter: 0 }) },
            ],
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), 4 + 36);
        assert_eq!(Rerr::decode(&bytes), Some(m));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(Rreq::decode(&[]), None);
        assert_eq!(Rreq::decode(&[1u8; 31]), None);
        assert_eq!(Rrep::decode(&[2u8; 27]), None);
        assert_eq!(Rerr::decode(&[3u8, 2, 0, 0, 0]), None, "length mismatch");
        // Wrong type byte.
        let mut ok = sample_rreq().encode();
        ok[0] = 9;
        assert_eq!(Rreq::decode(&ok), None);
    }

    /// Regression test for the unchecked readers: the old `get_u16`
    /// family indexed `b[at + 1]` (and siblings) without bounds checks,
    /// so a read that ran off the end of a truncated buffer panicked
    /// instead of rejecting the frame. Exercising the readers directly
    /// (the decoders also length-check up front, which masked the bug)
    /// panics under the old code and returns `None` under the new.
    #[test]
    fn readers_are_total_on_short_buffers() {
        assert_eq!(get_u16(&[], 0), None);
        assert_eq!(get_u16(&[1], 0), None, "one byte short: old code indexed b[1]");
        assert_eq!(get_u32(&[1, 2, 3], 0), None);
        assert_eq!(get_u64(&[0; 7], 0), None);
        // Reads straddling the end and reads starting past the end.
        assert_eq!(get_u16(&[1, 2], 1), None);
        assert_eq!(get_u32(&[0; 8], 5), None);
        assert_eq!(get_u64(&[0; 16], 9), None);
        assert_eq!(get_u16(&[1, 2], 9), None);
        // Offset arithmetic cannot overflow either.
        assert_eq!(get_u16(&[1, 2], usize::MAX), None);
        assert_eq!(get_u64(&[0; 16], usize::MAX - 3), None);
        // In-bounds reads still decode big-endian.
        assert_eq!(get_u16(&[0x12, 0x34], 0), Some(0x1234));
        assert_eq!(get_u32(&[0, 0x12, 0x34, 0x56, 0x78], 1), Some(0x1234_5678));
        assert_eq!(get_u64(&[1, 0, 0, 0, 0, 0, 0, 0, 2], 1), Some(2));
    }

    #[test]
    fn cross_type_decoding_fails() {
        let rreq = sample_rreq().encode();
        assert_eq!(Rrep::decode(&rreq), None);
        let rrep = Rrep {
            dst: NodeId(1),
            sn_dst: SeqNo::initial(),
            src: NodeId(2),
            rreqid: 1,
            dist: 1,
            lifetime_ms: 1,
            n_bit: false,
        }
        .encode();
        assert_eq!(Rreq::decode(&rrep), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_seqno() -> impl Strategy<Value = SeqNo> {
            (any::<u32>(), any::<u32>()).prop_map(|(e, c)| SeqNo { epoch: e, counter: c })
        }

        proptest! {
            #[test]
            fn rreq_round_trips(
                dst in any::<u16>(), src in any::<u16>(), rreqid in any::<u32>(),
                sn_dst in proptest::option::of(arb_seqno()), sn_src in arb_seqno(),
                fd in any::<u32>(), dist in any::<u32>(), ttl in any::<u8>(),
                t in any::<bool>(), n in any::<bool>(), d in any::<bool>(),
            ) {
                let m = Rreq {
                    dst: NodeId(dst), sn_dst, rreqid, src: NodeId(src), sn_src,
                    fd, dist, ttl, t_bit: t, n_bit: n, d_bit: d,
                };
                prop_assert_eq!(Rreq::decode(&m.encode()), Some(m));
            }

            #[test]
            fn rrep_round_trips(
                dst in any::<u16>(), src in any::<u16>(), rreqid in any::<u32>(),
                sn in arb_seqno(), dist in any::<u32>(), life in any::<u32>(),
                n in any::<bool>(),
            ) {
                let m = Rrep {
                    dst: NodeId(dst), sn_dst: sn, src: NodeId(src), rreqid,
                    dist, lifetime_ms: life, n_bit: n,
                };
                prop_assert_eq!(Rrep::decode(&m.encode()), Some(m));
            }

            #[test]
            fn rerr_round_trips(entries in proptest::collection::vec(
                (any::<u16>(), proptest::option::of(arb_seqno())), 0..20)
            ) {
                let m = Rerr {
                    entries: entries.into_iter()
                        .map(|(d, sn)| RerrEntry { dst: NodeId(d), sn })
                        .collect(),
                };
                prop_assert_eq!(Rerr::decode(&m.encode()), Some(m.clone()));
            }

            #[test]
            fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                let _ = Rreq::decode(&bytes);
                let _ = Rrep::decode(&bytes);
                let _ = Rerr::decode(&bytes);
            }
        }
    }
}
