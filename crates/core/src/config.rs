//! LDR protocol parameters.

use manet_sim::time::SimDuration;

/// Tunable protocol constants and the §4 optimisations.
///
/// Defaults match the evaluation: AODV-compatible timing constants
/// (ACTIVE_ROUTE_TIMEOUT etc.) with all five suggested optimisations
/// enabled ("The LDR results reflect using the suggested
/// optimizations"). Each optimisation can be disabled individually for
/// the ablation benchmarks.
#[derive(Clone, Debug, PartialEq)]
pub struct LdrConfig {
    /// Lifetime granted to a route on installation/refresh (AODV's
    /// ACTIVE_ROUTE_TIMEOUT, 3 s).
    pub active_route_timeout: SimDuration,
    /// Lifetime a destination grants in its own replies (AODV's
    /// MY_ROUTE_TIMEOUT, 6 s).
    pub my_route_timeout: SimDuration,
    /// Estimated per-hop latency (AODV's NODE_TRAVERSAL_TIME, 40 ms);
    /// the discovery timer is `2 · ttl · latency` (Procedure 1).
    pub node_traversal_time: SimDuration,
    /// First expanding-ring TTL.
    pub ttl_start: u8,
    /// Expanding-ring TTL step.
    pub ttl_increment: u8,
    /// Last ring TTL before jumping to the network diameter.
    pub ttl_threshold: u8,
    /// Network-wide TTL.
    pub net_diameter: u8,
    /// Total discovery attempts (ring steps plus network-wide retries)
    /// before the route request is abandoned.
    pub max_attempts: u32,
    /// Data packets buffered per destination awaiting discovery.
    pub buffer_cap: usize,
    /// How long RREQ-cache (computation) state is retained; must cover
    /// the flood and the replies (AODV's PATH_DISCOVERY_TIME ≈ 2.8 s).
    pub rreq_cache_ttl: SimDuration,
    /// Extra TTL margin for the *optimal TTL* optimisation and for
    /// unicast path-reset forwarding (LOCAL_ADD_TTL).
    pub local_add_ttl: u8,

    /// *Multiple RREPs*: a node may relay additional RREPs for the same
    /// `(originator, rreqid)` as long as only strictly stronger
    /// invariants cross over time.
    pub opt_multiple_rreps: bool,
    /// *Request as error*: an RREQ for `D` arriving from this node's
    /// own next hop towards `D` implies that hop lost its route.
    pub opt_request_as_error: bool,
    /// *Reduced distance*: advertise an answering distance of
    /// `max(1, ⌊factor · fd⌋)` in RREQs (paper uses 0.8).
    pub opt_reduced_distance: Option<f64>,
    /// *Minimum lifetime*: do not answer an RREQ from a route with less
    /// than ⅓ ACTIVE_ROUTE_TIMEOUT remaining; relay instead.
    pub opt_minimum_lifetime: bool,
    /// *Optimal TTL*: seed the expanding ring with
    /// `D − FD + LOCAL_ADD_TTL` when prior route state exists.
    pub opt_optimal_ttl: bool,
    /// N-bit reverse probe: after completing a discovery whose RREP
    /// carried the N bit, raise the own sequence number and unicast a
    /// D-bit probe to rebuild the reverse path. The paper makes this
    /// optional ("it *may* send a unicast RREQ probe"); it is off by
    /// default because each probe inflates the origin's sequence
    /// number, and the reverse path is rebuilt on demand anyway.
    pub opt_reverse_probe: bool,
}

impl Default for LdrConfig {
    fn default() -> Self {
        LdrConfig {
            active_route_timeout: SimDuration::from_secs(3),
            my_route_timeout: SimDuration::from_secs(6),
            node_traversal_time: SimDuration::from_millis(40),
            ttl_start: 2,
            ttl_increment: 2,
            ttl_threshold: 7,
            net_diameter: 35,
            max_attempts: 5,
            buffer_cap: 64,
            rreq_cache_ttl: SimDuration::from_millis(2800),
            local_add_ttl: 2,
            opt_multiple_rreps: true,
            opt_request_as_error: true,
            opt_reduced_distance: Some(0.8),
            opt_minimum_lifetime: true,
            opt_optimal_ttl: true,
            opt_reverse_probe: false,
        }
    }
}

impl LdrConfig {
    /// LDR with every §4 optimisation disabled (the ablation baseline).
    pub fn without_optimizations() -> Self {
        LdrConfig {
            opt_multiple_rreps: false,
            opt_request_as_error: false,
            opt_reduced_distance: None,
            opt_minimum_lifetime: false,
            opt_optimal_ttl: false,
            ..LdrConfig::default()
        }
    }

    /// The answering distance advertised for a feasible distance `fd`
    /// (*reduced distance* optimisation): "any distance no greater than
    /// the node's feasible distance", here `max(1, ⌊factor · fd⌋)`.
    ///
    /// SDC tests the replier's distance *strictly below* the carried
    /// value, so the bound a replier's distance may *equal* is
    /// `answering_distance − 1`; we therefore advertise
    /// `min(fd, ⌊factor·fd⌋ + 1)`. (With the pure floor the previous
    /// next hop — at distance `fd − 1` — could never answer a
    /// re-discovery over the short paths of these scenarios, forcing a
    /// destination reset on almost every route break, which contradicts
    /// the paper's measured sub-1 mean sequence numbers.) Loop safety
    /// never depends on this value: NDC still gates acceptance at the
    /// requester.
    pub fn answering_distance(&self, fd: u32) -> u32 {
        if fd == u32::MAX {
            return u32::MAX;
        }
        match self.opt_reduced_distance {
            Some(f) => ((((fd as f64) * f).floor() as u32).max(1).saturating_add(1)).min(fd.max(1)),
            None => fd.max(1),
        }
    }

    /// The minimum remaining lifetime a route needs before it may
    /// answer an RREQ (⅓ of ACTIVE_ROUTE_TIMEOUT when the optimisation
    /// is on, zero otherwise).
    pub fn min_reply_lifetime(&self) -> SimDuration {
        if self.opt_minimum_lifetime {
            SimDuration::from_nanos(self.active_route_timeout.as_nanos() / 3)
        } else {
            SimDuration::ZERO
        }
    }

    /// TTL of discovery attempt `attempt` (1-based). With prior route
    /// state and *optimal TTL* enabled, the first attempt uses
    /// `dist − fd# + LOCAL_ADD_TTL`; later attempts expand the ring and
    /// finally use the network diameter.
    pub fn ttl_for_attempt(&self, attempt: u32, prior: Option<(u32, u32)>) -> u8 {
        let base = match (self.opt_optimal_ttl, prior) {
            (true, Some((dist, fd_req))) if dist != u32::MAX => {
                let extra = dist.saturating_sub(fd_req) as u8;
                extra.saturating_add(self.local_add_ttl).clamp(self.ttl_start, self.net_diameter)
            }
            _ => self.ttl_start,
        };
        let mut ttl = base;
        for _ in 1..attempt {
            if ttl >= self.ttl_threshold {
                return self.net_diameter;
            }
            ttl = ttl.saturating_add(self.ttl_increment);
            if ttl > self.ttl_threshold {
                return self.net_diameter;
            }
        }
        ttl.min(self.net_diameter)
    }

    /// The discovery timeout for a given TTL: `2 · ttl · latency`.
    pub fn discovery_timeout(&self, ttl: u8) -> SimDuration {
        self.node_traversal_time.saturating_mul(2 * u64::from(ttl.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_optimizations() {
        let c = LdrConfig::default();
        assert!(c.opt_multiple_rreps && c.opt_request_as_error && c.opt_minimum_lifetime);
        assert!(c.opt_optimal_ttl);
        assert_eq!(c.opt_reduced_distance, Some(0.8));
        let b = LdrConfig::without_optimizations();
        assert!(!b.opt_multiple_rreps && b.opt_reduced_distance.is_none());
    }

    #[test]
    fn answering_distance_factor() {
        let c = LdrConfig::default();
        assert_eq!(c.answering_distance(10), 9, "floor(8) + 1");
        assert_eq!(c.answering_distance(6), 5, "floor(4.8) -> 4, + 1");
        // The bound never exceeds fd and never goes below 1.
        assert_eq!(c.answering_distance(5), 5, "short paths effectively unreduced");
        assert_eq!(c.answering_distance(1), 1);
        assert_eq!(c.answering_distance(2), 2);
        assert_eq!(c.answering_distance(u32::MAX), u32::MAX);
        let plain = LdrConfig { opt_reduced_distance: None, ..c };
        assert_eq!(plain.answering_distance(10), 10);
    }

    #[test]
    fn expanding_ring_ttl_sequence() {
        let c = LdrConfig { opt_optimal_ttl: false, ..LdrConfig::default() };
        assert_eq!(c.ttl_for_attempt(1, None), 2);
        assert_eq!(c.ttl_for_attempt(2, None), 4);
        assert_eq!(c.ttl_for_attempt(3, None), 6);
        assert_eq!(c.ttl_for_attempt(4, None), 35, "past threshold: diameter");
        assert_eq!(c.ttl_for_attempt(5, None), 35);
    }

    #[test]
    fn optimal_ttl_uses_known_distance() {
        let c = LdrConfig::default();
        // dist 6, requested fd 4: 6 - 4 + 2 = 4.
        assert_eq!(c.ttl_for_attempt(1, Some((6, 4))), 4);
        // No history falls back to the ring start.
        assert_eq!(c.ttl_for_attempt(1, None), 2);
        // Infinite distance falls back too.
        assert_eq!(c.ttl_for_attempt(1, Some((u32::MAX, 3))), 2);
        // Never below ttl_start nor above the diameter.
        assert_eq!(c.ttl_for_attempt(1, Some((3, 3))), 2);
        assert_eq!(c.ttl_for_attempt(1, Some((200, 1))), 35);
    }

    #[test]
    fn discovery_timeout_scales_with_ttl() {
        let c = LdrConfig::default();
        assert_eq!(c.discovery_timeout(2), SimDuration::from_millis(160));
        assert_eq!(c.discovery_timeout(35), SimDuration::from_millis(2800));
    }

    #[test]
    fn min_reply_lifetime_is_third_of_art() {
        let c = LdrConfig::default();
        assert_eq!(c.min_reply_lifetime(), SimDuration::from_secs(1));
        let off = LdrConfig { opt_minimum_lifetime: false, ..c };
        assert_eq!(off.min_reply_lifetime(), SimDuration::ZERO);
    }
}
