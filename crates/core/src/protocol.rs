//! The LDR protocol state machine (Procedures 1–4 of the paper).
//!
//! Each node keeps a [`RouteTable`] (invariants per destination), a
//! route-request cache recording the computations it is *engaged* in
//! (`(origin, rreqid) → last hop`, which forces replies onto the
//! request's reverse path — Theorem 3), and the set of destinations it
//! is *active* for (its own pending discoveries, with buffered data).
//!
//! * **Procedure 1** (initiate solicitation): expanding-ring RREQ with
//!   the node's feasible distance and last-known destination sequence
//!   number; retries with fresh `rreqid`s, then reports failure.
//! * **Procedure 2** (relay solicitation): become engaged, strengthen
//!   the invariants (Eqs. 5–8), answer if SDC permits, set the `T` bit
//!   on an ordering violation (FDC), unicast the request to the
//!   destination when a path reset is required, otherwise re-broadcast.
//! * **Procedure 3** (set route) lives in [`RouteTable`].
//! * **Procedure 4** (relay advertisement): forward RREPs along the
//!   cached reverse path, substituting the relay's own (always equal or
//!   stronger) invariants.
//!
//! All five §4 optimisations are implemented and individually
//! switchable through [`LdrConfig`].

use crate::config::LdrConfig;
use crate::invariants::{self, Distance, Solicited, INFINITY};
use crate::messages::{Rerr, RerrEntry, Rrep, Rreq};
use crate::route_table::{AdvertOutcome, RouteEntry, RouteTable};
use crate::seqno::SeqNo;
use manet_sim::packet::{ControlKind, ControlPacket, DataPacket, NodeId, Packet, PacketBody};
use manet_sim::protocol::{
    Ctx, DropReason, ProtoCounter, RouteDump, RouteTelemetry, RoutingProtocol,
};
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::trace::{InvalidateCause, InvariantSnapshot, RouteVerdict, TraceEvent};
use std::collections::{HashMap, VecDeque};

/// Deterministic fast-hashed map for protocol state (iterations over
/// these are order-insensitive: retain-only or sorted afterwards).
type FxMap<K, V> = HashMap<K, V, manet_sim::hash::FxBuild>;

/// The `(sn, d, fd)` triple of a table entry, scalarised for tracing.
fn snap(e: Option<&RouteEntry>) -> Option<InvariantSnapshot> {
    e.map(|e| InvariantSnapshot { sn: Some(e.seqno.to_u64()), d: e.dist, fd: e.fd })
}

fn verdict(out: AdvertOutcome) -> RouteVerdict {
    match out {
        AdvertOutcome::Installed => RouteVerdict::Installed,
        AdvertOutcome::Refreshed => RouteVerdict::Refreshed,
        AdvertOutcome::NotBetter => RouteVerdict::NotBetter,
        AdvertOutcome::Infeasible => RouteVerdict::Infeasible,
    }
}

/// Timer token for the periodic state sweep.
const CLEANUP_TOKEN: u64 = u64::MAX;
/// Interval of the periodic state sweep.
const CLEANUP_INTERVAL: SimDuration = SimDuration::from_secs(10);

fn discovery_token(dest: NodeId, generation: u64) -> u64 {
    (u64::from(dest.0) << 32) | (generation & 0xFFFF_FFFF)
}

/// Engagement state for one computation `(origin, rreqid)`.
#[derive(Clone, Debug)]
struct CacheEntry {
    /// The neighbour the solicitation arrived from; replies for this
    /// computation are forced through it (reverse-path forwarding).
    last_hop: NodeId,
    /// When the engagement lapses.
    expires: SimTime,
    /// Strongest `(sn, dist)` advertisement already sent for this
    /// computation (reply dedup; the *multiple RREPs* optimisation
    /// allows strictly stronger ones through).
    relayed: Option<(SeqNo, u32)>,
    /// Whether this node replied (as destination or via SDC).
    replied: bool,
    /// Whether a reverse route to the origin was installed.
    reverse_ok: bool,
}

/// A pending route discovery at the origin (the node is *active* for
/// this destination).
#[derive(Clone, Debug)]
struct Discovery {
    generation: u64,
    attempts: u32,
    queue: VecDeque<DataPacket>,
}

/// A Labeled Distance Routing node.
///
/// # Example
///
/// Drive a node directly (the unit-test style) — origination without a
/// route buffers the packet and floods a route request:
///
/// ```
/// use ldr::{Ldr, LdrConfig};
/// use manet_sim::packet::{DataPacket, NodeId};
/// use manet_sim::protocol::{Ctx, RoutingProtocol};
/// use manet_sim::rng::SimRng;
/// use manet_sim::time::SimTime;
///
/// let mut node = Ldr::new(NodeId(0), LdrConfig::default());
/// let mut rng = SimRng::from_seed(1);
/// let mut actions = Vec::new();
/// let mut ctx = Ctx::new(SimTime::from_secs(1), NodeId(0), 50, &mut rng, &mut actions);
/// node.handle_data_origination(&mut ctx, DataPacket {
///     src: NodeId(0), dst: NodeId(7), flow: 0, seq: 0,
///     created: SimTime::from_secs(1), payload_len: 512, ttl: 64, ext: vec![],
/// });
/// assert!(node.is_active_for(NodeId(7)));
/// assert!(!actions.is_empty()); // RREQ broadcast + retry timer
/// ```
#[derive(Clone)]
pub struct Ldr {
    id: NodeId,
    cfg: LdrConfig,
    own_seqno: SeqNo,
    routes: RouteTable,
    cache: FxMap<(NodeId, u32), CacheEntry>,
    pending: FxMap<NodeId, Discovery>,
    next_rreqid: u32,
    next_generation: u64,
    /// Time of the most recent callback (for the auditor snapshot).
    clock: SimTime,
}

impl Ldr {
    /// A new node with the given configuration.
    pub fn new(id: NodeId, cfg: LdrConfig) -> Self {
        Ldr {
            id,
            cfg,
            own_seqno: SeqNo::initial(),
            routes: RouteTable::new(),
            // Pre-sized: one entry per RREQ flood engaged; retain
            // keeps capacity, so this removes all growth rehashes.
            cache: FxMap::with_capacity_and_hasher(256, Default::default()),
            pending: FxMap::default(),
            next_rreqid: 0,
            next_generation: 0,
            clock: SimTime::ZERO,
        }
    }

    /// A factory closure for [`manet_sim::world::World::new`].
    pub fn factory(cfg: LdrConfig) -> impl FnMut(NodeId, usize) -> Box<dyn RoutingProtocol> {
        move |id, _| Box::new(Ldr::new(id, cfg.clone()))
    }

    /// This node's routing table.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// This node's own destination sequence number.
    pub fn own_seqno(&self) -> SeqNo {
        self.own_seqno
    }

    /// Whether a discovery for `dest` is in progress.
    pub fn is_active_for(&self, dest: NodeId) -> bool {
        self.pending.contains_key(&dest)
    }

    // ----- verification hooks ----------------------------------------------
    //
    // Used by the exhaustive model checker (`crates/modelcheck`), which
    // drives the protocol callbacks directly and needs (a) a canonical
    // encoding of the full node state for state-space deduplication and
    // (b) environment transitions — soft-state expiry, the destination
    // raising its own number — that the simulator normally produces via
    // the passage of time.

    /// Forces the route towards `dest` (if any) to expire immediately —
    /// the model checker's route-table-timeout transition. Returns
    /// whether an entry existed. Soft-state only: `sn`/`fd` history is
    /// untouched, exactly as with a natural timeout.
    pub fn force_expire(&mut self, dest: NodeId) -> bool {
        self.routes.force_expire(dest)
    }

    /// Raises this node's own destination sequence number by one — the
    /// model checker's destination-seqno-increment transition (the
    /// owner-only operation of §3).
    pub fn bump_own_seqno(&mut self) {
        self.own_seqno.increment();
    }

    /// How many expanding-ring attempts the *cold* TTL schedule needs
    /// before an RREQ reaches a destination `dist` hops away (capped at
    /// `max_attempts`). The *optimal TTL* optimisation can only seed
    /// the ring at `ttl_start` or above, so this is an upper bound for
    /// warm starts too. Returns `None` when even the final attempt's
    /// TTL cannot reach `dist` — the configuration, not the protocol,
    /// rules the discovery out. The model checker's liveness executor
    /// grants a probe discovery exactly this many attempts: a protocol
    /// whose state loss costs *extra* attempts is the one that stalls.
    pub fn discovery_attempts_for(&self, dist: u32) -> Option<u32> {
        let mut attempt = 1u32;
        while attempt < self.cfg.max_attempts
            && u32::from(self.cfg.ttl_for_attempt(attempt, None)) < dist
        {
            attempt += 1;
        }
        (u32::from(self.cfg.ttl_for_attempt(attempt, None)) >= dist).then_some(attempt)
    }

    /// Appends a canonical byte encoding of the complete protocol state
    /// to `out`. Two `Ldr` values produce the same bytes iff they are
    /// behaviourally identical, which is what the model checker hashes
    /// for state-space deduplication. All map iteration is sorted, so
    /// the encoding is independent of hash-map order.
    pub fn verification_digest(&self, out: &mut Vec<u8>) {
        fn push_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn push_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        push_u64(out, self.own_seqno.to_u64());
        push_u32(out, self.next_rreqid);
        push_u64(out, self.next_generation);
        push_u64(out, self.clock.as_nanos());

        let mut routes: Vec<(&NodeId, &RouteEntry)> = self.routes.iter().collect();
        routes.sort_unstable_by_key(|(d, _)| d.0);
        push_u64(out, routes.len() as u64);
        for (dest, e) in routes {
            out.extend_from_slice(&dest.0.to_le_bytes());
            push_u64(out, e.seqno.to_u64());
            push_u32(out, e.dist);
            push_u32(out, e.fd);
            out.extend_from_slice(&e.next_hop.0.to_le_bytes());
            out.push(u8::from(e.valid));
            push_u64(out, e.expires.as_nanos());
        }

        let mut cache: Vec<(&(NodeId, u32), &CacheEntry)> = self.cache.iter().collect();
        cache.sort_unstable_by_key(|((origin, rreqid), _)| (origin.0, *rreqid));
        push_u64(out, cache.len() as u64);
        for ((origin, rreqid), c) in cache {
            out.extend_from_slice(&origin.0.to_le_bytes());
            push_u32(out, *rreqid);
            out.extend_from_slice(&c.last_hop.0.to_le_bytes());
            push_u64(out, c.expires.as_nanos());
            match c.relayed {
                None => out.push(0),
                Some((sn, d)) => {
                    out.push(1);
                    push_u64(out, sn.to_u64());
                    push_u32(out, d);
                }
            }
            out.push(u8::from(c.replied));
            out.push(u8::from(c.reverse_ok));
        }

        let mut pending: Vec<(&NodeId, &Discovery)> = self.pending.iter().collect();
        pending.sort_unstable_by_key(|(d, _)| d.0);
        push_u64(out, pending.len() as u64);
        for (dest, disc) in pending {
            out.extend_from_slice(&dest.0.to_le_bytes());
            push_u64(out, disc.generation);
            push_u32(out, disc.attempts);
            push_u64(out, disc.queue.len() as u64);
            for p in &disc.queue {
                out.extend_from_slice(&p.src.0.to_le_bytes());
                out.extend_from_slice(&p.dst.0.to_le_bytes());
                push_u32(out, p.flow);
                push_u32(out, p.seq);
                out.push(p.ttl);
            }
        }
    }

    // ----- traced table mutations ------------------------------------------

    /// Procedure 3 with observability: judge one advertisement through
    /// [`RouteTable::consider_advertisement`], emitting the NDC verdict
    /// (with the `(sn, d, fd)` triple before and after) and, when the
    /// table changed, the mutation itself.
    #[allow(clippy::too_many_arguments)]
    fn consider_traced(
        &mut self,
        ctx: &mut Ctx,
        dest: NodeId,
        adv_sn: SeqNo,
        adv_d: Distance,
        via: NodeId,
        now: SimTime,
        expires: SimTime,
    ) -> AdvertOutcome {
        let before = snap(self.routes.get(dest));
        let out = self.routes.consider_advertisement(dest, adv_sn, adv_d, via, now, expires);
        if ctx.trace_enabled() {
            let id = self.id;
            let after = snap(self.routes.get(dest));
            ctx.trace(|| TraceEvent::AdvertConsidered {
                node: id,
                dest,
                from: via,
                adv_sn: adv_sn.to_u64(),
                adv_d,
                before,
                after,
                verdict: verdict(out),
            });
            if matches!(out, AdvertOutcome::Installed | AdvertOutcome::Refreshed) {
                if let Some(e) = self.routes.get(dest) {
                    let next = e.next_hop;
                    let after =
                        InvariantSnapshot { sn: Some(e.seqno.to_u64()), d: e.dist, fd: e.fd };
                    ctx.trace(|| TraceEvent::RouteInstall { node: id, dest, next, before, after });
                }
            }
        }
        out
    }

    // ----- discovery (Procedure 1) -----------------------------------------

    fn queue_and_discover(&mut self, ctx: &mut Ctx, data: DataPacket) {
        let dest = data.dst;
        match self.pending.get_mut(&dest) {
            Some(d) => {
                if d.queue.len() >= self.cfg.buffer_cap {
                    ctx.drop_data(data, DropReason::BufferOverflow);
                } else {
                    d.queue.push_back(data);
                }
            }
            None => {
                let generation = self.next_generation;
                self.next_generation += 1;
                let mut queue = VecDeque::new();
                queue.push_back(data);
                self.pending.insert(dest, Discovery { generation, attempts: 1, queue });
                ctx.count(ProtoCounter::DiscoveryStarted);
                self.send_rreq(ctx, dest, 1, generation);
            }
        }
    }

    fn send_rreq(&mut self, ctx: &mut Ctx, dest: NodeId, attempt: u32, generation: u64) {
        let inv = self.routes.invariants(dest);
        let fd_req = self.cfg.answering_distance(inv.fd);
        let prior = (inv.d != INFINITY).then_some((inv.d, fd_req));
        let ttl = self.cfg.ttl_for_attempt(attempt, prior);
        let rreqid = self.next_rreqid;
        self.next_rreqid += 1;
        let rreq = Rreq {
            dst: dest,
            sn_dst: inv.sn,
            rreqid,
            src: self.id,
            sn_src: self.own_seqno,
            fd: fd_req,
            dist: 0,
            ttl,
            t_bit: false,
            n_bit: false,
            d_bit: false,
        };
        ctx.broadcast(ControlKind::Rreq, rreq.encode(), true);
        let id = self.id;
        ctx.trace(|| TraceEvent::RreqStart { node: id, dest, rreqid, ttl });
        ctx.set_timer(self.cfg.discovery_timeout(ttl), discovery_token(dest, generation));
    }

    fn finish_success(&mut self, ctx: &mut Ctx, dest: NodeId) {
        let Some(mut d) = self.pending.remove(&dest) else { return };
        ctx.count(ProtoCounter::DiscoverySucceeded);
        let now = ctx.now();
        while let Some(p) = d.queue.pop_front() {
            match self.routes.active(dest, now).copied() {
                Some(e) => {
                    self.routes.refresh(dest, now + self.cfg.active_route_timeout);
                    ctx.send_data(e.next_hop, p);
                }
                None => ctx.drop_data(p, DropReason::NoRoute),
            }
        }
    }

    // ----- solicitation handling (Procedure 2) -----------------------------

    fn handle_rreq(&mut self, ctx: &mut Ctx, prev: NodeId, rreq: Rreq) {
        if rreq.src == self.id {
            // A node may not relay its own solicitation (it is active,
            // never engaged, for its own computations).
            return;
        }
        let now = ctx.now();
        let art = self.cfg.active_route_timeout;

        // The RREQ doubles as an advertisement of the origin: try to
        // install/refresh the reverse route (unless the N bit voided it).
        let reverse_ok = if rreq.n_bit {
            self.routes.active(rreq.src, now).is_some()
        } else {
            let out =
                self.consider_traced(ctx, rreq.src, rreq.sn_src, rreq.dist, prev, now, now + art);
            out.usable() || self.routes.active(rreq.src, now).is_some()
        };

        // "Request as error" (§4): if my successor towards D is itself
        // soliciting D, it evidently lost its route.
        if self.cfg.opt_request_as_error && !rreq.d_bit && rreq.dst != self.id {
            if let Some(e) = self.routes.active(rreq.dst, now).copied() {
                if e.next_hop == prev && rreq.fd > e.dist.saturating_sub(1) {
                    self.routes.invalidate(rreq.dst, now);
                    let id = self.id;
                    let dest = rreq.dst;
                    let sn = e.seqno.to_u64();
                    ctx.trace(|| TraceEvent::RouteInvalidate {
                        node: id,
                        dest,
                        seqno: Some(sn),
                        cause: InvalidateCause::RequestAsError,
                    });
                }
            }
        }

        // Engagement: a node enters each computation at most once; later
        // broadcast copies are ignored. A unicast (D-bit) copy is still
        // *forwarded* by an engaged node — it travels on successor
        // paths, which Theorem 3 shows cannot loop — but the original
        // reverse-path cache entry is retained.
        let key = (rreq.src, rreq.rreqid);
        let engaged = self.cache.get(&key).is_some_and(|c| c.expires > now);
        if engaged && !rreq.d_bit {
            return;
        }
        if !engaged {
            self.cache.insert(
                key,
                CacheEntry {
                    last_hop: prev,
                    expires: now + self.cfg.rreq_cache_ttl,
                    relayed: None,
                    replied: false,
                    reverse_ok,
                },
            );
        }

        if rreq.dst == self.id {
            self.reply_as_destination(ctx, prev, &rreq, now);
            return;
        }

        let sol = Solicited { sn: rreq.sn_dst, fd: rreq.fd, rr: rreq.t_bit };
        let active = self.routes.active(rreq.dst, now).copied();

        if let Some(e) = active {
            let lifetime_ok = e.expires.saturating_since(now) >= self.cfg.min_reply_lifetime();
            let mine = e.invariants();
            // SDC; on a D-bit (path-reset) solicitation only a strictly
            // newer sequence number may answer in the destination's
            // stead.
            let allowed = if rreq.d_bit {
                crate::seqno::newer(mine.sn, sol.sn)
            } else {
                invariants::sdc_allows(mine, sol)
            };
            {
                let id = self.id;
                let dest = rreq.dst;
                let t_bit = rreq.t_bit;
                let ok = lifetime_ok && allowed;
                ctx.trace(|| TraceEvent::SolicitVerdict { node: id, dest, t_bit, allowed: ok });
            }
            if lifetime_ok && allowed {
                self.send_rrep_from_route(ctx, prev, &rreq, reverse_ok, now);
                return;
            }
            // Path reset (§2.2): the first node that satisfies SDC
            // ignoring the T bit unicasts the solicitation towards the
            // destination so it can raise its sequence number.
            if !rreq.d_bit
                && rreq.t_bit
                && lifetime_ok
                && invariants::sdc_allows_ignoring_t(mine, sol)
            {
                let st = invariants::strengthen(self.routes.invariants(rreq.dst), sol);
                let needed = (e.dist.min(250) as u8).saturating_add(self.cfg.local_add_ttl);
                let fwd = Rreq {
                    sn_dst: st.sn,
                    fd: st.fd,
                    t_bit: true,
                    d_bit: true,
                    n_bit: rreq.n_bit || !reverse_ok,
                    dist: rreq.dist.saturating_add(1),
                    ttl: needed.max(rreq.ttl),
                    ..rreq
                };
                ctx.unicast_control(e.next_hop, ControlKind::Rreq, fwd.encode(), false, false);
                let id = self.id;
                let (dest, origin) = (rreq.dst, rreq.src);
                ctx.trace(|| TraceEvent::RreqRelay { node: id, dest, origin });
                return;
            }
        }

        // Plain relay with strengthened invariants (Eqs. 5–8).
        if rreq.ttl <= 1 {
            return;
        }
        let st = invariants::strengthen(self.routes.invariants(rreq.dst), sol);
        let fwd = Rreq {
            sn_dst: st.sn,
            fd: st.fd,
            t_bit: st.rr,
            n_bit: rreq.n_bit || !reverse_ok,
            d_bit: rreq.d_bit,
            dist: rreq.dist.saturating_add(1),
            ttl: rreq.ttl - 1,
            ..rreq
        };
        let relayed = if rreq.d_bit {
            if let Some(e) = active {
                ctx.unicast_control(e.next_hop, ControlKind::Rreq, fwd.encode(), false, false);
                true
            } else {
                // Without an active route the reset attempt dies here;
                // the origin's timer will retry.
                false
            }
        } else {
            ctx.broadcast(ControlKind::Rreq, fwd.encode(), false);
            true
        };
        if relayed {
            let id = self.id;
            let (dest, origin) = (rreq.dst, rreq.src);
            ctx.trace(|| TraceEvent::RreqRelay { node: id, dest, origin });
        }
    }

    fn reply_as_destination(&mut self, ctx: &mut Ctx, prev: NodeId, rreq: &Rreq, _now: SimTime) {
        let key = (rreq.src, rreq.rreqid);
        if self.cache.get(&key).is_some_and(|c| c.replied) {
            // Only one advertisement per (source, rreqid) pair.
            return;
        }
        // Only the destination increments its own number. A request can
        // never carry a newer number than ours, but be defensive.
        if let Some(snr) = rreq.sn_dst {
            if snr > self.own_seqno {
                self.own_seqno = snr;
            }
        }
        if rreq.t_bit {
            // Path reset: if our current number does not already exceed
            // the requested one, move past it.
            let exceeds = rreq.sn_dst.is_some_and(|snr| self.own_seqno > snr);
            if !exceeds {
                let old = self.own_seqno.to_u64();
                self.own_seqno.increment();
                ctx.count(ProtoCounter::SeqnoIncrement);
                let id = self.id;
                let new = self.own_seqno.to_u64();
                ctx.trace(|| TraceEvent::SeqnoReset { node: id, old, new });
            }
        }
        let reverse_ok = self.cache.get(&key).is_some_and(|c| c.reverse_ok);
        let rrep = Rrep {
            dst: self.id,
            sn_dst: self.own_seqno,
            src: rreq.src,
            rreqid: rreq.rreqid,
            dist: 0,
            lifetime_ms: (self.cfg.my_route_timeout.as_millis()).min(u64::from(u32::MAX)) as u32,
            n_bit: rreq.n_bit || !reverse_ok,
        };
        ctx.unicast_control(prev, ControlKind::Rrep, rrep.encode(), true, true);
        let id = self.id;
        ctx.trace(|| TraceEvent::RrepSend { node: id, dest: id, to: prev, dist: 0 });
        if let Some(c) = self.cache.get_mut(&key) {
            c.replied = true;
            c.relayed = Some((self.own_seqno, 0));
        }
    }

    /// SDC reply from an intermediate node's active route.
    fn send_rrep_from_route(
        &mut self,
        ctx: &mut Ctx,
        prev: NodeId,
        rreq: &Rreq,
        reverse_ok: bool,
        now: SimTime,
    ) {
        let Some(e) = self.routes.active(rreq.dst, now).copied() else { return };
        let remaining = e.expires.saturating_since(now).as_millis().min(u64::from(u32::MAX)) as u32;
        let rrep = Rrep {
            dst: rreq.dst,
            sn_dst: e.seqno,
            src: rreq.src,
            rreqid: rreq.rreqid,
            dist: e.dist,
            lifetime_ms: remaining,
            n_bit: rreq.n_bit || !reverse_ok,
        };
        ctx.unicast_control(prev, ControlKind::Rrep, rrep.encode(), true, true);
        let id = self.id;
        let (dest, dist) = (rreq.dst, e.dist);
        ctx.trace(|| TraceEvent::RrepSend { node: id, dest, to: prev, dist });
        if let Some(c) = self.cache.get_mut(&(rreq.src, rreq.rreqid)) {
            c.replied = true;
            c.relayed = Some((e.seqno, e.dist));
        }
    }

    // ----- advertisement handling (Procedures 3 & 4) -----------------------

    fn handle_rrep(&mut self, ctx: &mut Ctx, prev: NodeId, rrep: Rrep) {
        let now = ctx.now();
        let lifetime = SimDuration::from_millis(u64::from(rrep.lifetime_ms));
        let out =
            self.consider_traced(ctx, rrep.dst, rrep.sn_dst, rrep.dist, prev, now, now + lifetime);
        if out.usable() {
            ctx.count(ProtoCounter::RrepUsableRecv);
        }
        if rrep.src == self.id {
            // Terminus: the computation ends on the first feasible
            // advertisement.
            if self.routes.active(rrep.dst, now).is_some() {
                let had_pending = self.pending.contains_key(&rrep.dst);
                self.finish_success(ctx, rrep.dst);
                if rrep.n_bit && had_pending && self.cfg.opt_reverse_probe {
                    self.send_reverse_probe(ctx, rrep.dst, now);
                }
            }
            return;
        }
        // Relay along the computation's reverse path (never the routing
        // table), substituting this node's own invariants (Procedure 4).
        let key = (rrep.src, rrep.rreqid);
        let Some(c) = self.cache.get(&key) else { return };
        if c.expires <= now {
            return;
        }
        let last_hop = c.last_hop;
        let reverse_ok = c.reverse_ok;
        let relayed = c.relayed;
        let Some(e) = self.routes.active(rrep.dst, now).copied() else {
            // Cannot issue an advertisement without an active route —
            // even when our stored invariants are stronger (§2.2).
            return;
        };
        let allowed = match relayed {
            None => true,
            Some((psn, pd)) => {
                self.cfg.opt_multiple_rreps && (e.seqno > psn || (e.seqno == psn && e.dist < pd))
            }
        };
        if !allowed {
            return;
        }
        if let Some(c) = self.cache.get_mut(&key) {
            c.relayed = Some((e.seqno, e.dist));
        }
        let remaining = e.expires.saturating_since(now).as_millis().min(u64::from(u32::MAX)) as u32;
        let fwd = Rrep {
            dst: rrep.dst,
            sn_dst: e.seqno,
            src: rrep.src,
            rreqid: rrep.rreqid,
            dist: e.dist,
            lifetime_ms: remaining,
            n_bit: rrep.n_bit || !reverse_ok,
        };
        ctx.unicast_control(last_hop, ControlKind::Rrep, fwd.encode(), false, true);
        let id = self.id;
        let (dest, dist) = (rrep.dst, e.dist);
        ctx.trace(|| TraceEvent::RrepSend { node: id, dest, to: last_hop, dist });
    }

    /// After completing a discovery whose RREP carried the N bit (no
    /// reverse path), rebuild the reverse path: raise our own sequence
    /// number and unicast a D-bit probe RREQ along the forward path.
    fn send_reverse_probe(&mut self, ctx: &mut Ctx, dest: NodeId, now: SimTime) {
        let Some(e) = self.routes.active(dest, now).copied() else { return };
        let old = self.own_seqno.to_u64();
        self.own_seqno.increment();
        ctx.count(ProtoCounter::SeqnoIncrement);
        let id = self.id;
        let new = self.own_seqno.to_u64();
        ctx.trace(|| TraceEvent::SeqnoReset { node: id, old, new });
        let rreqid = self.next_rreqid;
        self.next_rreqid += 1;
        let inv = self.routes.invariants(dest);
        let rreq = Rreq {
            dst: dest,
            sn_dst: inv.sn,
            rreqid,
            src: self.id,
            sn_src: self.own_seqno,
            fd: self.cfg.answering_distance(inv.fd),
            dist: 0,
            ttl: (e.dist.min(250) as u8).saturating_add(self.cfg.local_add_ttl),
            t_bit: false,
            n_bit: false,
            d_bit: true,
        };
        let ttl = rreq.ttl;
        ctx.unicast_control(e.next_hop, ControlKind::Rreq, rreq.encode(), true, false);
        ctx.trace(|| TraceEvent::RreqStart { node: id, dest, rreqid, ttl });
    }

    // ----- errors -----------------------------------------------------------

    fn handle_rerr(&mut self, ctx: &mut Ctx, prev: NodeId, rerr: Rerr) {
        let now = ctx.now();
        let mut propagate = Vec::new();
        let id = self.id;
        for en in &rerr.entries {
            if let Some(me) = self.routes.get(en.dst).copied() {
                if me.is_active(now) && me.next_hop == prev {
                    self.routes.invalidate(en.dst, now);
                    let dest = en.dst;
                    let sn = me.seqno.to_u64();
                    ctx.trace(|| TraceEvent::RouteInvalidate {
                        node: id,
                        dest,
                        seqno: Some(sn),
                        cause: InvalidateCause::RouteError,
                    });
                    propagate.push(RerrEntry { dst: en.dst, sn: Some(me.seqno) });
                }
            }
            if let Some(sn) = en.sn {
                let adopts = self.routes.get(en.dst).is_none_or(|e| sn > e.seqno);
                self.routes.adopt_seqno(en.dst, sn);
                if adopts {
                    let dest = en.dst;
                    let snv = sn.to_u64();
                    ctx.trace(|| TraceEvent::RouteInvalidate {
                        node: id,
                        dest,
                        seqno: Some(snv),
                        cause: InvalidateCause::SeqnoAdopted,
                    });
                }
            }
        }
        if !propagate.is_empty() {
            let dests: Vec<NodeId> = propagate.iter().map(|e| e.dst).collect();
            ctx.broadcast(ControlKind::Rerr, Rerr { entries: propagate }.encode(), false);
            ctx.trace(|| TraceEvent::RerrSend { node: id, dests });
        }
    }
}

impl RoutingProtocol for Ldr {
    fn name(&self) -> &'static str {
        "LDR"
    }

    fn start(&mut self, ctx: &mut Ctx) {
        self.clock = ctx.now();
        ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
    }

    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.clock = ctx.now();
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        let now = ctx.now();
        match self.routes.active(data.dst, now).copied() {
            Some(e) => {
                self.routes.refresh(data.dst, now + self.cfg.active_route_timeout);
                ctx.send_data(e.next_hop, data);
            }
            None => self.queue_and_discover(ctx, data),
        }
    }

    fn handle_data_packet(&mut self, ctx: &mut Ctx, _prev_hop: NodeId, mut data: DataPacket) {
        self.clock = ctx.now();
        let now = ctx.now();
        // Data traffic keeps both route directions warm.
        self.routes.refresh(data.src, now + self.cfg.active_route_timeout);
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        if data.ttl == 0 {
            ctx.drop_data(data, DropReason::TtlExpired);
            return;
        }
        data.ttl -= 1;
        match self.routes.active(data.dst, now).copied() {
            Some(e) => {
                self.routes.refresh(data.dst, now + self.cfg.active_route_timeout);
                ctx.send_data(e.next_hop, data);
            }
            None => {
                // Mid-path break: tell the upstream and drop.
                let sn = self.routes.get(data.dst).map(|e| e.seqno);
                let rerr = Rerr { entries: vec![RerrEntry { dst: data.dst, sn }] };
                ctx.broadcast(ControlKind::Rerr, rerr.encode(), true);
                let id = self.id;
                let dst = data.dst;
                ctx.trace(|| TraceEvent::RerrSend { node: id, dests: vec![dst] });
                ctx.drop_data(data, DropReason::NoRoute);
            }
        }
    }

    fn handle_control(
        &mut self,
        ctx: &mut Ctx,
        prev_hop: NodeId,
        ctrl: ControlPacket,
        _was_broadcast: bool,
    ) {
        self.clock = ctx.now();
        match ctrl.kind {
            ControlKind::Rreq => match Rreq::decode(&ctrl.bytes) {
                Some(m) => self.handle_rreq(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rreq),
            },
            ControlKind::Rrep => match Rrep::decode(&ctrl.bytes) {
                Some(m) => self.handle_rrep(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rrep),
            },
            ControlKind::Rerr => match Rerr::decode(&ctrl.bytes) {
                Some(m) => self.handle_rerr(ctx, prev_hop, m),
                None => ctx.drop_malformed(ControlKind::Rerr),
            },
            _ => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.clock = ctx.now();
        if token == CLEANUP_TOKEN {
            let now = ctx.now();
            self.cache.retain(|_, c| c.expires > now);
            ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
            return;
        }
        let dest = NodeId((token >> 32) as u16);
        let gen32 = token & 0xFFFF_FFFF;
        let now = ctx.now();
        let Some(d) = self.pending.get(&dest) else { return };
        if (d.generation & 0xFFFF_FFFF) != gen32 {
            return;
        }
        if self.routes.active(dest, now).is_some() {
            self.finish_success(ctx, dest);
            return;
        }
        let attempts = d.attempts + 1;
        if attempts > self.cfg.max_attempts {
            if let Some(d) = self.pending.remove(&dest) {
                for p in d.queue {
                    ctx.drop_data(p, DropReason::NoRoute);
                }
            }
            ctx.count(ProtoCounter::DiscoveryFailed);
        } else if let Some(d) = self.pending.get_mut(&dest) {
            let generation = d.generation;
            d.attempts = attempts;
            self.send_rreq(ctx, dest, attempts, generation);
        }
    }

    fn handle_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.clock = ctx.now();
        let now = ctx.now();
        let lost = self.routes.invalidate_via(next_hop, now);
        let id = self.id;
        for &(dst, sn) in &lost {
            let snv = sn.to_u64();
            ctx.trace(|| TraceEvent::RouteInvalidate {
                node: id,
                dest: dst,
                seqno: Some(snv),
                cause: InvalidateCause::LinkFailure,
            });
        }
        if let PacketBody::Data(data) = packet.body {
            if data.src == self.id {
                // Re-discover with the feasible-distance invariant
                // intact — LDR does *not* raise anyone's sequence
                // number here (that is AODV's move).
                self.queue_and_discover(ctx, data);
            } else {
                ctx.drop_data(data, DropReason::NoRoute);
            }
        }
        if !lost.is_empty() {
            let dests: Vec<NodeId> = lost.iter().map(|&(dst, _)| dst).collect();
            let entries =
                lost.into_iter().map(|(dst, sn)| RerrEntry { dst, sn: Some(sn) }).collect();
            ctx.broadcast(ControlKind::Rerr, Rerr { entries }.encode(), true);
            ctx.trace(|| TraceEvent::RerrSend { node: id, dests });
        }
    }

    fn handle_reboot(&mut self, ctx: &mut Ctx) {
        // The explicit restart callback: driven by the simulator's
        // fault layer (`FaultAction::CrashRestart`) and by the model
        // checker's `Restart` transition, so destination sequence-number
        // recovery is exercised honestly rather than assumed.
        self.clock = ctx.now();
        // Volatile state is gone. The real-time clock survives, so the
        // fresh epoch dominates every number we issued before the crash
        // — no AODV-style reboot-hold quarantine is needed (§3).
        let epoch = self.own_seqno.epoch + 1;
        self.own_seqno = SeqNo::after_reboot(epoch);
        self.routes = RouteTable::new();
        self.cache.clear();
        self.pending.clear();
        ctx.set_timer(CLEANUP_INTERVAL, CLEANUP_TOKEN);
    }

    fn route_successors(&self) -> Vec<(NodeId, NodeId)> {
        self.routes.successors(self.clock)
    }

    fn route_table_dump(&self) -> Vec<RouteDump> {
        let mut v: Vec<RouteDump> = self
            .routes
            .iter()
            .map(|(&dest, e)| RouteDump {
                dest,
                next: e.next_hop,
                dist: e.dist,
                feasible_dist: Some(e.fd),
                seqno: Some(e.seqno.to_u64()),
                valid: e.is_active(self.clock),
            })
            .collect();
        v.sort_unstable_by_key(|r| r.dest.0);
        v
    }

    fn own_seqno_value(&self) -> Option<f64> {
        Some(
            f64::from(self.own_seqno.epoch - 1) * 2f64.powi(32) + f64::from(self.own_seqno.counter),
        )
    }

    fn telemetry_snapshot(&self) -> RouteTelemetry {
        // Counted directly off the table — the sampler calls this every
        // interval on every node, so skip the `route_table_dump`
        // allocation and sort.
        let (mut entries, mut valid) = (0, 0);
        for (_, e) in self.routes.iter() {
            entries += 1;
            if e.is_active(self.clock) {
                valid += 1;
            }
        }
        RouteTelemetry { entries, valid }
    }
}

#[cfg(test)]
mod tests;
