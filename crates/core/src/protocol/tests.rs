//! Unit tests driving the LDR state machine callback-by-callback and
//! inspecting the queued actions — no simulator required.

use super::*;
use manet_sim::protocol::Action;
use manet_sim::rng::SimRng;

/// Test harness around one LDR node.
struct Node {
    ldr: Ldr,
    rng: SimRng,
    now: SimTime,
}

impl Node {
    fn new(id: u16) -> Self {
        Self::with_cfg(id, LdrConfig::default())
    }

    fn with_cfg(id: u16, cfg: LdrConfig) -> Self {
        Node {
            ldr: Ldr::new(NodeId(id), cfg),
            rng: SimRng::from_seed(u64::from(id)),
            now: SimTime::from_secs(1),
        }
    }

    fn at(&mut self, t: SimTime) -> &mut Self {
        self.now = t;
        self
    }

    fn call<F>(&mut self, f: F) -> Vec<Action>
    where
        F: FnOnce(&mut Ldr, &mut Ctx),
    {
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(self.now, self.ldr.id, 50, &mut self.rng, &mut actions);
        f(&mut self.ldr, &mut ctx);
        actions
    }

    fn originate(&mut self, data: DataPacket) -> Vec<Action> {
        self.call(|l, ctx| l.handle_data_origination(ctx, data))
    }

    fn data_from(&mut self, prev: u16, data: DataPacket) -> Vec<Action> {
        self.call(|l, ctx| l.handle_data_packet(ctx, NodeId(prev), data))
    }

    fn rreq_from(&mut self, prev: u16, m: Rreq) -> Vec<Action> {
        self.call(|l, ctx| l.handle_rreq(ctx, NodeId(prev), m))
    }

    fn rrep_from(&mut self, prev: u16, m: Rrep) -> Vec<Action> {
        self.call(|l, ctx| l.handle_rrep(ctx, NodeId(prev), m))
    }

    fn rerr_from(&mut self, prev: u16, m: Rerr) -> Vec<Action> {
        self.call(|l, ctx| l.handle_rerr(ctx, NodeId(prev), m))
    }

    fn timer(&mut self, token: u64) -> Vec<Action> {
        self.call(|l, ctx| l.handle_timer(ctx, token))
    }

    fn link_failure(&mut self, next: u16, data: DataPacket) -> Vec<Action> {
        let packet = Packet { uid: 1, origin: self.ldr.id, body: PacketBody::Data(data) };
        self.call(|l, ctx| l.handle_unicast_failure(ctx, NodeId(next), packet))
    }

    /// Installs a route by feeding an RREP advertisement directly.
    fn install_route(&mut self, dest: u16, sn: SeqNo, adv_dist: u32, via: u16) {
        let m = Rrep {
            dst: NodeId(dest),
            sn_dst: sn,
            src: NodeId(9999 % 50), // not us (tests use small ids)
            rreqid: 999_000 + u32::from(dest),
            dist: adv_dist,
            lifetime_ms: 6000,
            n_bit: false,
        };
        // Use a src that is definitely not this node so the RREP is a
        // "relay" path; without a cache entry it installs then drops.
        let m = Rrep { src: NodeId(49), ..m };
        assert_ne!(m.src, self.ldr.id, "test helper misuse");
        self.rrep_from(via, m);
        assert!(self.ldr.routes.active(NodeId(dest), self.now).is_some());
    }
}

fn sn(c: u32) -> SeqNo {
    SeqNo { epoch: 1, counter: c }
}

fn data(src: u16, dst: u16) -> DataPacket {
    DataPacket {
        src: NodeId(src),
        dst: NodeId(dst),
        flow: 1,
        seq: 0,
        created: SimTime::from_secs(1),
        payload_len: 512,
        ttl: 64,
        ext: vec![],
    }
}

fn base_rreq(src: u16, dst: u16, rreqid: u32) -> Rreq {
    Rreq {
        dst: NodeId(dst),
        sn_dst: None,
        rreqid,
        src: NodeId(src),
        sn_src: sn(0),
        fd: INFINITY,
        dist: 0,
        ttl: 10,
        t_bit: false,
        n_bit: false,
        d_bit: false,
    }
}

fn sent_rreqs(actions: &[Action]) -> Vec<(Rreq, bool, Option<NodeId>)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast { ctrl, initiated } if ctrl.kind == ControlKind::Rreq => {
                Some((Rreq::decode(&ctrl.bytes).unwrap(), *initiated, None))
            }
            Action::UnicastControl { next, ctrl, initiated, .. }
                if ctrl.kind == ControlKind::Rreq =>
            {
                Some((Rreq::decode(&ctrl.bytes).unwrap(), *initiated, Some(*next)))
            }
            _ => None,
        })
        .collect()
}

fn sent_rreps(actions: &[Action]) -> Vec<(Rrep, bool, NodeId)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::UnicastControl { next, ctrl, initiated, .. }
                if ctrl.kind == ControlKind::Rrep =>
            {
                Some((Rrep::decode(&ctrl.bytes).unwrap(), *initiated, *next))
            }
            _ => None,
        })
        .collect()
}

fn sent_rerrs(actions: &[Action]) -> Vec<Rerr> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast { ctrl, .. } if ctrl.kind == ControlKind::Rerr => {
                Rerr::decode(&ctrl.bytes)
            }
            _ => None,
        })
        .collect()
}

fn sent_data(actions: &[Action]) -> Vec<(NodeId, DataPacket)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::SendData { next, data } => Some((*next, data.clone())),
            _ => None,
        })
        .collect()
}

fn counted(actions: &[Action], which: ProtoCounter) -> u64 {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Count { which: w, amount } if *w == which => Some(*amount),
            _ => None,
        })
        .sum()
}

fn dropped(actions: &[Action]) -> Vec<DropReason> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::DropData { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect()
}

// ----- Procedure 1: initiation -------------------------------------------

#[test]
fn origination_without_route_floods_rreq_and_buffers() {
    let mut n = Node::new(0);
    let acts = n.originate(data(0, 7));
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    let (m, initiated, to) = &rreqs[0];
    assert!(initiated);
    assert_eq!(*to, None, "discovery RREQ is a broadcast");
    assert_eq!(m.dst, NodeId(7));
    assert_eq!(m.sn_dst, None, "no prior information");
    assert_eq!(m.fd, INFINITY);
    assert_eq!(m.dist, 0);
    assert!(!m.t_bit && !m.n_bit && !m.d_bit);
    assert_eq!(counted(&acts, ProtoCounter::DiscoveryStarted), 1);
    assert!(acts.iter().any(|a| matches!(a, Action::SetTimer { .. })));
    assert!(n.ldr.is_active_for(NodeId(7)));
    assert!(sent_data(&acts).is_empty(), "data must wait for the route");
}

#[test]
fn second_packet_while_active_is_queued_not_reflooded() {
    let mut n = Node::new(0);
    n.originate(data(0, 7));
    let acts = n.originate(data(0, 7));
    assert!(sent_rreqs(&acts).is_empty(), "one computation per destination");
    assert_eq!(counted(&acts, ProtoCounter::DiscoveryStarted), 0);
}

#[test]
fn buffer_overflow_drops_excess_packets() {
    let cfg = LdrConfig { buffer_cap: 2, ..LdrConfig::default() };
    let mut n = Node::with_cfg(0, cfg);
    n.originate(data(0, 7));
    n.originate(data(0, 7));
    let acts = n.originate(data(0, 7));
    assert_eq!(dropped(&acts), vec![DropReason::BufferOverflow]);
}

#[test]
fn origination_with_active_route_sends_immediately() {
    let mut n = Node::new(0);
    n.install_route(7, sn(1), 2, 3);
    let acts = n.originate(data(0, 7));
    let sent = sent_data(&acts);
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].0, NodeId(3));
    assert!(sent_rreqs(&acts).is_empty());
}

// ----- Procedure 2: relaying solicitations --------------------------------

#[test]
fn uninformed_relay_rebroadcasts_with_incremented_distance() {
    let mut n = Node::new(5);
    let acts = n.rreq_from(2, base_rreq(0, 7, 1));
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    let (m, initiated, to) = &rreqs[0];
    assert!(!initiated, "a relay does not initiate");
    assert_eq!(*to, None);
    assert_eq!(m.dist, 1);
    assert_eq!(m.ttl, 9);
    assert!(!m.t_bit, "no information leaves the T bit alone");
    // Reverse route to the origin was installed from the embedded
    // advertisement.
    let e = n.ldr.routes.active(NodeId(0), n.now).unwrap();
    assert_eq!(e.next_hop, NodeId(2));
    assert_eq!(e.dist, 1);
}

#[test]
fn engaged_node_ignores_duplicate_broadcast() {
    let mut n = Node::new(5);
    n.rreq_from(2, base_rreq(0, 7, 1));
    let acts = n.rreq_from(3, base_rreq(0, 7, 1));
    assert!(acts.is_empty(), "a node enters a computation at most once");
}

#[test]
fn node_never_relays_its_own_solicitation() {
    let mut n = Node::new(0);
    let acts = n.rreq_from(2, base_rreq(0, 7, 1));
    assert!(acts.is_empty());
}

#[test]
fn ttl_exhaustion_stops_the_flood() {
    let mut n = Node::new(5);
    let m = Rreq { ttl: 1, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert!(sent_rreqs(&acts).is_empty());
}

#[test]
fn sdc_satisfied_relay_answers_instead_of_flooding() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 1, 6); // dist 2, fd 2
    let m = Rreq { sn_dst: Some(sn(3)), fd: 5, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps.len(), 1);
    let (r, initiated, to) = &rreps[0];
    assert!(initiated, "an SDC answer counts as an initiated RREP");
    assert_eq!(*to, NodeId(2), "reply follows the reverse path");
    assert_eq!(r.dist, 2);
    assert_eq!(r.sn_dst, sn(3));
    assert!(sent_rreqs(&acts).is_empty());
}

#[test]
fn fdc_violation_sets_t_bit_in_relay() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 3, 6); // dist 4, fd 4
                                     // Make the route stale so SDC can't answer but the history remains.
    n.ldr.routes.invalidate(NodeId(7), n.now);
    // Requester wants fd# = 3 at the same sequence number; our fd 4 >= 3.
    let m = Rreq { sn_dst: Some(sn(3)), fd: 3, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert!(rreqs[0].0.t_bit, "ordering violation must set the reset bit");
    assert_eq!(rreqs[0].0.fd, 3, "fd# unchanged by a weaker relay");
}

#[test]
fn ordered_relay_strengthens_fd_and_preserves_t() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 1, 6); // dist 2, fd 2
    n.ldr.routes.invalidate(NodeId(7), n.now); // history only
    let m = Rreq { sn_dst: Some(sn(3)), fd: 5, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert!(!rreqs[0].0.t_bit);
    assert_eq!(rreqs[0].0.fd, 2, "fd#' = min(fd_B, fd#)");
}

#[test]
fn newer_seqno_relay_clears_t_and_resets_invariants() {
    let mut n = Node::new(5);
    n.install_route(7, sn(9), 4, 6); // sn 9, dist 5, fd 5 — but invalid
    n.ldr.routes.invalidate(NodeId(7), n.now);
    let m = Rreq { sn_dst: Some(sn(3)), fd: 2, t_bit: true, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    let fwd = rreqs[0].0;
    assert!(!fwd.t_bit, "higher sn# acts as the reset");
    assert_eq!(fwd.sn_dst, Some(sn(9)));
    assert_eq!(fwd.fd, 5);
}

// ----- destination behaviour ----------------------------------------------

#[test]
fn destination_replies_with_distance_zero_and_own_seqno() {
    let mut n = Node::new(7);
    let acts = n.rreq_from(2, base_rreq(0, 7, 1));
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps.len(), 1);
    let (r, initiated, to) = &rreps[0];
    assert!(initiated);
    assert_eq!(*to, NodeId(2));
    assert_eq!(r.dist, 0);
    assert_eq!(r.sn_dst, n.ldr.own_seqno());
    assert_eq!(r.dst, NodeId(7));
    assert_eq!(r.src, NodeId(0));
}

#[test]
fn destination_answers_each_computation_once() {
    let mut n = Node::new(7);
    n.rreq_from(2, base_rreq(0, 7, 1));
    // A D-bit copy of the same computation must not produce a second
    // advertisement.
    let m = Rreq { d_bit: true, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(3, m);
    assert!(sent_rreps(&acts).is_empty());
    // A *new* rreqid is a new computation.
    let acts = n.rreq_from(2, base_rreq(0, 7, 2));
    assert_eq!(sent_rreps(&acts).len(), 1);
}

#[test]
fn t_bit_request_makes_destination_increment_seqno() {
    let mut n = Node::new(7);
    let before = n.ldr.own_seqno();
    let m = Rreq { sn_dst: Some(before), t_bit: true, fd: 3, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert!(n.ldr.own_seqno() > before, "path reset increments the owner's number");
    assert_eq!(counted(&acts, ProtoCounter::SeqnoIncrement), 1);
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps[0].0.sn_dst, n.ldr.own_seqno());
}

#[test]
fn t_bit_request_with_stale_seqno_needs_no_increment() {
    let mut n = Node::new(7);
    // Raise our own number past the request's first.
    let old = n.ldr.own_seqno();
    let m1 = Rreq { sn_dst: Some(old), t_bit: true, fd: 3, ..base_rreq(0, 7, 1) };
    n.rreq_from(2, m1);
    let now_sn = n.ldr.own_seqno();
    assert!(now_sn > old);
    // A reset request against the *old* number is already satisfied.
    let m2 = Rreq { sn_dst: Some(old), t_bit: true, fd: 3, ..base_rreq(1, 7, 5) };
    let acts = n.rreq_from(3, m2);
    assert_eq!(n.ldr.own_seqno(), now_sn, "current number already exceeds the request");
    assert_eq!(counted(&acts, ProtoCounter::SeqnoIncrement), 0);
    assert_eq!(sent_rreps(&acts)[0].0.sn_dst, now_sn);
}

#[test]
fn only_the_destination_increments_its_number() {
    // A relay processing solicitations/advertisements for 7 never
    // touches its own sequence number on 7's behalf.
    let mut n = Node::new(5);
    let before = n.ldr.own_seqno();
    n.rreq_from(2, Rreq { t_bit: true, sn_dst: Some(sn(4)), fd: 2, ..base_rreq(0, 7, 1) });
    assert_eq!(n.ldr.own_seqno(), before);
}

// ----- path reset via unicast (T bit, D bit) -------------------------------

#[test]
fn sdc_without_t_node_unicasts_reset_request_to_destination() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 1, 6); // dist 2, fd 2: satisfies d < fd# below
    let m = Rreq { sn_dst: Some(sn(3)), fd: 4, t_bit: true, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert!(sent_rreps(&acts).is_empty(), "T bit forbids a same-sn answer");
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    let (fwd, _, to) = &rreqs[0];
    assert_eq!(*to, Some(NodeId(6)), "unicast along the successor path");
    assert!(fwd.d_bit, "destination-only forwarding");
    assert!(fwd.t_bit);
    assert!(fwd.ttl >= 2, "TTL must cover the remaining distance");
}

#[test]
fn d_bit_relay_forwards_along_successor_not_broadcast() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 1, 6);
    let m = Rreq { d_bit: true, t_bit: true, sn_dst: Some(sn(3)), fd: 2, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    assert_eq!(rreqs[0].2, Some(NodeId(6)));
    assert!(rreqs[0].0.d_bit);
}

#[test]
fn d_bit_relay_with_newer_seqno_may_answer() {
    let mut n = Node::new(5);
    n.install_route(7, sn(9), 1, 6);
    let m = Rreq { d_bit: true, t_bit: true, sn_dst: Some(sn(3)), fd: 2, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert_eq!(sent_rreps(&acts).len(), 1, "a strictly newer sn is itself a reset");
}

// ----- Procedures 3 & 4: advertisements ------------------------------------

#[test]
fn terminus_installs_route_and_flushes_buffered_data() {
    let mut n = Node::new(0);
    n.originate(data(0, 7));
    n.originate(data(0, 7));
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(1),
        src: NodeId(0),
        rreqid: 0,
        dist: 2,
        lifetime_ms: 6000,
        n_bit: false,
    };
    let acts = n.rrep_from(4, rrep);
    assert_eq!(counted(&acts, ProtoCounter::RrepUsableRecv), 1);
    assert_eq!(counted(&acts, ProtoCounter::DiscoverySucceeded), 1);
    let sent = sent_data(&acts);
    assert_eq!(sent.len(), 2, "both buffered packets go out");
    assert!(sent.iter().all(|(next, _)| *next == NodeId(4)));
    assert!(!n.ldr.is_active_for(NodeId(7)));
    let e = n.ldr.routes.active(NodeId(7), n.now).unwrap();
    assert_eq!((e.dist, e.fd), (3, 3));
}

#[test]
fn relay_forwards_rrep_with_its_own_invariants_via_cached_reverse_path() {
    let mut n = Node::new(5);
    // Engage in computation (0, 1) arriving from neighbour 2.
    n.rreq_from(2, base_rreq(0, 7, 1));
    // RREP comes back from downstream neighbour 6.
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(4),
        src: NodeId(0),
        rreqid: 1,
        dist: 1,
        lifetime_ms: 6000,
        n_bit: false,
    };
    let acts = n.rrep_from(6, rrep);
    let fwd = sent_rreps(&acts);
    assert_eq!(fwd.len(), 1);
    let (m, initiated, to) = &fwd[0];
    assert!(!initiated, "a relayed RREP is not initiated");
    assert_eq!(*to, NodeId(2), "forced onto the RREQ reverse path");
    assert_eq!(m.dist, 2, "relay substitutes its own distance");
    assert_eq!(m.sn_dst, sn(4));
}

#[test]
fn rrep_without_cache_entry_is_consumed_not_forwarded() {
    let mut n = Node::new(5);
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(4),
        src: NodeId(0),
        rreqid: 77,
        dist: 1,
        lifetime_ms: 6000,
        n_bit: false,
    };
    let acts = n.rrep_from(6, rrep);
    assert!(sent_rreps(&acts).is_empty());
    // The advertisement is still usable locally (Procedure 3 ran).
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_some());
}

#[test]
fn infeasible_rrep_is_ignored_fig1_example() {
    // Figure 1: E gets C's reply (dist 3) first, then B's (dist 4),
    // then D's (dist 1). B's must be ignored; D's must win.
    let mut e = Node::new(0); // plays node E
    e.originate(data(0, 7)); // node T is 7
    let rrep = |dist: u32| Rrep {
        dst: NodeId(7),
        sn_dst: sn(1),
        src: NodeId(0),
        rreqid: 0,
        dist,
        lifetime_ms: 6000,
        n_bit: false,
    };
    let acts = e.rrep_from(3, rrep(3)); // from C
    assert_eq!(counted(&acts, ProtoCounter::RrepUsableRecv), 1);
    let r = *e.ldr.routes.active(NodeId(7), e.now).unwrap();
    assert_eq!((r.dist, r.fd, r.next_hop), (4, 4, NodeId(3)));

    let acts = e.rrep_from(2, rrep(4)); // from B: 4 >= fd 4 — infeasible
    assert_eq!(counted(&acts, ProtoCounter::RrepUsableRecv), 0);
    let r = *e.ldr.routes.active(NodeId(7), e.now).unwrap();
    assert_eq!(r.next_hop, NodeId(3), "B's reply must not displace C's");

    let acts = e.rrep_from(4, rrep(1)); // from D: 1 < fd 4 — feasible
    assert_eq!(counted(&acts, ProtoCounter::RrepUsableRecv), 1);
    let r = *e.ldr.routes.active(NodeId(7), e.now).unwrap();
    assert_eq!((r.dist, r.fd, r.next_hop), (2, 2, NodeId(4)));
}

#[test]
fn relay_without_active_route_drops_rrep() {
    let mut n = Node::new(5);
    n.rreq_from(2, base_rreq(0, 7, 1));
    // Install then invalidate so invariants exist but the route is
    // unusable: the relay "cannot issue a new advertisement".
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(4),
        src: NodeId(0),
        rreqid: 1,
        dist: 1,
        lifetime_ms: 6000,
        n_bit: false,
    };
    // First reception installs a route...
    n.rrep_from(6, rrep);
    n.ldr.routes.invalidate(NodeId(7), n.now);
    // ...a second (stronger) RREP can't be relayed without a valid route.
    let stronger = Rrep { sn_dst: sn(9), rreqid: 1, ..rrep };
    let acts = n.rrep_from(6, stronger);
    // The table update happened (sn 9 installs), making the route valid
    // again, so relaying is actually allowed here; use an infeasible
    // one instead to pin the no-route case.
    let _ = acts;
    n.ldr.routes.invalidate(NodeId(7), n.now);
    let infeasible = Rrep { sn_dst: sn(9), dist: 50, rreqid: 1, ..rrep };
    let acts = n.rrep_from(6, infeasible);
    assert!(sent_rreps(&acts).is_empty(), "invalid route + infeasible advert: nothing to relay");
}

#[test]
fn duplicate_rrep_not_relayed_twice_without_optimization() {
    let cfg = LdrConfig { opt_multiple_rreps: false, ..LdrConfig::default() };
    let mut n = Node::with_cfg(5, cfg);
    n.rreq_from(2, base_rreq(0, 7, 1));
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(4),
        src: NodeId(0),
        rreqid: 1,
        dist: 1,
        lifetime_ms: 6000,
        n_bit: false,
    };
    assert_eq!(sent_rreps(&n.rrep_from(6, rrep)).len(), 1);
    let stronger = Rrep { sn_dst: sn(5), ..rrep };
    assert_eq!(
        sent_rreps(&n.rrep_from(6, stronger)).len(),
        0,
        "one reply per (originator, rreqid) without the optimisation"
    );
}

#[test]
fn multiple_rreps_optimization_relays_only_strictly_stronger() {
    let mut n = Node::new(5); // defaults enable the optimisation
    n.rreq_from(2, base_rreq(0, 7, 1));
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(4),
        src: NodeId(0),
        rreqid: 1,
        dist: 3,
        lifetime_ms: 6000,
        n_bit: false,
    };
    assert_eq!(sent_rreps(&n.rrep_from(6, rrep)).len(), 1);
    // Same strength: blocked.
    assert_eq!(sent_rreps(&n.rrep_from(6, rrep)).len(), 0);
    // Shorter at same sn: relayed.
    let shorter = Rrep { dist: 1, ..rrep };
    assert_eq!(sent_rreps(&n.rrep_from(6, shorter)).len(), 1);
    // Newer sn: relayed.
    let newer = Rrep { sn_dst: sn(5), dist: 4, ..rrep };
    assert_eq!(sent_rreps(&n.rrep_from(6, newer)).len(), 1);
}

// ----- failures and errors --------------------------------------------------

#[test]
fn unicast_failure_invalidates_routes_and_broadcasts_rerr() {
    let mut n = Node::new(5);
    n.install_route(7, sn(1), 2, 6);
    n.install_route(8, sn(2), 3, 6);
    n.install_route(9, sn(1), 1, 4);
    let acts = n.link_failure(6, data(1, 7)); // relayed data, link to 6 died
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_none());
    assert!(n.ldr.routes.active(NodeId(8), n.now).is_none());
    assert!(n.ldr.routes.active(NodeId(9), n.now).is_some(), "other next hop unaffected");
    let rerrs = sent_rerrs(&acts);
    assert_eq!(rerrs.len(), 1);
    let dests: Vec<u16> = rerrs[0].entries.iter().map(|e| e.dst.0).collect();
    assert_eq!(dests, vec![7, 8]);
    assert_eq!(dropped(&acts), vec![DropReason::NoRoute], "relayed data is dropped");
}

#[test]
fn unicast_failure_on_own_data_rediscoveres_without_seqno_increment() {
    let mut n = Node::new(5);
    n.install_route(7, sn(1), 2, 6);
    let sn_before = n.ldr.own_seqno();
    let fd_before = n.ldr.routes.invariants(NodeId(7)).fd;
    let acts = n.link_failure(6, data(5, 7));
    assert!(n.ldr.is_active_for(NodeId(7)), "own traffic triggers re-discovery");
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    // The re-discovery carries the preserved invariants: same sn, the
    // (reduced) feasible distance.
    assert_eq!(rreqs[0].0.sn_dst, Some(sn(1)));
    assert!(rreqs[0].0.fd <= fd_before);
    assert_eq!(n.ldr.own_seqno(), sn_before, "LDR never bumps numbers on breaks");
}

#[test]
fn rerr_from_successor_invalidates_and_propagates() {
    let mut n = Node::new(5);
    n.install_route(7, sn(2), 2, 6);
    let rerr = Rerr { entries: vec![RerrEntry { dst: NodeId(7), sn: Some(sn(2)) }] };
    let acts = n.rerr_from(6, rerr);
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_none());
    assert_eq!(sent_rerrs(&acts).len(), 1, "propagated to our own predecessors");
}

#[test]
fn rerr_from_non_successor_is_inert() {
    let mut n = Node::new(5);
    n.install_route(7, sn(2), 2, 6);
    let rerr = Rerr { entries: vec![RerrEntry { dst: NodeId(7), sn: Some(sn(2)) }] };
    let acts = n.rerr_from(4, rerr); // 4 is not our next hop to 7
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_some());
    assert!(sent_rerrs(&acts).is_empty());
}

#[test]
fn rerr_with_newer_seqno_resets_feasible_distance_history() {
    let mut n = Node::new(5);
    n.install_route(7, sn(2), 2, 6);
    let rerr = Rerr { entries: vec![RerrEntry { dst: NodeId(7), sn: Some(sn(5)) }] };
    n.rerr_from(6, rerr);
    let inv = n.ldr.routes.invariants(NodeId(7));
    assert_eq!(inv.sn, Some(sn(5)));
    assert_eq!(inv.fd, INFINITY, "no distance known under the new number");
}

#[test]
fn forwarding_without_route_reports_error_upstream() {
    let mut n = Node::new(5);
    let acts = n.data_from(2, data(0, 7));
    assert_eq!(dropped(&acts), vec![DropReason::NoRoute]);
    assert_eq!(sent_rerrs(&acts).len(), 1);
}

#[test]
fn data_at_destination_is_delivered() {
    let mut n = Node::new(7);
    let acts = n.data_from(2, data(0, 7));
    assert!(acts.iter().any(|a| matches!(a, Action::Deliver { .. })));
    assert!(dropped(&acts).is_empty());
}

#[test]
fn data_ttl_expiry_is_dropped() {
    let mut n = Node::new(5);
    n.install_route(7, sn(1), 2, 6);
    let mut d = data(0, 7);
    d.ttl = 0;
    let acts = n.data_from(2, d);
    assert_eq!(dropped(&acts), vec![DropReason::TtlExpired]);
}

// ----- expanding ring and retries -------------------------------------------

#[test]
fn timer_expiry_retries_with_wider_ring_and_fresh_rreqid() {
    let mut n = Node::new(0);
    let first = sent_rreqs(&n.originate(data(0, 7)));
    let (m1, _, _) = first[0];
    // Fire the discovery timer (generation 0 for dest 7).
    let acts = n.timer(discovery_token(NodeId(7), 0));
    let second = sent_rreqs(&acts);
    assert_eq!(second.len(), 1);
    let (m2, _, _) = second[0];
    assert!(m2.ttl > m1.ttl, "expanding ring widens");
    assert_ne!(m2.rreqid, m1.rreqid, "each attempt is a fresh computation");
}

#[test]
fn discovery_fails_after_max_attempts_dropping_buffered_data() {
    let cfg = LdrConfig { max_attempts: 2, ..LdrConfig::default() };
    let mut n = Node::with_cfg(0, cfg);
    n.originate(data(0, 7));
    n.originate(data(0, 7));
    let a1 = n.timer(discovery_token(NodeId(7), 0));
    assert_eq!(sent_rreqs(&a1).len(), 1, "attempt 2 of 2");
    let a2 = n.timer(discovery_token(NodeId(7), 0));
    assert!(sent_rreqs(&a2).is_empty());
    assert_eq!(dropped(&a2), vec![DropReason::NoRoute, DropReason::NoRoute]);
    assert_eq!(counted(&a2, ProtoCounter::DiscoveryFailed), 1);
    assert!(!n.ldr.is_active_for(NodeId(7)));
}

#[test]
fn stale_timer_generation_is_ignored() {
    let mut n = Node::new(0);
    n.originate(data(0, 7));
    let acts = n.timer(discovery_token(NodeId(7), 42));
    assert!(acts.is_empty());
}

// ----- optimisations ----------------------------------------------------------

#[test]
fn request_as_error_invalidates_route_through_asking_successor() {
    let mut n = Node::new(5);
    n.install_route(7, sn(2), 2, 6); // dist 3 via 6
                                     // Node 6 (our successor to 7) floods an RREQ for 7 with fd# = 3 >
                                     // d - 1 = 2: it should have answered if it had a route.
    let m = Rreq { sn_dst: Some(sn(2)), fd: 3, ..base_rreq(6, 7, 9) };
    n.rreq_from(6, m);
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_none());
}

#[test]
fn request_as_error_respects_low_fd_requests() {
    let mut n = Node::new(5);
    n.install_route(7, sn(2), 4, 6); // dist 5 via 6
                                     // fd# = 2 <= d - 1 = 4: node 6 couldn't have answered anyway.
    let m = Rreq { sn_dst: Some(sn(2)), fd: 2, ..base_rreq(6, 7, 9) };
    n.rreq_from(6, m);
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_some());
}

#[test]
fn minimum_lifetime_pushes_stale_routes_to_relay() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 1, 6);
    // Age the clock to within 1 s of expiry (installed with 6 s at t=1).
    n.at(SimTime::from_millis(6500));
    let m = Rreq { sn_dst: Some(sn(3)), fd: 5, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    assert!(sent_rreps(&acts).is_empty(), "nearly-expired route must not answer");
    assert_eq!(sent_rreqs(&acts).len(), 1, "...but must relay");
}

#[test]
fn reduced_distance_advertises_eighty_percent() {
    let mut n = Node::new(0);
    n.install_route(7, sn(1), 9, 3); // dist 10, fd 10
    n.ldr.routes.invalidate(NodeId(7), n.now);
    let acts = n.originate(data(0, 7));
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs[0].0.fd, 9, "floor(0.8 x 10) + 1");
    assert_eq!(rreqs[0].0.sn_dst, Some(sn(1)));
}

#[test]
fn optimal_ttl_uses_distance_and_fd() {
    let mut n = Node::new(0);
    n.install_route(7, sn(1), 9, 3); // dist 10, fd 10 -> fd# 8
    n.ldr.routes.invalidate(NodeId(7), n.now);
    let acts = n.originate(data(0, 7));
    let rreqs = sent_rreqs(&acts);
    // TTL = dist - fd# + LOCAL_ADD_TTL = 10 - 9 + 2 = 3.
    assert_eq!(rreqs[0].0.ttl, 3);
}

// ----- auditor hooks ----------------------------------------------------------

#[test]
fn route_successors_reports_only_active_routes() {
    let mut n = Node::new(5);
    n.install_route(7, sn(1), 2, 6);
    n.install_route(8, sn(1), 2, 4);
    n.ldr.routes.invalidate(NodeId(8), n.now);
    // Touch the clock via a callback so the snapshot time is current.
    n.data_from(2, data(0, 5));
    let succ = n.ldr.route_successors();
    assert_eq!(succ, vec![(NodeId(7), NodeId(6))]);
    let dump = n.ldr.route_table_dump();
    assert_eq!(dump.len(), 2);
    assert!(dump.iter().any(|r| r.dest == NodeId(8) && !r.valid));
}

#[test]
fn own_seqno_value_tracks_counter() {
    let mut n = Node::new(7);
    assert_eq!(n.ldr.own_seqno_value(), Some(0.0));
    let m = Rreq { sn_dst: Some(n.ldr.own_seqno()), t_bit: true, fd: 3, ..base_rreq(0, 7, 1) };
    n.rreq_from(2, m);
    assert_eq!(n.ldr.own_seqno_value(), Some(1.0));
}

// ----- N bit and the reverse probe ------------------------------------------

#[test]
fn relay_that_cannot_install_reverse_route_sets_n_bit() {
    let mut n = Node::new(5);
    // Give node 5 strong history for origin 0: fd = 1 under sn (1,0).
    n.install_route(0, sn(0), 0, 2);
    // An RREQ from 0 arrives over a long detour (dist 6): NDC rejects
    // the reverse advertisement (6 >= fd 1)... but the active route to
    // 0 still exists, so reverse_ok holds and N stays clear.
    let m = Rreq { dst: NodeId(7), sn_src: sn(0), dist: 6, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(3, m);
    let rreqs = sent_rreqs(&acts);
    assert!(!rreqs[0].0.n_bit, "active reverse route: no N bit");

    // Same situation but the route to 0 is stale: N must be set.
    let mut n2 = Node::new(6);
    n2.install_route(0, sn(0), 0, 2);
    n2.ldr.routes.invalidate(NodeId(0), n2.now);
    let m = Rreq { dst: NodeId(7), sn_src: sn(0), dist: 6, ..base_rreq(0, 7, 1) };
    let acts = n2.rreq_from(3, m);
    let rreqs = sent_rreqs(&acts);
    assert!(rreqs[0].0.n_bit, "no reverse path: the RREQ stops advertising its origin");
}

#[test]
fn n_bit_rreq_no_longer_installs_reverse_routes() {
    let mut n = Node::new(5);
    let m = Rreq { n_bit: true, dist: 2, ..base_rreq(0, 7, 1) };
    n.rreq_from(3, m);
    assert!(
        n.ldr.routes.active(NodeId(0), n.now).is_none(),
        "an N-bit RREQ is not an advertisement for its origin"
    );
}

#[test]
fn n_bit_propagates_into_the_rrep() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 1, 6);
    let m = Rreq { sn_dst: Some(sn(3)), fd: 5, n_bit: true, ..base_rreq(0, 7, 1) };
    let acts = n.rreq_from(2, m);
    let rreps = sent_rreps(&acts);
    assert_eq!(rreps.len(), 1);
    assert!(rreps[0].0.n_bit, "the requester must learn the reverse path is missing");
}

#[test]
fn probe_disabled_by_default_no_seqno_inflation() {
    let mut n = Node::new(0);
    n.originate(data(0, 7));
    let before = n.ldr.own_seqno();
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(1),
        src: NodeId(0),
        rreqid: 0,
        dist: 2,
        lifetime_ms: 6000,
        n_bit: true,
    };
    let acts = n.rrep_from(4, rrep);
    assert_eq!(n.ldr.own_seqno(), before, "no probe, no increment");
    assert!(sent_rreqs(&acts).is_empty());
}

#[test]
fn probe_enabled_sends_dbit_unicast_with_raised_seqno() {
    let cfg = LdrConfig { opt_reverse_probe: true, ..LdrConfig::default() };
    let mut n = Node::with_cfg(0, cfg);
    n.originate(data(0, 7));
    let before = n.ldr.own_seqno();
    let rrep = Rrep {
        dst: NodeId(7),
        sn_dst: sn(1),
        src: NodeId(0),
        rreqid: 0,
        dist: 2,
        lifetime_ms: 6000,
        n_bit: true,
    };
    let acts = n.rrep_from(4, rrep);
    assert!(n.ldr.own_seqno() > before, "the probe raises the origin's number");
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1);
    let (probe, initiated, to) = &rreqs[0];
    assert!(initiated);
    assert_eq!(*to, Some(NodeId(4)), "unicast along the fresh forward path");
    assert!(probe.d_bit && !probe.t_bit && !probe.n_bit);
    assert_eq!(probe.sn_src, n.ldr.own_seqno());
}

// ----- housekeeping -----------------------------------------------------------

#[test]
fn cleanup_timer_sweeps_expired_computation_state() {
    let mut n = Node::new(5);
    n.rreq_from(2, base_rreq(0, 7, 1));
    assert_eq!(n.ldr.cache.len(), 1);
    // Fire the periodic sweep long after the cache TTL (2.8 s).
    n.at(SimTime::from_secs(30));
    let acts = n.timer(CLEANUP_TOKEN);
    assert_eq!(n.ldr.cache.len(), 0, "expired engagements are reclaimed");
    assert!(
        acts.iter().any(|a| matches!(a, Action::SetTimer { token, .. } if *token == CLEANUP_TOKEN)),
        "the sweep reschedules itself"
    );
}

#[test]
fn expired_engagement_allows_reengagement() {
    let mut n = Node::new(5);
    n.rreq_from(2, base_rreq(0, 7, 1));
    // Past the rreq-cache TTL the same (src, rreqid) is processed anew.
    n.at(SimTime::from_secs(10));
    let acts = n.rreq_from(3, base_rreq(0, 7, 1));
    assert_eq!(sent_rreqs(&acts).len(), 1, "stale engagement no longer suppresses");
}

#[test]
fn route_expiry_makes_route_unusable_but_keeps_invariants() {
    let mut n = Node::new(0);
    n.install_route(7, sn(1), 2, 3); // 6 s lifetime from t = 1
    n.at(SimTime::from_secs(8));
    let acts = n.originate(data(0, 7));
    assert!(sent_data(&acts).is_empty(), "expired route cannot carry data");
    let rreqs = sent_rreqs(&acts);
    assert_eq!(rreqs.len(), 1, "expiry triggers a re-discovery");
    assert_eq!(rreqs[0].0.sn_dst, Some(sn(1)), "history survives expiry");
    assert!(rreqs[0].0.fd < INFINITY, "feasible distance survives expiry");
}

// ----- crash/restart (driven by the simulator's fault layer) ------------------

#[test]
fn reboot_wipes_volatile_state_and_bumps_the_epoch() {
    let mut n = Node::new(5);
    n.install_route(7, sn(3), 2, 3);
    let before = n.ldr.own_seqno();
    n.at(SimTime::from_secs(4));
    let acts = n.call(|l, ctx| l.handle_reboot(ctx));
    assert!(n.ldr.routes.active(NodeId(7), n.now).is_none(), "routes are volatile");
    assert_eq!(n.ldr.cache.len(), 0, "computation cache is volatile");
    assert!(
        n.ldr.own_seqno() > before,
        "the post-reboot epoch dominates every pre-crash number (§3: no reboot-hold needed)"
    );
    assert!(
        acts.iter().any(|a| matches!(a, Action::SetTimer { token, .. } if *token == CLEANUP_TOKEN)),
        "housekeeping restarts with the node"
    );
}

#[test]
fn post_reboot_replies_dominate_pre_crash_advertisements() {
    // A destination that crashes and recovers must answer with a number
    // no stale pre-crash advert can beat — this is LDR's destination
    // sequence-number recovery (epoch counter in stable storage).
    let mut n = Node::new(7);
    let pre = n.ldr.own_seqno();
    n.call(|l, ctx| l.handle_reboot(ctx));
    let post = n.ldr.own_seqno();
    assert!(post > pre);
    assert!(post.epoch > pre.epoch, "recovery is by epoch, not by counter");
}
