//! # ldr — Labeled Distance Routing
//!
//! A from-scratch implementation of **LDR**, the on-demand loop-free
//! routing protocol of *"A New Approach to On-Demand Loop-Free Routing
//! in Ad Hoc Networks"* (Garcia-Luna-Aceves, Mosko & Perkins, PODC
//! 2003). LDR combines
//!
//! * a **distance invariant** — each node tracks a *feasible distance*
//!   per destination, the minimum distance attained under the current
//!   destination sequence number, and only changes successors under the
//!   Numbered Distance Condition ([`invariants::ndc_accepts`]); with
//! * **destination-controlled sequence numbers**
//!   ([`seqno::SeqNo`]) that act as resets of the distance invariant —
//!   only the destination may increment its own number (the `T`-bit /
//!   path-reset machinery of §2.2), unlike AODV where upstream nodes
//!   inflate each other's numbers.
//!
//! The result is loop freedom at every instant (Theorem 4) without
//! source routing (DSR), internodal synchronisation (DUAL/ROAM/TORA),
//! or AODV's reply-suppressing sequence-number inflation.
//!
//! The protocol plugs into the [`manet_sim`] discrete-event simulator
//! via [`manet_sim::protocol::RoutingProtocol`]; the same workspace
//! hosts the AODV/DSR/OLSR baselines (`manet-baselines`) and the
//! experiment harness (`ldr-bench`).
//!
//! ## Example
//!
//! ```
//! use ldr::{Ldr, LdrConfig};
//! use manet_sim::config::SimConfig;
//! use manet_sim::mobility::StaticMobility;
//! use manet_sim::packet::NodeId;
//! use manet_sim::time::{SimDuration, SimTime};
//! use manet_sim::world::World;
//!
//! let cfg = SimConfig { duration: SimDuration::from_secs(20), ..SimConfig::default() };
//! let mut world = World::new(
//!     cfg,
//!     Box::new(StaticMobility::line(4, 200.0)),
//!     Ldr::factory(LdrConfig::default()),
//! );
//! world.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(3), 512);
//! let metrics = world.run();
//! assert_eq!(metrics.data_delivered, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod invariants;
pub mod messages;
pub mod protocol;
pub mod route_table;
pub mod seqno;

pub use config::LdrConfig;
pub use invariants::{Distance, Invariants, Solicited, INFINITY};
pub use protocol::Ldr;
pub use route_table::{AdvertOutcome, RouteEntry, RouteTable};
pub use seqno::SeqNo;
