//@ path: crates/sim/src/fixture_no_panic.rs
//! Planted violations for the `no-panic` rule.

fn live(v: Option<u8>) -> u8 {
    v.unwrap()
}

fn live2(v: Option<u8>) -> u8 {
    v.expect("present")
}

fn live3(kind: u8) {
    match kind {
        0 => {}
        _ => unreachable!("planted"),
    }
}

#[cfg(test)]
mod tests {
    fn exempt(v: Option<u8>) -> u8 {
        v.unwrap() // test code: not a finding
    }
}
