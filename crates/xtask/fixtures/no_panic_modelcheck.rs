//@ path: crates/modelcheck/src/fixture_no_panic.rs
//! Planted violations proving the `no-panic` rule covers the model
//! checker: an abort mid-replay loses the counterexample.

fn live(trace: Option<Vec<u8>>) -> Vec<u8> {
    trace.expect("trace present")
}

fn live2(budget: u32) {
    if budget == 0 {
        panic!("planted");
    }
}

#[cfg(test)]
mod tests {
    fn exempt(v: Option<u8>) -> u8 {
        v.unwrap() // test code: not a finding
    }
}
