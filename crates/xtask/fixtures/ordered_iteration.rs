//@ path: crates/bench/src/fixture_ordered_iteration.rs
//! Planted violations for the `ordered-iteration` rule: lookups into a
//! std-hashed map are fine, iteration is the defect (PR 4's AODV bug).

use std::collections::{HashMap, HashSet};

fn live(seen: HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (_, v) in &seen {
        acc ^= v; // order-dependent accumulation over SipHash order
    }
    acc
}

fn live2() {
    let mut uniq: HashSet<u64> = HashSet::new();
    uniq.insert(9);
    uniq.retain(|&x| x > 3);
}

fn lookup_is_fine(seen: &HashMap<u64, u64>) -> Option<u64> {
    seen.get(&7).copied()
}

fn explicit_hasher_is_fine(ordered: HashMap<u64, u64, FxBuild>) -> u64 {
    let mut acc = 0;
    for (_, v) in &ordered {
        acc ^= v;
    }
    acc
}
