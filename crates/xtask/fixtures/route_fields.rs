//@ path: crates/core/src/fixture_route_fields.rs
//! Planted violations for the `route-fields` rule.

fn live(entry: &mut RouteEntry) {
    entry.fd = 7;
    entry.dist += 1;
    if entry.dist == 3 {
        // Comparison, not mutation: no finding on the line above.
    }
}
