//@ path: crates/baselines/src/dsr/messages.rs
//! Planted violations for the `panic-surface-*` rules: bare indexing,
//! unchecked offset arithmetic in a decode path, and a narrowing cast
//! in an encode path.

fn encode(entries: &[u16]) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(entries.len() as u8);
    b
}

fn decode(b: &[u8]) -> Option<(u8, usize)> {
    let first = b[0];
    let end = 4 + 2 * first as usize;
    Some((first, end))
}

fn checked_is_fine(b: &[u8], at: usize) -> Option<u8> {
    b.get(at.checked_add(1)?).copied()
}
