//@ path: crates/modelcheck/src/fixture_determinism.rs
//! Planted violations for the `determinism` rule — in `modelcheck`,
//! which the old scanner never covered.

fn live() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

fn live2() -> u32 {
    let mut rng = thread_rng();
    rng.next_u32()
}
