//@ path: crates/sim/src/parallel.rs
//! Planted violations for the `effect-discipline` rule: a worker
//! closure reaching shared simulator state instead of buffering an
//! `Effect`.

fn kernel(scope: &Scope<'_>) {
    scope.spawn(move || {
        world.metrics.data_delivered += 1.0;
    });
    scope.spawn(move || run_component_fixture());
}

fn run_component_fixture() {
    telemetry.record_sample();
}

fn coordinator_is_fine(world: &mut World) {
    world.metrics.data_delivered += 1.0;
}
