//@ path: crates/sim/src/prof.rs
//! Planted violations for the profiler file's lint scope: the
//! justified `xtask:allow(determinism)` carve-out covers exactly one
//! wall-clock read, a stray read still fires, and std hash maps are
//! banned here like the rest of the hot replay path.

fn covered_read() -> Instant {
    // xtask:allow(determinism): observation-only wall-clock read, accumulated into counters that never feed simulation state
    Instant::now()
}

fn stray_read() -> Instant {
    Instant::now()
}

fn live() {
    let mut spans: HashMap<u16, u64> = HashMap::new();
    spans.insert(0, 1);
}
