//@ path: crates/sim/src/fixture_allow_syntax.rs
//! Planted violations for the `allow-syntax` rule: escape hatches
//! without a justification are themselves findings, and a justified
//! allow suppresses exactly its named rule.

fn bad_allow(v: Option<u8>) -> u8 {
    // xtask:allow(no-panic)
    v.unwrap()
}

fn unknown_rule(v: Option<u8>) -> u8 {
    // xtask:allow(no-such-rule): misspelled rule ids must not pass
    v.unwrap()
}

fn good_allow(v: Option<u8>) -> u8 {
    // xtask:allow(no-panic): fixture demonstrating a justified allow
    v.unwrap()
}
