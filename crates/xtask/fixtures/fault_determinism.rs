//@ path: crates/sim/src/faults.rs
//! Planted violations for the `fault-determinism` rule: std hash
//! collections are banned outright in the fault layer.

fn live() {
    let mut pending: std::collections::HashMap<u64, u64> = Default::default();
    pending.insert(1, 2);
}
