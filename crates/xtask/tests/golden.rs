//! Golden-diagnostics tests: the fixture corpus must produce exactly
//! the byte-pinned report, every rule must fire at least once, the
//! real tree must be clean, and the whole run must be fast.

use std::path::PathBuf;
use xtask::{analyze_fixtures, analyze_tree, passes, report, workspace_root};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn fixtures_match_pinned_report_byte_for_byte() {
    let diags = analyze_fixtures(&fixtures_dir());
    let got = report::json(&diags);
    let expected = std::fs::read_to_string(fixtures_dir().join("expected.json"))
        .expect("fixtures/expected.json present");
    assert_eq!(got, expected, "regenerate expected.json if a rule intentionally changed");
}

#[test]
fn every_rule_fires_on_the_fixture_corpus() {
    let diags = analyze_fixtures(&fixtures_dir());
    for rule in passes::all_rules() {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "no fixture trips rule `{rule}` — plant one or the rule is dead"
        );
    }
}

#[test]
fn real_tree_is_clean() {
    let diags = analyze_tree(&workspace_root());
    assert!(diags.is_empty(), "workspace has findings:\n{}", report::text(&diags));
}

#[test]
fn full_run_completes_fast() {
    // The <5s budget covers lexing and all passes over the workspace
    // plus the fixture corpus. (Wall-clock measurement is fine here:
    // xtask is tooling, outside the simulator's determinism scope.)
    let t0 = std::time::Instant::now();
    let _ = analyze_tree(&workspace_root());
    let _ = analyze_fixtures(&fixtures_dir());
    assert!(t0.elapsed().as_secs_f64() < 5.0, "static analysis exceeded its 5s budget");
}

#[test]
fn json_report_is_structurally_valid() {
    let diags = analyze_fixtures(&fixtures_dir());
    let j = report::json(&diags);
    check_json(&j);
    check_json(&report::json(&[]));
}

/// A minimal JSON validity checker (no deps): balanced structure with
/// correct string/escape handling, one top-level value.
fn check_json(s: &str) {
    let b = s.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut i = 0;
    let mut seen_value = false;
    while i < b.len() {
        match b[i] {
            b'{' | b'[' => {
                stack.push(b[i]);
                i += 1;
            }
            b'}' => {
                assert_eq!(stack.pop(), Some(b'{'), "mismatched }} at byte {i}");
                seen_value = true;
                i += 1;
            }
            b']' => {
                assert_eq!(stack.pop(), Some(b'['), "mismatched ] at byte {i}");
                seen_value = true;
                i += 1;
            }
            b'"' => {
                i += 1;
                loop {
                    assert!(i < b.len(), "unterminated string");
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                seen_value = true;
            }
            b' ' | b'\n' | b'\t' | b'\r' | b',' | b':' => i += 1,
            c if c.is_ascii_digit() || c == b'-' => {
                while i < b.len()
                    && (b[i].is_ascii_digit() || matches!(b[i], b'-' | b'.' | b'e' | b'E' | b'+'))
                {
                    i += 1;
                }
                seen_value = true;
            }
            c if s[i..].starts_with("true")
                || s[i..].starts_with("false")
                || s[i..].starts_with("null") =>
            {
                let _ = c;
                i += if s[i..].starts_with("false") { 5 } else { 4 };
                seen_value = true;
            }
            c => panic!("unexpected byte {c:?} at {i}"),
        }
    }
    assert!(stack.is_empty(), "unbalanced braces/brackets");
    assert!(seen_value, "empty document");
}

#[test]
fn no_panic_scope_covers_the_model_checker() {
    let pass = passes::registry()
        .into_iter()
        .find(|p| p.id() == "no-panic")
        .expect("no-panic pass registered");
    assert!(pass.applies("crates/modelcheck/src/live.rs"));
    assert!(pass.applies("crates/modelcheck/src/main.rs"));
    assert!(pass.applies("crates/core/src/protocol.rs"));
    assert!(!pass.applies("crates/xtask/src/lib.rs"));
}

#[test]
fn no_panic_scope_covers_the_sweep_engine_and_pool() {
    let pass = passes::registry()
        .into_iter()
        .find(|p| p.id() == "no-panic")
        .expect("no-panic pass registered");
    // A panic in the sweep coordinator or a pool worker abandons a
    // half-journaled sweep; both files are held to the no-panic bar.
    assert!(pass.applies("crates/bench/src/sweep.rs"));
    assert!(pass.applies("crates/bench/src/workpool.rs"));
    // The rest of the bench crate (report rendering, binaries) stays
    // out of scope — a CLI is allowed to abort on bad flags.
    assert!(!pass.applies("crates/bench/src/runner.rs"));
    assert!(!pass.applies("crates/bench/src/bin/sweepbench.rs"));
}

#[test]
fn fault_determinism_scope_covers_the_pools_and_sweep() {
    let pass = passes::registry()
        .into_iter()
        .find(|p| p.id() == "fault-determinism")
        .expect("fault-determinism pass registered");
    assert!(pass.applies("crates/sim/src/pool.rs"));
    assert!(pass.applies("crates/bench/src/sweep.rs"));
    assert!(pass.applies("crates/sim/src/parallel.rs"));
    assert!(!pass.applies("crates/bench/src/report.rs"));
}
