//! A lightweight item/scope model on top of the token stream: line
//! mapping, `#[cfg(test)]` / `#[test]` item spans, and the
//! justification-required `xtask:allow` directive parser.

use crate::lexer::{Kind, Token};
use crate::passes::RawDiag;
use std::collections::BTreeMap;

/// Maps byte offsets to 1-based `(line, col)` pairs.
pub struct LineMap {
    starts: Vec<usize>,
}

impl LineMap {
    /// Builds the map for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// 1-based line and column (in bytes) of a byte offset.
    pub fn line_col(&self, off: usize) -> (u32, u32) {
        let line = match self.starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let col = off.saturating_sub(self.starts.get(line).copied().unwrap_or(0));
        ((line + 1) as u32, (col + 1) as u32)
    }

    /// 1-based line of a byte offset.
    pub fn line(&self, off: usize) -> u32 {
        self.line_col(off).0
    }
}

/// True if `i` indexes a significant (non-comment) token.
fn significant(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| !t.is_comment())
}

/// Next significant token index at or after `i`.
pub fn next_sig(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if significant(toks, i) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Previous significant token index strictly before `i`.
pub fn prev_sig(toks: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| significant(toks, j))
}

fn is_punct(toks: &[Token], src: &str, i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == Kind::Punct && t.text(src) == c.to_string().as_str())
}

/// Byte spans of items guarded by `#[cfg(test)]` / `#[test]` (the
/// attribute itself through the end of the item it decorates).
pub fn cfg_test_spans(src: &str, toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_punct(toks, src, i, '#') {
            i += 1;
            continue;
        }
        let Some(open) = next_sig(toks, i + 1) else { break };
        if !is_punct(toks, src, open, '[') {
            i += 1;
            continue;
        }
        // Find the matching `]` and collect the attribute's idents.
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut close = open;
        for j in open..toks.len() {
            if !significant(toks, j) {
                continue;
            }
            let t = &toks[j];
            match (t.kind, t.text(src)) {
                (Kind::Punct, "[") => depth += 1,
                (Kind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                (Kind::Ident, name) => idents.push(name),
                _ => {}
            }
        }
        let is_test_attr = idents == ["test"]
            || (idents.first() == Some(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not"));
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then span to the end of the item:
        // its top-level `{…}` block, or `;` for braceless items.
        let attr_start = toks[i].start;
        let mut j = close + 1;
        while let Some(k) = next_sig(toks, j) {
            if is_punct(toks, src, k, '#') {
                // Another attribute: jump past its `]`.
                let mut d = 0usize;
                let mut m = k;
                for x in k..toks.len() {
                    if !significant(toks, x) {
                        continue;
                    }
                    match toks[x].text(src) {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                m = x;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                j = m + 1;
                continue;
            }
            break;
        }
        let mut end = toks.last().map(|t| t.end).unwrap_or(src.len());
        let mut brace = 0usize;
        for x in j..toks.len() {
            if !significant(toks, x) {
                continue;
            }
            match toks[x].text(src) {
                "{" => brace += 1,
                "}" => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        end = toks[x].end;
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end = toks[x].end;
                    break;
                }
                _ => {}
            }
        }
        spans.push((attr_start, end));
        // Resume after the item so nested test attrs don't re-trigger.
        while i < toks.len() && toks[i].start < end {
            i += 1;
        }
    }
    spans
}

/// True if `off` falls inside any span.
pub fn in_spans(spans: &[(usize, usize)], off: usize) -> bool {
    spans.iter().any(|&(a, b)| off >= a && off < b)
}

/// Parsed `xtask:allow` directives: suppressed rules per 1-based line.
#[derive(Default)]
pub struct Allows {
    map: BTreeMap<u32, Vec<String>>,
}

impl Allows {
    /// True if `rule` is suppressed on `line`.
    pub fn covers(&self, line: u32, rule: &str) -> bool {
        self.map.get(&line).is_some_and(|rs| rs.iter().any(|r| r == rule))
    }
}

/// Parses every `xtask:allow` comment.
///
/// Grammar: `xtask:allow(rule-id[, rule-id]): justification`. A
/// whole-line comment suppresses the next significant line; a trailing
/// comment suppresses its own line. A directive with an unknown rule,
/// bad syntax, or a missing justification produces a non-suppressible
/// `allow-syntax` diagnostic instead of an exemption.
pub fn parse_allows(
    src: &str,
    toks: &[Token],
    lines: &LineMap,
    known_rules: &[&str],
) -> (Allows, Vec<RawDiag>) {
    let mut allows = Allows::default();
    let mut diags = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let text = t.text(src);
        // A directive must LEAD the comment; prose that merely mentions
        // `xtask:allow` mid-sentence (like this one) is not a directive.
        let body = text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with("xtask:allow") {
            continue;
        }
        let pos = text.len() - body.len();
        let off = t.start;
        let fail = |msg: String, diags: &mut Vec<RawDiag>| {
            diags.push(RawDiag { off, rule: "allow-syntax", msg });
        };
        let rest = &text[pos + "xtask:allow".len()..];
        let Some(stripped) = rest.strip_prefix('(') else {
            fail(
                "malformed allow: expected `(rule-id[, rule-id]): justification`".into(),
                &mut diags,
            );
            continue;
        };
        let Some(close) = stripped.find(')') else {
            fail("malformed allow: unclosed rule list".into(), &mut diags);
            continue;
        };
        let rule_list = &stripped[..close];
        let after = stripped[close + 1..].trim_start();
        let Some(justification) = after.strip_prefix(':') else {
            fail(
                "allow without justification: write `xtask:allow(rule): why it is safe`".into(),
                &mut diags,
            );
            continue;
        };
        let justification = justification.trim().trim_end_matches("*/").trim();
        if justification.is_empty() {
            fail(
                "allow without justification: write `xtask:allow(rule): why it is safe`".into(),
                &mut diags,
            );
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for r in rule_list.split(',') {
            let r = r.trim();
            if known_rules.contains(&r) {
                rules.push(r.to_string());
            } else {
                fail(format!("allow names unknown rule `{r}`"), &mut diags);
                bad = true;
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        // Trailing comment → its own line; whole-line comment → the
        // line of the next significant token.
        let own_line = lines.line(t.start);
        let leading = prev_sig(toks, i).is_none_or(|p| lines.line(toks[p].end - 1) < own_line);
        let target = if leading {
            next_sig(toks, i + 1).map(|n| lines.line(toks[n].start)).unwrap_or(own_line)
        } else {
            own_line
        };
        allows.map.entry(target).or_default().extend(rules);
    }
    (allows, diags)
}

/// Finds the byte span of the balanced `(…)` group whose opening paren
/// is the next significant token at or after `i`; returns `(open_idx,
/// span)` with the span covering the parens' interior.
pub fn paren_group(src: &str, toks: &[Token], i: usize) -> Option<(usize, (usize, usize))> {
    let open = next_sig(toks, i)?;
    if !is_punct(toks, src, open, '(') {
        return None;
    }
    let mut depth = 0usize;
    for j in open..toks.len() {
        if !significant(toks, j) {
            continue;
        }
        match toks[j].text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, (toks[open].end, toks[j].start)));
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds the byte span of the balanced `{…}` block whose opening brace
/// is the next `{` at or after token `i` (interior included, braces
/// excluded). Returns `None` if a `;` appears first at depth 0.
pub fn brace_block(src: &str, toks: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    let open = loop {
        let k = next_sig(toks, j)?;
        if is_punct(toks, src, k, '{') {
            break k;
        }
        if is_punct(toks, src, k, ';') {
            return None;
        }
        j = k + 1;
    };
    let mut depth = 0usize;
    for x in open..toks.len() {
        if !significant(toks, x) {
            continue;
        }
        match toks[x].text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((toks[open].end, toks[x].start));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_span_covers_the_block() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\nfn after() {}\n";
        let toks = lex(src);
        let spans = cfg_test_spans(src, &toks);
        assert_eq!(spans.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(in_spans(&spans, unwrap_at));
        assert!(!in_spans(&spans, src.find("live").unwrap()));
        assert!(!in_spans(&spans, src.find("after").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let toks = lex(src);
        assert!(cfg_test_spans(src, &toks).is_empty());
    }

    #[test]
    fn test_attr_covers_one_fn() {
        let src = "#[test]\nfn t() { a(); }\nfn live() {}\n";
        let toks = lex(src);
        let spans = cfg_test_spans(src, &toks);
        assert_eq!(spans.len(), 1);
        assert!(!in_spans(&spans, src.find("live").unwrap()));
    }

    #[test]
    fn allow_requires_justification() {
        let lines_src = "// xtask:allow(no-panic)\nlet x = y.unwrap();\n";
        let toks = lex(lines_src);
        let lm = LineMap::new(lines_src);
        let (allows, diags) = parse_allows(lines_src, &toks, &lm, &["no-panic"]);
        assert!(!allows.covers(2, "no-panic"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-syntax");
    }

    #[test]
    fn leading_allow_covers_next_line_trailing_covers_own() {
        let src = "// xtask:allow(no-panic): seed is validated at startup\nlet x = y.unwrap();\nlet z = q.unwrap(); // xtask:allow(no-panic): len checked above\n";
        let toks = lex(src);
        let lm = LineMap::new(src);
        let (allows, diags) = parse_allows(src, &toks, &lm, &["no-panic"]);
        assert!(diags.is_empty());
        assert!(allows.covers(2, "no-panic"));
        assert!(allows.covers(3, "no-panic"));
        assert!(!allows.covers(1, "no-panic"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let src = "// xtask:allow(no-such-rule): because\nlet x = 1;\n";
        let toks = lex(src);
        let lm = LineMap::new(src);
        let (allows, diags) = parse_allows(src, &toks, &lm, &["no-panic"]);
        assert!(!allows.covers(2, "no-such-rule"));
        assert_eq!(diags.len(), 1);
    }
}
