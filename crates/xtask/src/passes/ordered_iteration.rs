//! `ordered-iteration`: iterating a std-hashed `HashMap`/`HashSet`
//! visits entries in an order derived from the process's random SipHash
//! keys — a nondeterminism leak the moment any observable behaviour
//! depends on visit order (PR 4's AODV RERR sweep bug). Lookup is fine;
//! *iteration* is the defect. Runs workspace-wide.
//!
//! A declaration with an explicit hasher parameter (`HashMap<K, V,
//! FxBuild>`) is exempt: the deterministic hasher makes iteration
//! reproducible for a fixed key set.

use super::{FileCtx, Pass, RawDiag, KEYWORDS};
use crate::lexer::Kind;
use crate::model::{next_sig, prev_sig};
use std::collections::BTreeSet;

pub struct OrderedIteration;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Methods that return a view of the same map; a chain may pass
/// through them on the way to an iterator.
const PASSTHROUGH: &[&str] = &["clone", "as_ref", "as_mut", "borrow", "borrow_mut"];

impl Pass for OrderedIteration {
    fn id(&self) -> &'static str {
        "ordered-iteration"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["ordered-iteration"]
    }

    fn applies(&self, _rel: &str) -> bool {
        true
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        let tracked = collect_tracked(ctx);
        if tracked.is_empty() {
            return;
        }
        let (src, toks) = (ctx.src, ctx.toks);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident {
                continue;
            }
            let name = t.text(src);
            if !tracked.contains(name) {
                continue;
            }
            // `map.iter()` and friends, possibly through a view chain.
            if let Some(method) = iter_method_after(ctx, i) {
                out.push(RawDiag {
                    off: t.start,
                    rule: "ordered-iteration",
                    msg: format!(
                        "`{name}.{method}` iterates a std-hashed map; order depends on process hash state"
                    ),
                });
                continue;
            }
            // `for x in map` / `for x in &map` / `for x in &mut map`.
            if for_in_target(ctx, i) {
                out.push(RawDiag {
                    off: t.start,
                    rule: "ordered-iteration",
                    msg: format!(
                        "`for … in {name}` iterates a std-hashed map; order depends on process hash state"
                    ),
                });
            }
        }
    }
}

/// Idents in this file declared as std-hashed maps/sets, via type
/// ascription (`x: HashMap<K, V>` — three generic args means an
/// explicit hasher, exempt) or construction (`x = HashMap::new()`).
fn collect_tracked(ctx: &FileCtx<'_>) -> BTreeSet<String> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut tracked = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let is_map = t.text(src) == "HashMap";
        let is_set = t.text(src) == "HashSet";
        if !is_map && !is_set {
            continue;
        }
        let Some(n) = next_sig(toks, i + 1) else { continue };
        match toks[n].text(src) {
            "<" => {
                // Type position: the declared ident sits left of the
                // `:` ascribing it (let binding, struct field, param).
                let Some(decl) = decl_ident_before(ctx, i, false) else { continue };
                let args = generic_arg_count(ctx, n);
                let std_hashed = (is_map && args <= 2) || (is_set && args <= 1);
                if std_hashed {
                    tracked.insert(decl);
                }
            }
            ":" => {
                // Construction: only `ident = HashMap::new()` forms.
                // `field: HashMap::default()` in a struct literal takes
                // its hasher from the field's declared type, which the
                // ascription form already classifies.
                let Some(decl) = decl_ident_before(ctx, i, true) else { continue };
                let Some(n2) = next_sig(toks, n + 1) else { continue };
                if toks[n2].text(src) != ":" {
                    continue;
                }
                let Some(m) = next_sig(toks, n2 + 1) else { continue };
                if matches!(toks[m].text(src), "new" | "default" | "with_capacity") {
                    tracked.insert(decl);
                }
            }
            _ => {}
        }
    }
    tracked
}

/// Walks left from the `HashMap`/`HashSet` ident past a leading path
/// (`std :: collections ::`) to the token introducing it, and returns
/// the declared ident. With `require_eq`, only `ident = …` counts
/// (construction form); otherwise only a single-`:` ascription counts
/// (let binding, struct field, fn param). Type aliases (`type Foo<…> =
/// HashMap<…>`) are excluded by requiring a plain ident on the left.
fn decl_ident_before(ctx: &FileCtx<'_>, i: usize, require_eq: bool) -> Option<String> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut p = prev_sig(toks, i)?;
    // Skip `path::` segments.
    while toks[p].text(src) == ":" {
        let q = prev_sig(toks, p)?;
        if toks[q].text(src) == ":" {
            let seg = prev_sig(toks, q)?;
            if toks[seg].kind != Kind::Ident {
                return None;
            }
            p = prev_sig(toks, seg)?;
        } else {
            // Single `:` — type ascription; the decl ident is left of it.
            if require_eq {
                return None;
            }
            let decl = q;
            if toks[decl].kind != Kind::Ident || KEYWORDS.contains(&toks[decl].text(src)) {
                return None;
            }
            return Some(toks[decl].text(src).to_string());
        }
    }
    if toks[p].text(src) == "=" {
        if !require_eq {
            return None;
        }
        let decl = prev_sig(toks, p)?;
        if toks[decl].kind != Kind::Ident || KEYWORDS.contains(&toks[decl].text(src)) {
            return None;
        }
        return Some(toks[decl].text(src).to_string());
    }
    None
}

/// Counts top-level generic arguments of the `<…>` opening at `lt`.
fn generic_arg_count(ctx: &FileCtx<'_>, lt: usize) -> usize {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut depth = 0usize;
    let mut nested = 0usize; // tuple/array groupings carry their own commas
    let mut commas = 0usize;
    let mut any = false;
    for t in toks.iter().skip(lt) {
        if t.is_comment() {
            continue;
        }
        match t.text(src) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return if any { commas + 1 } else { 0 };
                }
            }
            "(" | "[" => nested += 1,
            ")" | "]" => nested = nested.saturating_sub(1),
            "," if depth == 1 && nested == 0 => commas += 1,
            _ => any = true,
        }
    }
    0
}

/// If token `i` (a tracked map ident) is followed by a method chain
/// reaching an iteration method, returns that method's name.
fn iter_method_after<'a>(ctx: &FileCtx<'a>, i: usize) -> Option<&'a str> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut pos = i;
    loop {
        let dot = next_sig(toks, pos + 1)?;
        if toks[dot].text(src) != "." {
            return None;
        }
        let m = next_sig(toks, dot + 1)?;
        if toks[m].kind != Kind::Ident {
            return None;
        }
        let name = toks[m].text(src);
        if ITER_METHODS.contains(&name) {
            return Some(name);
        }
        if !PASSTHROUGH.contains(&name) {
            return None;
        }
        // Skip the passthrough call's `()`.
        let open = next_sig(toks, m + 1)?;
        if toks[open].text(src) != "(" {
            return None;
        }
        let mut depth = 0usize;
        let mut close = open;
        for (j, t) in toks.iter().enumerate().skip(open) {
            if t.is_comment() {
                continue;
            }
            match t.text(src) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        pos = close;
    }
}

/// True if token `i` is the target of `for … in [&[mut]] ident`.
fn for_in_target(ctx: &FileCtx<'_>, i: usize) -> bool {
    let (src, toks) = (ctx.src, ctx.toks);
    // The ident must end the iterable: next significant token opens the
    // loop body (or starts a block-less position we ignore).
    if next_sig(toks, i + 1).is_none_or(|n| toks[n].text(src) != "{") {
        return false;
    }
    let mut p = match prev_sig(toks, i) {
        Some(p) => p,
        None => return false,
    };
    if toks[p].text(src) == "mut" {
        p = match prev_sig(toks, p) {
            Some(q) => q,
            None => return false,
        };
    }
    if toks[p].text(src) == "&" {
        p = match prev_sig(toks, p) {
            Some(q) => q,
            None => return false,
        };
    }
    toks[p].kind == Kind::Ident && toks[p].text(src) == "in"
}
