//! `determinism`: simulation results must be a pure function of
//! `(scenario, seed)`. Wall clocks and OS entropy are banned from
//! `core`, `sim`, `baselines`, and `modelcheck` (bench measures real
//! time on purpose and is out of scope).

use super::{under, FileCtx, Pass, RawDiag};
use crate::lexer::Kind;
use crate::model::next_sig;

pub struct Determinism;

/// Idents that are banned wherever they appear.
const BANNED_IDENTS: &[&str] = &["SystemTime", "thread_rng", "from_entropy", "getrandom"];

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["determinism"]
    }

    fn applies(&self, rel: &str) -> bool {
        under(rel, "crates/core")
            || under(rel, "crates/sim")
            || under(rel, "crates/baselines")
            || under(rel, "crates/modelcheck")
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        let (src, toks) = (ctx.src, ctx.toks);
        for (i, t) in toks.iter().enumerate() {
            match t.kind {
                Kind::Ident => {
                    let name = t.text(src);
                    if BANNED_IDENTS.contains(&name) {
                        out.push(RawDiag {
                            off: t.start,
                            rule: "determinism",
                            msg: format!("`{name}` leaks wall-clock/entropy into a seeded run"),
                        });
                    } else if name == "Instant" && path_next(ctx, i) == Some("now") {
                        out.push(RawDiag {
                            off: t.start,
                            rule: "determinism",
                            msg: "`Instant::now` leaks wall-clock into a seeded run".into(),
                        });
                    } else if name == "std" && path_next(ctx, i) == Some("time") {
                        out.push(RawDiag {
                            off: t.start,
                            rule: "determinism",
                            msg: "`std::time` is banned here; use sim time".into(),
                        });
                    }
                }
                Kind::Str if t.text(src).contains("/dev/urandom") => {
                    out.push(RawDiag {
                        off: t.start,
                        rule: "determinism",
                        msg: "OS entropy is banned; derive randomness from the seed".into(),
                    });
                }
                _ => {}
            }
        }
    }
}

/// The ident after a `::` following token `i`, if any.
fn path_next<'a>(ctx: &FileCtx<'a>, i: usize) -> Option<&'a str> {
    let (src, toks) = (ctx.src, ctx.toks);
    let c1 = next_sig(toks, i + 1)?;
    if toks[c1].text(src) != ":" {
        return None;
    }
    let c2 = next_sig(toks, c1 + 1)?;
    if toks[c2].text(src) != ":" {
        return None;
    }
    let n = next_sig(toks, c2 + 1)?;
    (toks[n].kind == Kind::Ident).then(|| toks[n].text(src))
}
