//! `route-fields`: LDR's loop-freedom proof (Theorem 4) rests on every
//! route-entry mutation flowing through `route_table.rs`, where the
//! feasibility invariants are enforced. Direct assignment to a route
//! field anywhere else in `crates/core` bypasses the proof obligations.

use super::{under, FileCtx, Pass, RawDiag};
use crate::lexer::Kind;
use crate::model::{next_sig, prev_sig};

pub struct RouteFields;

const FIELDS: &[&str] = &["fd", "dist", "seqno", "next_hop", "valid", "expires"];

impl Pass for RouteFields {
    fn id(&self) -> &'static str {
        "route-fields"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["route-fields"]
    }

    fn applies(&self, rel: &str) -> bool {
        under(rel, "crates/core") && !rel.ends_with("route_table.rs")
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        let (src, toks) = (ctx.src, ctx.toks);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident || !FIELDS.contains(&t.text(src)) {
                continue;
            }
            // Field access: `.field`.
            if prev_sig(toks, i).is_none_or(|p| toks[p].text(src) != ".") {
                continue;
            }
            let Some(n1) = next_sig(toks, i + 1) else { continue };
            let t1 = toks[n1].text(src);
            let assigned = match t1 {
                "=" => {
                    // Exclude `==` and `=>`.
                    !next_sig(toks, n1 + 1)
                        .is_some_and(|n2| matches!(toks[n2].text(src), "=" | ">"))
                }
                "+" | "-" => next_sig(toks, n1 + 1).is_some_and(|n2| toks[n2].text(src) == "="),
                _ => false,
            };
            if assigned {
                out.push(RawDiag {
                    off: t.start,
                    rule: "route-fields",
                    msg: format!(
                        "route field `{}` mutated outside route_table.rs; use the table API",
                        t.text(src)
                    ),
                });
            }
        }
    }
}
