//! `effect-discipline`: the parallel kernel's byte-identity argument
//! assumes component workers never touch shared simulator state —
//! every mutation is buffered as an `Effect` and replayed canonically
//! on the coordinator thread. This pass proves the lexical version of
//! that claim over `crates/sim/src/parallel.rs`: starting from every
//! `spawn(…)` call, it closes the worker region over locally-defined
//! functions called from it and `impl` blocks of types it constructs,
//! then flags any reference to the world, its schedule/trace/metrics/
//! telemetry surfaces, or ad-hoc synchronisation inside that region.

use super::{FileCtx, Pass, RawDiag};
use crate::lexer::Kind;
use crate::model::{brace_block, next_sig, paren_group, prev_sig};
use std::collections::BTreeSet;

pub struct EffectDiscipline;

/// State and synchronisation idents banned inside worker regions. The
/// buffered API is method-shaped (`self.emit(..)`, `Effect::…`), so
/// banning the *state* names never collides with it.
const BANNED: &[&str] = &[
    "world",
    "World",
    "fel",
    "rx_batches",
    "metrics",
    "auditor",
    "trace_sink",
    "telemetry",
    "replay_begin",
    "Mutex",
    "RwLock",
    "Condvar",
    "RefCell",
    "mpsc",
    "unsafe",
    "static",
];

impl Pass for EffectDiscipline {
    fn id(&self) -> &'static str {
        "effect-discipline"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["effect-discipline"]
    }

    fn applies(&self, rel: &str) -> bool {
        rel == "crates/sim/src/parallel.rs"
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        let regions = worker_regions(ctx);
        let (src, toks) = (ctx.src, ctx.toks);
        for t in toks {
            if t.kind != Kind::Ident {
                continue;
            }
            if !regions.iter().any(|&(a, b)| t.start >= a && t.start < b) {
                continue;
            }
            let name = t.text(src);
            if BANNED.contains(&name) || name.starts_with("Atomic") {
                out.push(RawDiag {
                    off: t.start,
                    rule: "effect-discipline",
                    msg: format!(
                        "`{name}` inside a component-worker region; workers may only mutate through the buffered Effects API"
                    ),
                });
            }
        }
    }
}

/// Byte spans lexically reachable from worker closures: every
/// `spawn(…)` argument span, plus — to a fixpoint — the bodies of
/// file-local `fn`s called by bare name inside a region and of `impl`
/// blocks for types a region constructs.
fn worker_regions(ctx: &FileCtx<'_>) -> Vec<(usize, usize)> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == Kind::Ident && t.text(src) == "spawn" {
            if let Some((_, span)) = paren_group(src, toks, i + 1) {
                regions.push(span);
            }
        }
    }
    let fns = local_fn_bodies(ctx);
    let impls = impl_bodies(ctx);
    loop {
        let mut called: BTreeSet<String> = BTreeSet::new();
        let mut constructed: BTreeSet<String> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident {
                continue;
            }
            if !regions.iter().any(|&(a, b)| t.start >= a && t.start < b) {
                continue;
            }
            let name = t.text(src);
            let prev = prev_sig(toks, i).map(|p| toks[p].text(src));
            let next = next_sig(toks, i + 1).map(|n| toks[n].text(src));
            // Bare call: `name(` not preceded by `.` (method) or `:`
            // (path) and not a definition (`fn name`).
            if next == Some("(")
                && !matches!(prev, Some("." | ":" | "fn"))
                && fns.iter().any(|(f, _)| f == name)
            {
                called.insert(name.to_string());
            }
            // Construction / associated call: `Type {` or `Type ::`.
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && matches!(next, Some("{" | ":"))
                && impls.iter().any(|(ty, _)| ty == name)
            {
                constructed.insert(name.to_string());
            }
        }
        let mut grew = false;
        for (name, span) in fns.iter().chain(impls.iter()) {
            if (called.contains(name) || constructed.contains(name)) && !regions.contains(span) {
                regions.push(*span);
                grew = true;
            }
        }
        if !grew {
            return regions;
        }
    }
}

/// `(name, body span)` of every `fn` defined in the file.
fn local_fn_bodies(ctx: &FileCtx<'_>) -> Vec<(String, (usize, usize))> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut fns = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || t.text(src) != "fn" {
            continue;
        }
        let Some(n) = next_sig(toks, i + 1) else { continue };
        if toks[n].kind != Kind::Ident {
            continue;
        }
        if let Some(span) = brace_block(src, toks, n + 1) {
            fns.push((toks[n].text(src).to_string(), span));
        }
    }
    fns
}

/// `(self type, body span)` of every `impl` block in the file.
fn impl_bodies(ctx: &FileCtx<'_>) -> Vec<(String, (usize, usize))> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut impls = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || t.text(src) != "impl" {
            continue;
        }
        // Self type: the last path segment before `for`'s target wins —
        // `impl Kern for Shard` → Shard; `impl Shard` → Shard.
        let mut ty: Option<String> = None;
        let mut j = i + 1;
        let mut angle = 0usize;
        while let Some(k) = next_sig(toks, j) {
            let text = toks[k].text(src);
            match text {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "{" | "where" if angle == 0 => break,
                "for" if angle == 0 => ty = None, // the trait; restart on the type
                _ if toks[k].kind == Kind::Ident && angle == 0 && ty.is_none() => {
                    ty = Some(text.to_string());
                }
                _ => {}
            }
            j = k + 1;
        }
        // For paths like `impl a::B`, keep scanning segments so the
        // last ident before `{` wins.
        if let (Some(name), Some(span)) = (ty, brace_block(src, toks, j)) {
            impls.push((name, span));
        }
    }
    impls
}
