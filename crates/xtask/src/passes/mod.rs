//! The pass framework: every rule is a [`Pass`] over one file's token
//! stream, emitting [`RawDiag`]s at byte offsets. The driver (in
//! [`crate::analyze_file`]) centrally filters `#[cfg(test)]` regions
//! and `xtask:allow` exemptions, then resolves offsets to lines.

use crate::lexer::Token;
use crate::model::LineMap;

mod determinism;
mod effect_discipline;
mod fault_determinism;
mod no_panic;
mod ordered_iteration;
mod panic_surface;
mod route_fields;

/// Everything a pass may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel: &'a str,
    /// The file's source text.
    pub src: &'a str,
    /// Its token stream, comments included.
    pub toks: &'a [Token],
    /// Offset→line mapping.
    pub lines: &'a LineMap,
}

/// A diagnostic before line resolution and filtering.
pub struct RawDiag {
    /// Byte offset the finding anchors to.
    pub off: usize,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

/// One static-analysis rule.
pub trait Pass {
    /// The pass's name (usually its primary rule id).
    fn id(&self) -> &'static str;
    /// Every rule id this pass can emit.
    fn rules(&self) -> &'static [&'static str];
    /// Whether the pass runs on this workspace-relative path.
    fn applies(&self, rel: &str) -> bool;
    /// Scans the file.
    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>);
}

/// The full pass registry, in reporting order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(no_panic::NoPanic),
        Box::new(determinism::Determinism),
        Box::new(route_fields::RouteFields),
        Box::new(fault_determinism::FaultDeterminism),
        Box::new(ordered_iteration::OrderedIteration),
        Box::new(effect_discipline::EffectDiscipline),
        Box::new(panic_surface::PanicSurface),
    ]
}

/// Every rule id the engine can emit, including the directive-syntax
/// rule owned by the driver.
pub fn all_rules() -> Vec<&'static str> {
    let mut rules = vec!["allow-syntax"];
    for p in registry() {
        rules.extend_from_slice(p.rules());
    }
    rules.sort_unstable();
    rules
}

/// Rust keywords, used to tell `ident[` indexing from `[` array syntax
/// and to pick out binary operator positions.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while",
];

/// True if the file is inside a crate's `src/` tree under `prefix`
/// (e.g. `crates/sim`).
pub fn under(rel: &str, prefix: &str) -> bool {
    rel.strip_prefix(prefix).and_then(|r| r.strip_prefix("/src/")).is_some()
}
