//! `panic-surface`: wire codecs parse attacker-shaped bytes (the fault
//! layer corrupts frames arbitrarily), so their decode paths must be
//! total. Token-aware checks over codec files:
//!
//! * `panic-surface-index` — bare indexing / slicing `x[i]`, which
//!   panics out of bounds; use `get`/`get_mut`/`chunks_exact`.
//! * `panic-surface-arith` — unchecked `+ - * / %` inside `decode` /
//!   `read_*` / `get_*` functions, where attacker-controlled counts
//!   can overflow offsets; use `checked_*`.
//! * `panic-surface-cast` — narrowing `as` casts to small integers,
//!   which silently truncate counts; use `try_from` / `clamp_count`.

use super::{under, FileCtx, Pass, RawDiag, KEYWORDS};
use crate::lexer::Kind;
use crate::model::{brace_block, next_sig, prev_sig};

pub struct PanicSurface;

/// Files holding wire codecs: every `messages.rs` in the protocol
/// crates plus the shared checked-reader module itself.
fn is_codec_file(rel: &str) -> bool {
    ((under(rel, "crates/core") || under(rel, "crates/baselines")) && rel.ends_with("/messages.rs"))
        || rel == "crates/sim/src/wire.rs"
}

const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

impl Pass for PanicSurface {
    fn id(&self) -> &'static str {
        "panic-surface"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["panic-surface-index", "panic-surface-arith", "panic-surface-cast"]
    }

    fn applies(&self, rel: &str) -> bool {
        is_codec_file(rel)
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        let (src, toks) = (ctx.src, ctx.toks);
        let decode_spans = decode_fn_spans(ctx);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Punct {
                if t.kind == Kind::Ident && t.text(src) == "as" {
                    if let Some(n) = next_sig(toks, i + 1) {
                        let ty = toks[n].text(src);
                        if toks[n].kind == Kind::Ident && NARROW.contains(&ty) {
                            out.push(RawDiag {
                                off: t.start,
                                rule: "panic-surface-cast",
                                msg: format!(
                                    "narrowing `as {ty}` silently truncates; use try_from or wire::clamp_count"
                                ),
                            });
                        }
                    }
                }
                continue;
            }
            let text = t.text(src);
            match text {
                "[" if prev_is_value(ctx, i) => {
                    out.push(RawDiag {
                        off: t.start,
                        rule: "panic-surface-index",
                        msg: "bare indexing/slicing panics out of bounds; use get/chunks_exact"
                            .into(),
                    });
                }
                "+" | "-" | "*" | "/" | "%" => {
                    if !decode_spans.iter().any(|&(a, b)| t.start >= a && t.start < b) {
                        continue;
                    }
                    // `->` is an arrow, not subtraction.
                    if text == "-"
                        && next_sig(toks, i + 1).is_some_and(|n| toks[n].text(src) == ">")
                    {
                        continue;
                    }
                    // `..` / `::`-adjacent and compound-assign forms
                    // never reach here: only binary positions count.
                    if prev_is_value(ctx, i) {
                        // `+=` / `-=` etc. are still panicking arithmetic.
                        out.push(RawDiag {
                            off: t.start,
                            rule: "panic-surface-arith",
                            msg: format!(
                                "unchecked `{text}` in a decode path can overflow on corrupt input; use checked_ ops"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

/// True when the token before `i` ends a value expression — an ident
/// that is not a keyword, a literal, `)`, `]`, or `?` — making the
/// token at `i` indexing (for `[`) or a binary operator.
fn prev_is_value(ctx: &FileCtx<'_>, i: usize) -> bool {
    let (src, toks) = (ctx.src, ctx.toks);
    let Some(p) = prev_sig(toks, i) else { return false };
    match toks[p].kind {
        Kind::Ident => !KEYWORDS.contains(&toks[p].text(src)),
        Kind::Num | Kind::Str => true,
        Kind::Punct => matches!(toks[p].text(src), ")" | "]" | "?"),
        _ => false,
    }
}

/// Byte spans of the bodies of `fn decode` / `fn read_*` / `fn get_*`.
fn decode_fn_spans(ctx: &FileCtx<'_>) -> Vec<(usize, usize)> {
    let (src, toks) = (ctx.src, ctx.toks);
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || t.text(src) != "fn" {
            continue;
        }
        let Some(n) = next_sig(toks, i + 1) else { continue };
        if toks[n].kind != Kind::Ident {
            continue;
        }
        let name = toks[n].text(src);
        if name == "decode" || name.starts_with("read_") || name.starts_with("get_") {
            if let Some(span) = brace_block(src, toks, n + 1) {
                spans.push(span);
            }
        }
    }
    spans
}
