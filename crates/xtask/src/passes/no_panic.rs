//! `no-panic`: simulation and protocol code must degrade gracefully —
//! a malformed frame or a missing table entry is a rejected input, not
//! an abort. Flags `.unwrap()` / `.expect(…)` and the panicking macros
//! in non-test code across `core`, `sim`, `baselines`, and
//! `modelcheck` (the checker replays adversarial schedules; an abort
//! mid-replay loses the counterexample it exists to report), plus the
//! bench sweep engine and its worker pool — a panic in the sweep
//! coordinator or a pool worker would abandon a half-journaled sweep
//! the resumability machinery exists to protect.

use super::{under, FileCtx, Pass, RawDiag};
use crate::lexer::Kind;
use crate::model::{next_sig, prev_sig};

pub struct NoPanic;

const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Pass for NoPanic {
    fn id(&self) -> &'static str {
        "no-panic"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["no-panic"]
    }

    fn applies(&self, rel: &str) -> bool {
        under(rel, "crates/core")
            || under(rel, "crates/sim")
            || under(rel, "crates/baselines")
            || under(rel, "crates/modelcheck")
            || rel == "crates/bench/src/sweep.rs"
            || rel == "crates/bench/src/workpool.rs"
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        let (src, toks) = (ctx.src, ctx.toks);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident {
                continue;
            }
            let name = t.text(src);
            if name == "unwrap" || name == "expect" {
                let dotted = prev_sig(toks, i).is_some_and(|p| toks[p].text(src) == ".");
                let called = next_sig(toks, i + 1).is_some_and(|n| toks[n].text(src) == "(");
                if dotted && called {
                    out.push(RawDiag {
                        off: t.start,
                        rule: "no-panic",
                        msg: format!(
                            ".{name}() can abort the run; return an Option/Result or restructure"
                        ),
                    });
                }
            } else if MACROS.contains(&name)
                && next_sig(toks, i + 1).is_some_and(|n| toks[n].text(src) == "!")
            {
                out.push(RawDiag {
                    off: t.start,
                    rule: "no-panic",
                    msg: format!("{name}! aborts the run; reject the input instead"),
                });
            }
        }
    }
}
