//! `fault-determinism`: the fault, spatial, telemetry, parallel, pool
//! and profiler layers run on the hot replay path where even
//! *probe-only* std
//! hash maps have bitten before (capacity-dependent rehash cost skews
//! wall-clock telemetry; accidental later iteration is one refactor
//! away). These files ban `HashMap`/`HashSet` outright — use the
//! deterministic `FxBuild` maps or ordered collections. The bench
//! sweep engine is held to the same bar: its content-addressed cell
//! keys and journal replay must iterate in a stable order or resumed
//! sweeps would schedule cells nondeterministically.

use super::{FileCtx, Pass, RawDiag};
use crate::lexer::Kind;

pub struct FaultDeterminism;

const FILES: &[&str] = &[
    "crates/sim/src/faults.rs",
    "crates/sim/src/spatial.rs",
    "crates/sim/src/telemetry.rs",
    "crates/sim/src/parallel.rs",
    "crates/sim/src/pool.rs",
    "crates/sim/src/prof.rs",
    "crates/bench/src/sweep.rs",
];

impl Pass for FaultDeterminism {
    fn id(&self) -> &'static str {
        "fault-determinism"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["fault-determinism"]
    }

    fn applies(&self, rel: &str) -> bool {
        FILES.contains(&rel)
    }

    fn run(&self, ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
        for t in ctx.toks {
            if t.kind == Kind::Ident && matches!(t.text(ctx.src), "HashMap" | "HashSet") {
                out.push(RawDiag {
                    off: t.start,
                    rule: "fault-determinism",
                    msg: format!(
                        "`{}` is banned in this file; use hash::FxBuild maps or ordered collections",
                        t.text(ctx.src)
                    ),
                });
            }
        }
    }
}
