//! The repository's static-analysis engine, driven by `cargo xtask`.
//!
//! A hand-rolled lexer ([`lexer`]) feeds a lightweight scope model
//! ([`model`]) under a pass framework ([`passes`]) whose rules encode
//! the properties the type system cannot see: determinism of seeded
//! runs, the parallel kernel's buffered-effect discipline, and a
//! panic-free wire surface. Reports render as text or byte-stable JSON
//! ([`report`]). See DESIGN.md §15 for the architecture and rule
//! catalog.

pub mod lexer;
pub mod model;
pub mod passes;
pub mod report;

use passes::{FileCtx, Pass, RawDiag};
use report::Diagnostic;
use std::path::{Path, PathBuf};

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// True for files that are test-only by naming convention and skipped
/// outright (inline `#[cfg(test)]` modules are filtered by span).
fn is_test_file(rel: &str) -> bool {
    rel.ends_with("/tests.rs") || rel.ends_with("/proptests.rs") || rel.ends_with("_tests.rs")
}

/// Discovers the `.rs` files the engine scans: every `crates/*/src`
/// tree plus the root `src/`, workspace-relative with forward slashes,
/// sorted.
pub fn discover(root: &Path) -> Vec<(String, PathBuf)> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path().join("src"));
        }
    }
    for r in roots {
        walk(&r, &mut files);
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            (!is_test_file(&rel)).then_some((rel, p))
        })
        .collect();
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Analyzes one file's source under a virtual workspace-relative path.
///
/// The driver owns the cross-cutting policy: `#[cfg(test)]` regions
/// are exempt from every rule, and a justified `xtask:allow` comment
/// suppresses named rules on its target line (`allow-syntax` findings
/// are non-suppressible by construction).
pub fn analyze_file(rel: &str, src: &str, registry: &[Box<dyn Pass>]) -> Vec<Diagnostic> {
    let toks = lexer::lex(src);
    let lines = model::LineMap::new(src);
    let test_spans = model::cfg_test_spans(src, &toks);
    let known = passes::all_rules();
    let (allows, mut raw) = model::parse_allows(src, &toks, &lines, &known);
    let ctx = FileCtx { rel, src, toks: &toks, lines: &lines };
    for pass in registry {
        if pass.applies(rel) {
            pass.run(&ctx, &mut raw);
        }
    }
    let mut diags = Vec::new();
    for RawDiag { off, rule, msg } in raw {
        if model::in_spans(&test_spans, off) {
            continue;
        }
        let (line, col) = lines.line_col(off);
        if rule != "allow-syntax" && allows.covers(line, rule) {
            continue;
        }
        diags.push(Diagnostic { file: rel.to_string(), line, col, rule, message: msg });
    }
    diags
}

/// Runs the registry over a list of `(rel, path)` files on disk.
pub fn analyze_files(files: &[(String, PathBuf)]) -> Vec<Diagnostic> {
    let registry = passes::registry();
    let mut diags = Vec::new();
    for (rel, path) in files {
        let Ok(src) = std::fs::read_to_string(path) else { continue };
        diags.extend(analyze_file(rel, &src, &registry));
    }
    report::sort(&mut diags);
    diags
}

/// Runs the engine over the real workspace tree.
pub fn analyze_tree(root: &Path) -> Vec<Diagnostic> {
    analyze_files(&discover(root))
}

/// Runs the engine over the fixture corpus: each `fixtures/*.rs` file
/// declares the virtual workspace path it poses as in a first-line
/// `//@ path: …` header, so pass scoping applies exactly as it would
/// in the real tree.
pub fn analyze_fixtures(dir: &Path) -> Vec<Diagnostic> {
    let registry = passes::registry();
    let mut diags = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return diags };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    for p in paths {
        let Ok(src) = std::fs::read_to_string(&p) else { continue };
        let Some(rel) = fixture_virtual_path(&src) else {
            eprintln!("fixture {} is missing its `//@ path:` header", p.display());
            continue;
        };
        diags.extend(analyze_file(&rel, &src, &registry));
    }
    report::sort(&mut diags);
    diags
}

/// Reads the `//@ path: <virtual-path>` header off a fixture.
pub fn fixture_virtual_path(src: &str) -> Option<String> {
    let first = src.lines().next()?;
    let rest = first.strip_prefix("//@ path:")?;
    let rel = rest.trim();
    (!rel.is_empty()).then(|| rel.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_file_names_are_skipped() {
        assert!(is_test_file("crates/baselines/src/aodv/tests.rs"));
        assert!(is_test_file("crates/sim/src/proptests.rs"));
        assert!(!is_test_file("crates/sim/src/wire.rs"));
    }

    #[test]
    fn allow_suppresses_only_named_rule_on_target_line() {
        let registry = passes::registry();
        let src = "\
fn f(v: &[u8]) -> u8 {
    // xtask:allow(no-panic): index checked by caller invariant
    v.first().unwrap().clone()
}
fn g(v: &[u8]) -> u8 {
    v.first().unwrap().clone()
}
";
        let diags = analyze_file("crates/sim/src/example.rs", src, &registry);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let registry = passes::registry();
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let diags = analyze_file("crates/sim/src/example.rs", src, &registry);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn profiler_is_scoped_into_the_hot_path_lints() {
        let registry = passes::registry();
        // The profiler file carries both bans: wall clocks need a
        // justified allow, and std hash maps are banned outright.
        let src = "\
fn hot() {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
}
";
        let diags = analyze_file("crates/sim/src/prof.rs", src, &registry);
        assert!(
            diags.iter().any(|d| d.rule == "fault-determinism" && d.line == 2),
            "prof.rs must be under the hash-map ban: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.rule == "determinism" && d.line == 3),
            "a bare Instant::now in prof.rs must still fire: {diags:?}"
        );
    }

    #[test]
    fn profiler_wall_clock_allow_carve_out_is_line_scoped() {
        let registry = passes::registry();
        let src = "\
fn read_wall_clock() -> Instant {
    // xtask:allow(determinism): observation-only wall-clock read
    Instant::now()
}
fn stray() -> Instant {
    Instant::now()
}
";
        let diags = analyze_file("crates/sim/src/prof.rs", src, &registry);
        assert_eq!(diags.len(), 1, "only the uncovered read may fire: {diags:?}");
        assert_eq!((diags[0].rule, diags[0].line), ("determinism", 6));
    }

    #[test]
    fn effect_discipline_catches_direct_world_mutation_in_worker() {
        // The acceptance demo: a deliberately-introduced direct World
        // mutation inside a worker closure must fail the pass. This
        // stays a test — the violation is never committed to the tree.
        let registry = passes::registry();
        let src = "\
fn kernel(scope: &Scope) {
    scope.spawn(move || {
        world.metrics.data_delivered += 1.0;
    });
}
";
        let diags = analyze_file("crates/sim/src/parallel.rs", src, &registry);
        assert!(
            diags.iter().any(|d| d.rule == "effect-discipline" && d.line == 3),
            "expected an effect-discipline finding: {diags:?}"
        );
    }

    #[test]
    fn effect_discipline_follows_local_calls_and_impls() {
        let registry = passes::registry();
        let src = "\
fn kernel(scope: &Scope) {
    scope.spawn(move || run_component());
}
fn run_component() {
    let s = Shard::new();
}
impl Shard {
    fn new() { telemetry.record(); }
}
";
        let diags = analyze_file("crates/sim/src/parallel.rs", src, &registry);
        assert!(
            diags.iter().any(|d| d.rule == "effect-discipline" && d.line == 8),
            "expected the impl body to join the worker region: {diags:?}"
        );
    }
}
