//! A hand-rolled Rust lexer, correct by construction for the cases a
//! substring scanner gets wrong: nested block comments, raw strings,
//! byte strings, char literals vs lifetimes, and raw identifiers.
//!
//! Tokens carry byte spans into the source; comments are kept as
//! trivia so the allowlist parser can read `xtask:allow` directives.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// Integer or float literal.
    Num,
    /// String, raw string, byte string, or char literal.
    Str,
    /// `// …` (incl. doc comments).
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// A single punctuation character (multi-char operators are
    /// recognised positionally by the passes).
    Punct,
}

/// One token: a kind plus the byte span `start..end` in the source.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for comment trivia.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Length in bytes of the UTF-8 character whose lead byte is `c`.
fn utf8_len(c: u8) -> usize {
    match c {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Scans a `"…"` body starting at the opening quote; returns the offset
/// one past the closing quote (or the end of input on truncation).
fn scan_quoted(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            c => i += utf8_len(c),
        }
    }
    i
}

/// Scans a raw string `r##"…"##` whose hashes start at `i`; returns the
/// offset one past the final hash.
fn scan_raw(b: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote (caller verified it)
    while i < b.len() {
        if b[i] == b'"'
            && b.get(i + 1..i + 1 + hashes).is_some_and(|s| s.iter().all(|&c| c == b'#'))
        {
            return i + 1 + hashes;
        }
        i += utf8_len(b[i]);
    }
    i
}

/// Lexes `src` into tokens, comments included.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        // Comments.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += utf8_len(b[i]);
            }
            toks.push(Token { kind: Kind::LineComment, start, end: i });
            continue;
        }
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += utf8_len(b[i]);
                }
            }
            toks.push(Token { kind: Kind::BlockComment, start, end: i });
            continue;
        }
        // Raw strings, byte strings, raw identifiers.
        if c == b'r' || c == b'b' {
            let after_b = if c == b'b' && b.get(i + 1) == Some(&b'r') { i + 2 } else { i + 1 };
            let raw = c == b'r' || after_b == i + 2;
            if raw {
                // r / br, then zero or more hashes, then a quote.
                let mut j = after_b;
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    i = scan_raw(b, after_b);
                    toks.push(Token { kind: Kind::Str, start, end: i });
                    continue;
                }
                // r#ident — a raw identifier.
                if c == b'r'
                    && b.get(i + 1) == Some(&b'#')
                    && b.get(i + 2).is_some_and(|&x| is_ident_start(x))
                {
                    i += 2;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    toks.push(Token { kind: Kind::Ident, start, end: i });
                    continue;
                }
            }
            if c == b'b' && b.get(i + 1) == Some(&b'"') {
                i = scan_quoted(b, i + 1);
                toks.push(Token { kind: Kind::Str, start, end: i });
                continue;
            }
            if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                i = scan_char(b, i + 1);
                toks.push(Token { kind: Kind::Str, start, end: i });
                continue;
            }
            // Fall through: ordinary identifier starting with r/b.
        }
        if c == b'"' {
            i = scan_quoted(b, i);
            toks.push(Token { kind: Kind::Str, start, end: i });
            continue;
        }
        if c == b'\'' {
            // Char literal or lifetime.
            let c1 = b.get(i + 1).copied();
            match c1 {
                Some(b'\\') => {
                    i = scan_char(b, i);
                    toks.push(Token { kind: Kind::Str, start, end: i });
                }
                Some(x) if is_ident_start(x) => {
                    // 'a' is a char; 'a, 'static etc. are lifetimes.
                    let next = i + 1 + utf8_len(x);
                    if b.get(next) == Some(&b'\'') {
                        i = next + 1;
                        toks.push(Token { kind: Kind::Str, start, end: i });
                    } else {
                        i += 1;
                        while i < b.len() && is_ident_continue(b[i]) {
                            i += 1;
                        }
                        toks.push(Token { kind: Kind::Lifetime, start, end: i });
                    }
                }
                Some(x) => {
                    // '(' , '0' , '🦀' … — a char literal.
                    let next = i + 1 + utf8_len(x);
                    if b.get(next) == Some(&b'\'') {
                        i = next + 1;
                        toks.push(Token { kind: Kind::Str, start, end: i });
                    } else {
                        i += 1;
                        toks.push(Token { kind: Kind::Punct, start, end: i });
                    }
                }
                None => {
                    i += 1;
                    toks.push(Token { kind: Kind::Punct, start, end: i });
                }
            }
            continue;
        }
        if is_ident_start(c) {
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Token { kind: Kind::Ident, start, end: i });
            continue;
        }
        if c.is_ascii_digit() {
            let hex = c == b'0' && matches!(b.get(i + 1), Some(b'x' | b'X'));
            let mut last = c;
            i += 1;
            while i < b.len() {
                let x = b[i];
                let exp_sign = !hex && (x == b'+' || x == b'-') && matches!(last, b'e' | b'E');
                if is_ident_continue(x)
                    || exp_sign
                    || (x == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
                {
                    last = x;
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Token { kind: Kind::Num, start, end: i });
            continue;
        }
        i += utf8_len(c);
        toks.push(Token { kind: Kind::Punct, start, end: i });
    }
    toks
}

/// Scans a char literal starting at its opening quote.
fn scan_char(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'\'' => return i + 1,
            b'\n' => return i, // unterminated; don't eat the file
            c => i += utf8_len(c),
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r####"let s = r#"not // a "comment" [0]"#; x[i]"####;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == Kind::Str && t.contains("not //")));
        // The indexing after the raw string still lexes.
        assert_eq!(toks.last().map(|(k, _)| *k), Some(Kind::Punct));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "a /* one /* two */ still */ b";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (Kind::Ident, "a".into()),
                (Kind::BlockComment, "/* one /* two */ still */".into()),
                (Kind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { '\\n'; '_' }";
        let toks = kinds(src);
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == Kind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == Kind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(chars, vec!["'a'", "'\\n'", "'_'"]);
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_strings() {
        let src = r###"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'\xFF';"###;
        let strs: Vec<_> = lex(src)
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[1].contains("raw"));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let src = "let r#match = 1;";
        let toks = kinds(src);
        assert!(toks.contains(&(Kind::Ident, "r#match".into())));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a \" b"; x.unwrap()"#;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == Kind::Str && t.contains("a \\\" b")));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && t == "unwrap"));
    }

    #[test]
    fn float_exponents_stay_one_token() {
        let src = "let x = 1.5e-3 + 0xE - 1;";
        let nums: Vec<_> = lex(src)
            .iter()
            .filter(|t| t.kind == Kind::Num)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0xE", "1"]);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let src = "for i in 0..10 {}";
        let nums: Vec<_> = lex(src)
            .iter()
            .filter(|t| t.kind == Kind::Num)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }
}
