//! Diagnostic rendering: human text and machine-readable JSON
//! (hand-rolled — the engine has no dependencies to keep `cargo xtask`
//! building instantly everywhere).

use std::collections::BTreeMap;

/// One resolved finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// Sorts into the canonical reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

/// Renders the human-readable report.
pub fn text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}:{}:{}: [{}] {}\n", d.file, d.line, d.col, d.rule, d.message));
    }
    if diags.is_empty() {
        out.push_str("xtask check: clean\n");
    } else {
        out.push_str(&format!("xtask check: {} finding(s)\n", diags.len()));
    }
    out
}

/// Renders the JSON report (schema `xtask-diagnostics/1`), diagnostics
/// pre-sorted, keys in a fixed order so output is byte-stable.
pub fn json(diags: &[Diagnostic]) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_default() += 1;
    }
    let mut out = String::from("{\n  \"schema\": \"xtask-diagnostics/1\",\n");
    out.push_str(&format!("  \"total\": {},\n", diags.len()));
    out.push_str("  \"counts\": {");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{rule}\": {n}"));
    }
    if counts.is_empty() {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
            escape(&d.file),
            d.line,
            d.col,
            escape(d.rule),
            escape(&d.message)
        ));
    }
    if diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "no-panic",
            message: "a \"quoted\" message".into(),
        }]
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = json(&sample());
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"no-panic\": 1"));
        assert!(j.contains("\"total\": 1"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let j = json(&[]);
        assert!(j.contains("\"total\": 0"));
        assert!(j.contains("\"diagnostics\": []"));
    }
}
