//! Repository automation. `cargo xtask check` runs the in-tree static
//! lint pass over the protocol and simulator sources:
//!
//! * **no-panic** — non-test code in `crates/core` and `crates/sim`
//!   must not call `.unwrap()`, `.expect(...)` or the panicking macros
//!   (`panic!`, `unreachable!`, `todo!`, `unimplemented!`). The
//!   simulator's counterexample replay depends on handlers degrading
//!   gracefully instead of aborting mid-schedule.
//! * **determinism** — the simulation paths must draw no wall-clock
//!   time (`std::time`, `SystemTime`, `Instant::now`) and no OS
//!   randomness (`thread_rng`, `from_entropy`, `getrandom`): every
//!   run must be a pure function of its seed (see
//!   `manet_sim::rng`'s determinism contract).
//! * **route-fields** — `RouteEntry` invariant fields (`fd`, `dist`,
//!   `seqno`, `next_hop`, `valid`, `expires`) may be assigned only
//!   inside `crates/core/src/route_table.rs`, whose audited setters
//!   enforce fd-monotonicity; everywhere else the table is read-only.
//! * **fault-determinism** — `crates/sim/src/faults.rs`,
//!   `crates/sim/src/spatial.rs` and `crates/sim/src/telemetry.rs`
//!   additionally ban `HashMap`/`HashSet`: fault plans must replay
//!   byte-identically from `(plan, seed)`, the spatial index must
//!   answer range queries bit-identically to the linear scan, and an
//!   exported telemetry document must be byte-identical across reruns
//!   of the same `(scenario, seed)` — in all three, hash-map iteration
//!   order would leak process-level randomness into observable
//!   behavior. Use `BTree` collections or index-ordered `Vec`s there
//!   instead.
//!
//! The scanner strips comments and string/char literals first (so
//! documentation may mention the forbidden names) and skips
//! `#[cfg(test)]` blocks and `tests.rs`/`proptests.rs` files. A line
//! carrying an `xtask:allow` comment is exempt — use sparingly and say
//! why in the comment.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = workspace_root();
            let violations = check_repo(&root);
            if violations.is_empty() {
                println!("xtask check: clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("xtask check: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask check");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").into()
}

/// One lint hit, rendered `path:line: [rule] message`.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.what)
    }
}

const PANIC_PATTERNS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

const NONDET_PATTERNS: &[&str] = &[
    "std::time",
    "SystemTime",
    "Instant::now",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "/dev/urandom",
];

const ROUTE_FIELDS: &[&str] = &["fd", "dist", "seqno", "next_hop", "valid", "expires"];

/// Unordered collections whose iteration order varies per process —
/// forbidden in the fault-injection module and the spatial neighbor
/// index, where any order-dependent choice would break byte-identical
/// replay (resp. grid-vs-linear byte-identity).
const FAULT_ORDER_PATTERNS: &[&str] = &["HashMap", "HashSet"];

/// Runs every rule over its scope. Returns all violations, sorted.
fn check_repo(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    let core = root.join("crates/core/src");
    let sim = root.join("crates/sim/src");
    for dir in [&core, &sim] {
        for file in rust_files(dir) {
            let Ok(src) = fs::read_to_string(&file) else { continue };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            if is_test_file(&rel) {
                continue;
            }
            let ctx = FileContext::new(&src);
            scan_substrings(&ctx, &rel, "no-panic", PANIC_PATTERNS, &mut out);
            scan_substrings(&ctx, &rel, "determinism", NONDET_PATTERNS, &mut out);
            if rel.ends_with("crates/sim/src/faults.rs")
                || rel.ends_with("crates/sim/src/spatial.rs")
                || rel.ends_with("crates/sim/src/telemetry.rs")
                || rel.ends_with("crates/sim/src/parallel.rs")
            {
                scan_substrings(&ctx, &rel, "fault-determinism", FAULT_ORDER_PATTERNS, &mut out);
            }
            if rel.starts_with("crates/core/src")
                && rel.file_name().is_some_and(|n| n != "route_table.rs")
            {
                scan_field_assignments(&ctx, &rel, &mut out);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

fn is_test_file(rel: &Path) -> bool {
    rel.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n == "tests.rs" || n == "proptests.rs" || n.ends_with("_tests.rs"))
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Pre-processed view of one source file: literal-stripped text, the
/// byte spans of `#[cfg(test)]` items, and waived line numbers.
struct FileContext {
    stripped: String,
    test_spans: Vec<(usize, usize)>,
    waived_lines: Vec<usize>,
    line_starts: Vec<usize>,
}

impl FileContext {
    fn new(src: &str) -> Self {
        let stripped = strip_literals(src);
        let test_spans = cfg_test_spans(&stripped);
        let waived_lines = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("xtask:allow"))
            .map(|(i, _)| i + 1)
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        FileContext { stripped, test_spans, waived_lines, line_starts }
    }

    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    fn is_exempt(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| offset >= a && offset < b)
            || self.waived_lines.contains(&self.line_of(offset))
    }
}

/// Replaces comments and string/char literal *contents* with spaces,
/// preserving length and newlines so byte offsets map to source lines.
fn strip_literals(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            out[i] = b'\n';
            i += 1;
        } else if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    i += 1;
                }
            }
        } else if c == b'"' {
            i = skip_string(b, i, &mut out);
        } else if (c == b'r' || c == b'b') && !ident_before(b, i) {
            // r"...", r#"..."#, b"...", br"...", b'x'.
            let mut j = i + 1;
            if c == b'b' && b.get(j) == Some(&b'r') {
                j += 1;
            }
            let hash_start = j;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            let hashes = j - hash_start;
            if b.get(j) == Some(&b'"') && (c != b'b' || hashes == 0 || b[i + 1] == b'r') {
                for o in out.iter_mut().take(j + 1).skip(i) {
                    *o = b' ';
                }
                i = skip_raw_string(b, j, hashes, &mut out);
            } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                i = skip_char(b, i + 1, &mut out);
            } else {
                out[i] = c;
                i += 1;
            }
        } else if c == b'\'' {
            // Lifetime ('a) or char literal ('x', '\n').
            let is_lifetime = b.get(i + 1).is_some_and(|&n| n.is_ascii_alphabetic() || n == b'_')
                && b.get(i + 2) != Some(&b'\'');
            if is_lifetime {
                out[i] = c;
                i += 1;
            } else {
                i = skip_char(b, i, &mut out);
            }
        } else {
            out[i] = c;
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn ident_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

fn skip_string(b: &[u8], mut i: usize, out: &mut [u8]) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_string(b: &[u8], mut i: usize, hashes: usize, out: &mut [u8]) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&x| x == b'#').count() == hashes
        {
            return i + 1 + hashes;
        }
        if b[i] == b'\n' {
            out[i] = b'\n';
        }
        i += 1;
    }
    i
}

fn skip_char(b: &[u8], mut i: usize, _out: &mut [u8]) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Byte spans of items annotated `#[cfg(test)]` (attribute through the
/// end of the following brace block or statement).
fn cfg_test_spans(stripped: &str) -> Vec<(usize, usize)> {
    let b = stripped.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find("#[cfg(test)]") {
        let start = from + pos;
        let mut i = start + "#[cfg(test)]".len();
        // Skip further attributes and whitespace to the item itself.
        loop {
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            if b.get(i) == Some(&b'#') {
                while i < b.len() && b[i] != b']' {
                    i += 1;
                }
                i += 1;
            } else {
                break;
            }
        }
        // The item ends at its matching close brace (mod/fn) or at a
        // semicolon (e.g. a `use` line).
        let mut depth = 0usize;
        let mut end = i;
        while end < b.len() {
            match b[end] {
                b'{' => depth += 1,
                b'}' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        spans.push((start, end));
        from = end.max(start + 1);
    }
    spans
}

fn scan_substrings(
    ctx: &FileContext,
    rel: &Path,
    rule: &'static str,
    patterns: &[&str],
    out: &mut Vec<Violation>,
) {
    for pat in patterns {
        let mut from = 0;
        while let Some(pos) = ctx.stripped[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            if ctx.is_exempt(at) {
                continue;
            }
            out.push(Violation {
                file: rel.to_path_buf(),
                line: ctx.line_of(at),
                rule,
                what: format!("forbidden `{pat}` in non-test code"),
            });
        }
    }
}

/// Flags `<expr>.<field> =` / `+=` / `-=` for the audited route-entry
/// fields. Comparison (`==`) and reads are fine.
fn scan_field_assignments(ctx: &FileContext, rel: &Path, out: &mut Vec<Violation>) {
    let b = ctx.stripped.as_bytes();
    for field in ROUTE_FIELDS {
        let needle = format!(".{field}");
        let mut from = 0;
        while let Some(pos) = ctx.stripped[from..].find(&needle) {
            let at = from + pos;
            from = at + needle.len();
            let after = at + needle.len();
            // Field-name boundary: `.fdx` or `.dist_to` are not hits.
            if b.get(after).is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_') {
                continue;
            }
            let mut j = after;
            while b.get(j).is_some_and(|&c| c == b' ' || c == b'\t') {
                j += 1;
            }
            let assign = match (b.get(j), b.get(j + 1)) {
                (Some(b'='), next) => next != Some(&b'=') && next != Some(&b'>'),
                (Some(b'+') | Some(b'-'), Some(b'=')) => true,
                _ => false,
            };
            if !assign || ctx.is_exempt(at) {
                continue;
            }
            let mut what = String::new();
            let _ = write!(
                what,
                "route-entry field `{field}` assigned outside route_table.rs audited setters"
            );
            out.push(Violation {
                file: rel.to_path_buf(),
                line: ctx.line_of(at),
                rule: "route-fields",
                what,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new(src)
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"
let a = "call .unwrap() inside a string";
// comment mentioning panic!( here
/* block with SystemTime inside */
let b = 'x';
let c = '\'';
let r = r"raw with .expect( text";
fn real() {}
"#;
        let s = strip_literals(src);
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains("panic!("));
        assert!(!s.contains("SystemTime"));
        assert!(!s.contains(".expect("));
        assert!(s.contains("fn real()"));
        assert_eq!(s.lines().count(), src.lines().count(), "newlines preserved");
    }

    #[test]
    fn nested_block_comments_and_lifetimes() {
        let src = "/* outer /* inner .unwrap() */ still comment */ fn f<'a>(x: &'a str) {}";
        let s = strip_literals(src);
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn panic_patterns_fire_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); }\n}\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(&c, Path::new("m.rs"), "no-panic", PANIC_PATTERNS, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn determinism_patterns_fire() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(&c, Path::new("m.rs"), "determinism", NONDET_PATTERNS, &mut v);
        assert!(v.iter().any(|x| x.line == 1));
        assert!(v.iter().any(|x| x.line == 2));
    }

    #[test]
    fn field_assignment_detection() {
        let src = "\
fn f(e: &mut E) {
    e.fd = 3;
    e.dist += 1;
    if e.fd == 3 {}
    let x = e.fd.min(2);
    e.fdx = 1;
    s.next_hop = n;
}
";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_field_assignments(&c, Path::new("m.rs"), &mut v);
        let mut lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![2, 3, 7], "fd=, dist+= and next_hop= hit; reads and methods do not");
    }

    #[test]
    fn waiver_comment_exempts_a_line() {
        let src = "fn f() { x.unwrap(); } // xtask:allow -- test fixture\nfn g() { y.unwrap(); }\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(&c, Path::new("m.rs"), "no-panic", PANIC_PATTERNS, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_span_covers_nested_braces() {
        let src = "#[cfg(test)]\nmod t {\n fn a() { if x { y.unwrap(); } }\n}\nfn b() {}\n";
        let spans = cfg_test_spans(&strip_literals(src));
        assert_eq!(spans.len(), 1);
        let (a, b) = spans[0];
        assert!(src[a..b].contains("unwrap"));
        assert!(!src[a..b].contains("fn b"));
    }

    #[test]
    fn fault_order_patterns_fire_on_unordered_maps() {
        let src = "use std::collections::HashMap;\nfn f() { let s: HashSet<u8> = Default::default(); }\n// a comment naming HashMap is fine\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(
            &c,
            Path::new("crates/sim/src/faults.rs"),
            "fault-determinism",
            FAULT_ORDER_PATTERNS,
            &mut v,
        );
        let mut lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2], "code hits flagged, comment mention exempt");
        assert!(v.iter().all(|x| x.rule == "fault-determinism"));
    }

    #[test]
    fn fault_lint_scopes_to_the_deterministic_replay_modules_only() {
        // The in-tree simulator uses HashMap freely elsewhere (e.g.
        // metrics counters); the determinism ban must bind only to
        // faults.rs, spatial.rs, telemetry.rs and parallel.rs. Guard
        // the scoping, not just the pattern list. This also proves the
        // real telemetry and parallel-kernel modules are
        // HashMap/HashSet-free, since check_repo scans them here.
        let root = workspace_root();
        let metrics = root.join("crates/sim/src/metrics.rs");
        let src = fs::read_to_string(metrics).expect("metrics.rs readable");
        assert!(src.contains("HashMap") || src.contains("HashSet"), "scope fixture went stale");
        let v = check_repo(&root);
        assert!(
            v.iter().all(|x| x.rule != "fault-determinism"),
            "fault-determinism hits outside faults.rs/spatial.rs scope:\n{v:?}"
        );
    }

    #[test]
    fn fault_lint_covers_the_spatial_index() {
        // spatial.rs is inside the fault-determinism scope: an
        // unordered map smuggled into the neighbor index would be
        // flagged exactly like one in faults.rs.
        let src = "fn f() { let s: std::collections::HashMap<u8, u8> = Default::default(); }\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(
            &c,
            Path::new("crates/sim/src/spatial.rs"),
            "fault-determinism",
            FAULT_ORDER_PATTERNS,
            &mut v,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn fault_lint_covers_the_telemetry_exporter() {
        // telemetry.rs promises byte-identical JSONL across reruns of
        // the same (scenario, seed); an unordered map in the sampler
        // or the exporter would silently break that.
        let src = "fn f() { let s: std::collections::HashSet<u8> = Default::default(); }\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(
            &c,
            Path::new("crates/sim/src/telemetry.rs"),
            "fault-determinism",
            FAULT_ORDER_PATTERNS,
            &mut v,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn fault_lint_covers_the_parallel_kernel() {
        // parallel.rs promises byte-identical merges for every worker
        // count; an unordered map in the partitioner, the shard effect
        // buffers or the replay heap would make the canonical order a
        // fiction. (check_repo scanning the real module in
        // fault_lint_scopes_to_the_deterministic_replay_modules_only
        // proves it is currently HashMap/HashSet-free.)
        let src = "fn f() { let s: std::collections::HashMap<u8, u8> = Default::default(); }\n";
        let c = ctx(src);
        let mut v = Vec::new();
        scan_substrings(
            &c,
            Path::new("crates/sim/src/parallel.rs"),
            "fault-determinism",
            FAULT_ORDER_PATTERNS,
            &mut v,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn repo_is_clean() {
        let root = workspace_root();
        let v = check_repo(&root);
        assert!(v.is_empty(), "lint violations in tree:\n{}", {
            let mut s = String::new();
            for x in &v {
                let _ = writeln!(s, "{x}");
            }
            s
        });
    }
}
