//! `cargo xtask` — repository automation.
//!
//! * `check [--format text|json]` — run the static-analysis engine
//!   over the workspace; non-zero exit on any finding.
//! * `selfcheck` — run the engine over the planted-violation fixture
//!   corpus and compare against the byte-pinned expected report,
//!   asserting every rule still fires.

use std::process::ExitCode;
use xtask::{analyze_fixtures, analyze_tree, passes, report, workspace_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("selfcheck") => selfcheck(),
        _ => {
            eprintln!("usage: cargo xtask check [--format text|json] | cargo xtask selfcheck");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut format = "text";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = "text",
                Some("json") => format = "json",
                other => {
                    eprintln!("--format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let diags = analyze_tree(&workspace_root());
    match format {
        "json" => print!("{}", report::json(&diags)),
        _ => print!("{}", report::text(&diags)),
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn selfcheck() -> ExitCode {
    let root = workspace_root();
    let fixtures = root.join("crates").join("xtask").join("fixtures");
    let diags = analyze_fixtures(&fixtures);
    let got = report::json(&diags);
    let expected_path = fixtures.join("expected.json");
    let expected = match std::fs::read_to_string(&expected_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("selfcheck: cannot read {}: {e}", expected_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    if got != expected {
        eprintln!("selfcheck: fixture diagnostics drifted from expected.json");
        eprintln!("--- expected\n{expected}\n--- got\n{got}");
        ok = false;
    }
    for rule in passes::all_rules() {
        if !diags.iter().any(|d| d.rule == rule) {
            eprintln!("selfcheck: no fixture trips rule `{rule}`");
            ok = false;
        }
    }
    if ok {
        println!("xtask selfcheck: {} planted findings, every rule fires", diags.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
