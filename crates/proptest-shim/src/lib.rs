//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the real `proptest` cannot be downloaded. This shim
//! implements exactly the subset of the API the workspace's property
//! tests use — `proptest!` (block and closure forms), `prop_assert*!`,
//! `any`, integer-range / tuple / mapped strategies,
//! `collection::vec`, `option::of`, `sample::select`, `bool::ANY` and
//! `ProptestConfig::with_cases` — over a deterministic splitmix64
//! generator.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the panic from the test
//!   body (the workspace's assertions carry their own context).
//! * **Fixed seeding.** Every run generates the same case sequence, so
//!   failures reproduce exactly; there is no persistence file.
//! * **64 cases by default** (the real crate runs 256).
//!
//! [`proptest`]: https://docs.rs/proptest

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Runner configuration (only the case count is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream used to generate test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// The fixed-seed stream every property test draws from.
        pub fn deterministic() -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from the test RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).saturating_sub(self.start as u64);
                    (self.start as u64 + rng.below(span)) as $t
                }
            }
        )+};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// `any::<T>()` for the primitive types the tests use.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `Option` strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }

    /// Uniformly selects one of `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select(items)
    }
}

/// `bool` strategies (`ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual glob-import surface: traits, `any`, macros and the `prop`
/// module alias.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the real prelude's `prop` re-export module.
    pub mod prop {
        pub use crate::{bool, collection, option, sample};
    }
}

/// Asserts a condition inside a property (no shrinking: delegates to
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// The property-test entry point. Supports the block form (a sequence
/// of `#[test] fn name(binding in strategy, ...) { body }` items, with
/// an optional leading `#![proptest_config(...)]`) and the closure form
/// `proptest!(|(binding in strategy)| { body })`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    (|($($pat:pat_param in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg = $crate::test_runner::Config::default();
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        for __case in 0..__cfg.cases {
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
            $body
        }
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]'s block form.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        let s = crate::collection::vec((0u16..9, crate::bool::ANY), 1..8);
        for _ in 0..32 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }

    proptest! {
        #[test]
        fn block_form_compiles(x in 0u32..10, flag in prop::bool::ANY, o in prop::collection::vec(0u8..4, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(o.len() < 5);
            let _ = flag;
        }
    }

    #[test]
    fn closure_form_compiles() {
        proptest!(|(v in prop::collection::vec(0u32..5, 1..4))| {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 5));
        });
    }
}
