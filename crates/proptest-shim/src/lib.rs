//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the real `proptest` cannot be downloaded. This shim
//! implements exactly the subset of the API the workspace's property
//! tests use — `proptest!` (block and closure forms), `prop_assert*!`,
//! `any`, integer-range / tuple / mapped strategies,
//! `collection::vec`, `option::of`, `sample::select`, `bool::ANY` and
//! `ProptestConfig::with_cases` — over a deterministic splitmix64
//! generator.
//!
//! Like the real crate, the shim **shrinks** failing cases (halving for
//! numeric ranges, truncation/element-removal for vectors, componentwise
//! for tuples) and **persists regression seeds**: the RNG state that
//! produced a failure is appended to
//! `proptest-regressions/<module>__<test>.txt` under the test crate's
//! manifest directory, and replayed before fresh cases on every later
//! run, so a once-seen counterexample can never silently disappear.
//!
//! Remaining differences from the real crate, by design:
//!
//! * Generated values must be `Clone + Debug` (needed to re-run the
//!   body during shrinking and to print the minimised counterexample).
//! * **Fixed seeding.** Fresh cases always come from the same stream,
//!   so failures reproduce exactly across machines.
//! * **64 cases by default** (the real crate runs 256).
//! * `prop_map` outputs do not shrink (the mapping is not invertible).
//!
//! [`proptest`]: https://docs.rs/proptest

/// Test-runner configuration, the deterministic RNG, regression-seed
/// persistence and the shrinking property runner.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt::Debug;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    /// Runner configuration (only the case count is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream used to generate test inputs.
    ///
    /// The full generator state is a single `u64`, which is what makes
    /// seed persistence trivial: [`TestRng::state`] before generating a
    /// case captures everything needed to regenerate it.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// The fixed-seed stream every property test draws from.
        pub fn deterministic() -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15)
        }

        /// The current generator state (a regression seed).
        pub fn state(&self) -> u64 {
            self.0
        }

        /// Rebuilds a generator from a persisted state.
        pub fn from_state(state: u64) -> Self {
            TestRng(state)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// The regression-seed file for one property test:
    /// `<manifest_dir>/proptest-regressions/<module>__<test>.txt`.
    pub fn persistence_file(manifest_dir: &str, module_path: &str, test_name: &str) -> PathBuf {
        let module = module_path.replace("::", "__");
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{module}__{test_name}.txt"))
    }

    /// Loads persisted regression seeds (`cc <hex>` lines; everything
    /// else is a comment). A missing file is an empty seed set.
    pub fn load_regression_seeds(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                u64::from_str_radix(rest.trim(), 16).ok()
            })
            .collect()
    }

    /// Appends one regression seed, creating the file (with a header
    /// comment) and directory as needed. Already-known seeds are not
    /// duplicated. Returns whether the seed is now on disk.
    pub fn save_regression_seed(path: &Path, state: u64) -> bool {
        if load_regression_seeds(path).contains(&state) {
            return true;
        }
        use std::io::Write;
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return false;
            }
        }
        let fresh = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return false;
        };
        if fresh {
            let _ = writeln!(
                f,
                "# Seeds for failure cases found by proptest-shim. It is recommended\n\
                 # to check this file into source control: each `cc <hex>` line is a\n\
                 # generator state replayed before fresh cases on every run."
            );
        }
        writeln!(f, "cc {state:016x}").is_ok()
    }

    /// Greedily minimises a failing value: repeatedly takes the first
    /// shrink candidate that still fails, until no candidate does (or a
    /// global attempt budget runs out).
    fn shrink_to_minimal<S, A>(strat: &S, mut current: S::Value, attempt: &A) -> S::Value
    where
        S: Strategy,
        S::Value: Clone,
        A: Fn(&S::Value) -> bool,
    {
        let mut budget = 1024usize;
        loop {
            let mut improved = false;
            for cand in strat.shrink(&current) {
                if budget == 0 {
                    return current;
                }
                budget -= 1;
                if !attempt(&cand) {
                    current = cand;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Runs one property: replays persisted regression seeds first, then
    /// `cfg.cases` fresh cases. On failure the provoking seed is saved
    /// (when `persist` is given), the case is shrunk to a local minimum,
    /// and the runner panics with both the original and the minimised
    /// counterexample.
    pub fn run_property<S, F>(cfg: &Config, strat: &S, persist: Option<PathBuf>, run: F)
    where
        S: Strategy,
        S::Value: Clone + Debug,
        F: Fn(&S::Value),
    {
        let attempt = |v: &S::Value| catch_unwind(AssertUnwindSafe(|| run(v))).is_ok();

        if let Some(path) = &persist {
            for state in load_regression_seeds(path) {
                let mut rng = TestRng::from_state(state);
                let value = strat.generate(&mut rng);
                if !attempt(&value) {
                    let minimal = shrink_to_minimal(strat, value.clone(), &attempt);
                    panic!(
                        "persisted regression still fails (cc {state:016x} in {path})\n\
                         \x20   original: {value:?}\n\
                         \x20   minimal:  {minimal:?}",
                        path = path.display(),
                    );
                }
            }
        }

        let mut rng = TestRng::deterministic();
        for case in 0..cfg.cases {
            let state = rng.state();
            let value = strat.generate(&mut rng);
            if !attempt(&value) {
                let persisted = persist
                    .as_ref()
                    .filter(|p| save_regression_seed(p, state))
                    .map(|p| format!("; seed saved to {}", p.display()))
                    .unwrap_or_default();
                let minimal = shrink_to_minimal(strat, value.clone(), &attempt);
                panic!(
                    "property failed at case {case} (cc {state:016x}{persisted})\n\
                     \x20   original: {value:?}\n\
                     \x20   minimal:  {minimal:?}",
                );
            }
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from the test RNG, and
    /// proposes smaller variants of a failing value.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes "smaller" candidates for `value`, most aggressive
        /// first. The default proposes nothing (no shrinking).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f` (mapped values do not
        /// shrink — the mapping is not invertible).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).saturating_sub(self.start as u64);
                    (self.start as u64 + rng.below(span)) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    // Toward the range start: jump all the way, halve
                    // the distance, step by one.
                    let mut out = Vec::new();
                    if *value > self.start {
                        out.push(self.start);
                        let mid = self.start + (*value - self.start) / 2;
                        if mid != self.start && mid != *value {
                            out.push(mid);
                        }
                        if *value - 1 != self.start {
                            out.push(*value - 1);
                        }
                    }
                    out
                }
            }
        )+};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone),+
            {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // Componentwise: shrink one coordinate at a time.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut c = value.clone();
                            c.$idx = cand;
                            out.push(c);
                        }
                    )+
                    out
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);
}

/// `any::<T>()` for the primitive types the tests use.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Proposes smaller variants of a failing value (toward zero /
        /// `false`). The default proposes nothing.
        fn shrink_value(&self) -> Vec<Self>
        where
            Self: Sized,
        {
            Vec::new()
        }
    }

    macro_rules! arb_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(&self) -> Vec<$t> {
                    let v = *self;
                    let mut out = Vec::new();
                    if v > 0 {
                        out.push(0);
                        if v / 2 != 0 {
                            out.push(v / 2);
                        }
                        if v - 1 != 0 && v - 1 != v / 2 {
                            out.push(v - 1);
                        }
                    }
                    out
                }
            }
        )+};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(&self) -> Vec<$t> {
                    let v = *self;
                    let mut out = Vec::new();
                    if v != 0 {
                        out.push(0);
                        if v / 2 != 0 {
                            out.push(v / 2);
                        }
                    }
                    out
                }
            }
        )+};
    }
    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink_value(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_value()
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.start;
            let n = value.len();
            let mut out = Vec::new();
            // Length shrinks first (most aggressive): down to the
            // minimum, half way down, then dropping single elements.
            if n > min {
                out.push(value[..min].to_vec());
                let half = min + (n - min) / 2;
                if half != min && half != n {
                    out.push(value[..half].to_vec());
                }
                for i in 0..n.min(16) {
                    let mut v = value.clone();
                    v.remove(i);
                    if v.len() >= min {
                        out.push(v);
                    }
                }
            }
            // Then element shrinks, a few candidates per position.
            for i in 0..n.min(8) {
                for cand in self.element.shrink(&value[i]).into_iter().take(4) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `Option` strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(inner) => {
                    let mut out = vec![None];
                    out.extend(self.0.shrink(inner).into_iter().map(Some));
                    out
                }
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone + PartialEq> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            // Toward earlier choices in the list.
            match self.0.iter().position(|x| x == value) {
                Some(i) if i > 0 => vec![self.0[0].clone(), self.0[i - 1].clone()],
                _ => Vec::new(),
            }
        }
    }

    /// Uniformly selects one of `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select(items)
    }
}

/// `bool` strategies (`ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self, value: &core::primitive::bool) -> Vec<core::primitive::bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// The usual glob-import surface: traits, `any`, macros and the `prop`
/// module alias.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the real prelude's `prop` re-export module.
    pub mod prop {
        pub use crate::{bool, collection, option, sample};
    }
}

/// Asserts a condition inside a property (the runner catches the panic,
/// shrinks the case and re-raises with the minimised counterexample).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// The property-test entry point. Supports the block form (a sequence
/// of `#[test] fn name(binding in strategy, ...) { body }` items, with
/// an optional leading `#![proptest_config(...)]`) and the closure form
/// `proptest!(|(binding in strategy)| { body })`.
///
/// Block-form tests persist regression seeds under the invoking crate's
/// `proptest-regressions/` directory; the anonymous closure form shrinks
/// but does not persist.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    (|($($pat:pat_param in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg = $crate::test_runner::Config::default();
        let __strat = ($(($strat),)+);
        $crate::test_runner::run_property(&__cfg, &__strat, ::core::option::Option::None, |__value| {
            let ($($pat,)+) = ::core::clone::Clone::clone(__value);
            $body
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]'s block form.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strat = ($(($strat),)+);
            let __persist = $crate::test_runner::persistence_file(
                env!("CARGO_MANIFEST_DIR"),
                module_path!(),
                stringify!($name),
            );
            $crate::test_runner::run_property(
                &__cfg,
                &__strat,
                ::core::option::Option::Some(__persist),
                |__value| {
                    let ($($pat,)+) = ::core::clone::Clone::clone(__value);
                    $body
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::{load_regression_seeds, run_property, save_regression_seed, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        let s = crate::collection::vec((0u16..9, crate::bool::ANY), 1..8);
        for _ in 0..32 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }

    proptest! {
        #[test]
        fn block_form_compiles(x in 0u32..10, flag in prop::bool::ANY, o in prop::collection::vec(0u8..4, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(o.len() < 5);
            let _ = flag;
        }
    }

    #[test]
    fn closure_form_compiles() {
        proptest!(|(v in prop::collection::vec(0u32..5, 1..4))| {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 5));
        });
    }

    #[test]
    fn range_shrink_moves_toward_start() {
        let s = 5u32..100;
        let cands = s.shrink(&40);
        assert!(cands.contains(&5), "jump to start");
        assert!(cands.contains(&22), "halve the distance: {cands:?}");
        assert!(cands.contains(&39), "step by one");
        assert!(s.shrink(&5).is_empty(), "the start is already minimal");
    }

    #[test]
    fn vec_shrink_respects_minimum_length() {
        let s = crate::collection::vec(0u8..10, 2..8);
        let v = vec![9, 8, 7, 6, 5];
        for cand in s.shrink(&v) {
            assert!(cand.len() >= 2, "candidate below min length: {cand:?}");
        }
        assert!(s.shrink(&v).iter().any(|c| c.len() == 2), "truncates to the minimum");
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        let s = (0u32..100, 0u32..100);
        for (a, b) in s.shrink(&(10, 20)) {
            assert!(
                (a, b) != (10, 20) && (a == 10 || b == 20),
                "exactly one coordinate moves: ({a}, {b})"
            );
        }
    }

    #[test]
    fn failing_property_shrinks_to_the_boundary() {
        let err = std::panic::catch_unwind(|| {
            run_property(&ProptestConfig::with_cases(64), &(0u32..1000,), None, |v| {
                assert!(v.0 < 10, "too big: {}", v.0);
            });
        })
        .expect_err("property must fail");
        let msg =
            err.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("minimal:  (10,)"), "shrinks to exactly the boundary: {msg}");
        assert!(msg.contains("original:"), "reports the raw case too: {msg}");
    }

    #[test]
    fn regression_seeds_round_trip_and_replay_first() {
        let dir = std::env::temp_dir().join(format!("pshim-{}", std::process::id()));
        let path = dir.join("roundtrip.txt");
        let _ = std::fs::remove_file(&path);
        assert!(load_regression_seeds(&path).is_empty());
        assert!(save_regression_seed(&path, 0xdead_beef));
        assert!(save_regression_seed(&path, 0x1234));
        assert!(save_regression_seed(&path, 0xdead_beef), "dedup keeps the file stable");
        assert_eq!(load_regression_seeds(&path), vec![0xdead_beef, 0x1234]);

        // A persisted seed must be replayed (and fail) before any fresh
        // case: seed the file with a state, verify the failure message
        // names it as a persisted regression.
        let replay = dir.join("replay.txt");
        let _ = std::fs::remove_file(&replay);
        let mut probe = TestRng::from_state(7);
        let bad = Strategy::generate(&(0u32..1000), &mut probe);
        assert!(save_regression_seed(&replay, 7));
        let err = std::panic::catch_unwind(|| {
            run_property(
                &ProptestConfig::with_cases(0),
                &(0u32..1000,),
                Some(replay.clone()),
                |v| {
                    assert!(v.0 != bad);
                },
            );
        })
        .expect_err("persisted seed must reproduce the failure");
        let msg =
            err.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("persisted regression"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_failure_persists_its_seed() {
        let dir = std::env::temp_dir().join(format!("pshim-persist-{}", std::process::id()));
        let path = dir.join("fresh.txt");
        let _ = std::fs::remove_file(&path);
        let err = std::panic::catch_unwind(|| {
            run_property(
                &ProptestConfig::with_cases(32),
                &(0u32..1000,),
                Some(path.clone()),
                |v| {
                    assert!(v.0 < 500);
                },
            );
        })
        .expect_err("property must fail");
        let _ = err;
        let seeds = load_regression_seeds(&path);
        assert_eq!(seeds.len(), 1, "the provoking rng state is persisted");
        // Replaying the persisted state regenerates a failing value.
        let mut rng = TestRng::from_state(seeds[0]);
        let v = Strategy::generate(&(0u32..1000), &mut rng);
        assert!(v >= 500);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
