//! Differential replay: every shipped witness fixture must replay
//! through the simulator's forensic audit machinery (`sim::audit`) and
//! reproduce the checker's first-breach verdict byte-for-byte.
//!
//! Each safety witness ships as a pair of fixtures: the rendered report
//! (`*.txt`, pinned by `checker.rs`) and the machine-readable trace
//! (`*.events`, one [`Event`] wire line per step). The tests here close
//! the loop in both directions: the `.events` trace must equal the
//! minimized trace the checker finds today, and feeding it to the
//! auditor must yield exactly the forensic section embedded in the
//! report. A liveness witness has no auditor counterpart — the audit
//! layer watches route tables, and a discovery that never starts leaves
//! them untouched — so its differential check asserts the *absence* of
//! a table breach alongside the stall verdict.

use modelcheck::coverage::ViolationClass;
use modelcheck::live::{self, LiveVerdict};
use modelcheck::{report, scenarios, Checker, Event};

fn parse_events(text: &str) -> Vec<Event> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| Event::from_wire(l).unwrap_or_else(|| panic!("bad fixture line: {l}")))
        .collect()
}

#[test]
fn event_wire_format_round_trips() {
    let events = [
        Event::Deliver(vec![0, 0, 1, 0, 1, 0, 0xde, 0xad]),
        Event::Lose(vec![2, 0, 1, 0, 3, 255]),
        Event::Fire { node: 3, token: u64::MAX },
        Event::Expire { node: 1, dest: 0 },
        Event::Bump { node: 2 },
        Event::Originate { index: 0 },
        Event::Toggle { index: 1 },
        Event::Restart { node: 4 },
    ];
    for e in events {
        let line = e.to_wire();
        assert_eq!(Event::from_wire(&line), Some(e.clone()), "round-trip failed for {line}");
    }
    for bad in ["", "deliver", "deliver xyz", "deliver abc", "fire 1", "restart 1 2", "warp 3"] {
        assert_eq!(Event::from_wire(bad), None, "accepted malformed line: {bad:?}");
    }
}

/// Replays one safety witness: checks the `.events` fixture against the
/// checker's freshly-minimized trace, then against the auditor.
fn check_safety_witness(entry: &scenarios::SuiteEntry, events_fixture: &str, report_fixture: &str) {
    let events = parse_events(events_fixture);

    // Direction 1: the fixture is exactly what the checker finds today.
    let outcome = Checker::new(entry.scenario.clone(), entry.budget).run(scenarios::aodv_factory());
    let cex = outcome.violation.expect("the curated witness must still produce its violation");
    let fresh: Vec<String> = cex.events.iter().map(Event::to_wire).collect();
    let pinned: Vec<String> = events.iter().map(Event::to_wire).collect();
    assert_eq!(fresh, pinned, "{}: .events fixture drifted", entry.scenario.name);

    // Direction 2: the simulator's audit machinery, fed the fixture,
    // reaches the same first-breach verdict the checker rendered.
    let section = report::forensic_section(&entry.scenario, scenarios::aodv_factory(), &events);
    assert!(
        section.starts_with("-- forensic replay --"),
        "{}: the auditor failed to flag the breach",
        entry.scenario.name
    );
    assert!(
        report_fixture.ends_with(&section),
        "{}: auditor verdict differs from the pinned report section",
        entry.scenario.name
    );
}

#[test]
fn aodv_stale_reply_witness_replays_through_audit() {
    check_safety_witness(
        &scenarios::aodv_stale_reply(),
        include_str!("fixtures/aodv_stale_reply.events"),
        include_str!("fixtures/aodv_stale_reply.txt"),
    );
}

#[test]
fn aodv_restart_amnesia_witness_replays_through_audit() {
    check_safety_witness(
        &scenarios::aodv_restart_amnesia(),
        include_str!("fixtures/aodv_restart_amnesia.events"),
        include_str!("fixtures/aodv_restart_amnesia.txt"),
    );
}

/// The DSR restart stall: a pure liveness hole. The auditor must see
/// *no* table breach on the same trace — the unsoundness is that
/// nothing ever happens, which only the fair-completion probe observes.
#[test]
fn dsr_restart_stall_witness_is_audit_invisible_but_stalls() {
    let entry = scenarios::dsr_restart_stale_id();
    let events = parse_events(include_str!("fixtures/dsr_restart_stale_id.events"));

    let verdict = live::replay_live(&entry.scenario, scenarios::dsr_factory(), &events);
    assert_eq!(
        verdict,
        LiveVerdict::Stall { src: 0, dst: 2, discovering: true },
        "the pinned trace must stall with a wedged discovery"
    );

    let section = report::forensic_section(&entry.scenario, scenarios::dsr_factory(), &events);
    assert!(
        section.starts_with("-- final route tables --"),
        "a liveness stall must not register as a table-safety breach: {section}"
    );

    // And the full liveness report stays pinned.
    let raw_len = events.len();
    let rendered = live::render_stall(&entry.scenario, scenarios::dsr_factory(), &events, raw_len);
    let expected = include_str!("fixtures/dsr_restart_stale_id.txt");
    assert_eq!(rendered, expected, "liveness stall report drifted from the pinned fixture");
}

/// The same class of hole in AODV: restarting the probe source wedges
/// its next discovery behind the neighbours' immortal RREQ-id cache.
#[test]
fn aodv_restart_stall_witness_is_audit_invisible_but_stalls() {
    let entry = scenarios::aodv_restart_amnesia();
    let events = parse_events(include_str!("fixtures/aodv_restart_stall.events"));

    let verdict = live::replay_live(&entry.scenario, scenarios::aodv_factory(), &events);
    assert!(
        matches!(verdict, LiveVerdict::Stall { src: 2, dst: 0, .. }),
        "the pinned trace must stall the probe source, got {verdict}"
    );

    let section = report::forensic_section(&entry.scenario, scenarios::aodv_factory(), &events);
    assert!(
        section.starts_with("-- final route tables --"),
        "this stall trace must not trip the table-safety auditor"
    );

    let rendered =
        live::render_stall(&entry.scenario, scenarios::aodv_factory(), &events, events.len());
    let expected = include_str!("fixtures/aodv_restart_stall.txt");
    assert_eq!(rendered, expected, "AODV stall report drifted from the pinned fixture");
}

/// Sanity for the expectation machinery: classification is stable.
#[test]
fn class_labels_are_stable() {
    assert_eq!(ViolationClass::RoutingLoop.to_string(), "routing-loop");
    assert_eq!(ViolationClass::FdRaised.to_string(), "fd-raised");
    assert_eq!(ViolationClass::NdcUnsound.to_string(), "ndc-unsound");
    assert_eq!(ViolationClass::LivenessStall.to_string(), "liveness-stall");
    assert_eq!(ViolationClass::Diverged.to_string(), "diverged");
}
