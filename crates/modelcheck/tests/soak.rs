//! Random-cell soak: the coverage explorer is exercised over hundreds
//! of generated topologies per protocol. No cell may panic, LDR must
//! stay breach-free, every baseline finding must land in its pinned
//! unsoundness class, and any witness trace the shrinkers emit must be
//! 1-minimal. Failing RNG states persist under `proptest-regressions/`
//! so a once-seen counterexample replays on every later run.

use modelcheck::coverage::{self, ExploreBudget, ViolationClass};
use modelcheck::live::{self, LiveVerdict};
use modelcheck::{checker, scenarios, topo};
use proptest::prelude::*;

/// Deliberately tiny: the soak's job is breadth across topologies, not
/// depth within one — depth belongs to the release binary's CI budget.
fn soak_budget() -> ExploreBudget {
    ExploreBudget { walks: 2, max_steps: 24, max_states: 4_000 }
}

/// Checks a finding's witness trace: classified, and 1-minimal under
/// the oracle that matches its class.
fn check_finding(
    scenario: &modelcheck::Scenario,
    finding: &coverage::Finding,
    replay_class: impl Fn(&[modelcheck::Event]) -> Option<ViolationClass>,
) {
    assert!(finding.events.len() <= finding.raw_len);
    assert_eq!(
        replay_class(&finding.events),
        Some(finding.class),
        "{}: witness trace does not reproduce its finding",
        scenario.name
    );
    for i in 0..finding.events.len() {
        let mut cand = finding.events.clone();
        cand.remove(i);
        assert_ne!(
            replay_class(&cand),
            Some(finding.class),
            "{}: witness trace is not 1-minimal (event {i} is removable)",
            scenario.name
        );
    }
}

/// The class a trace replays to under a given factory: safety classes
/// via the transition checker, stall via fair completion.
fn replay_class<M: modelcheck::ProtocolModel>(
    scenario: &modelcheck::Scenario,
    factory: impl Fn(manet_sim::packet::NodeId) -> M + Copy,
    events: &[modelcheck::Event],
) -> Option<ViolationClass> {
    if let Some((_, v)) = checker::replay(scenario, factory, events) {
        return Some(coverage::classify(&v));
    }
    match live::replay_live(scenario, factory, events) {
        LiveVerdict::Stall { .. } => Some(ViolationClass::LivenessStall),
        LiveVerdict::Diverged => Some(ViolationClass::Diverged),
        LiveVerdict::Pass | LiveVerdict::Vacuous => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// LDR: zero breaches, safety or liveness, on every generated cell.
    #[test]
    fn ldr_random_cells_explore_clean(index in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let sc = topo::generate(seed, index, true);
        let e = coverage::explore(&sc, scenarios::ldr_factory(), seed, &soak_budget());
        prop_assert!(
            e.finding.is_none(),
            "{}: LDR produced {:?}",
            sc.name,
            e.finding.map(|f| f.class)
        );
    }

    /// AODV: anything it breaks must be one of its pinned classes.
    #[test]
    fn aodv_random_cells_stay_in_pinned_classes(index in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let sc = topo::generate(seed, index, true);
        let e = coverage::explore(&sc, scenarios::aodv_factory(), seed, &soak_budget());
        if let Some(f) = &e.finding {
            prop_assert!(
                matches!(
                    f.class,
                    ViolationClass::RoutingLoop
                        | ViolationClass::FdRaised
                        | ViolationClass::LivenessStall
                ),
                "{}: unpinned AODV class {}",
                sc.name,
                f.class
            );
            check_finding(&sc, f, |ev| replay_class(&sc, scenarios::aodv_factory(), ev));
        }
    }

    /// DSR: no successor graphs exist, so only the liveness class can
    /// fire — anything else is new unsoundness.
    #[test]
    fn dsr_random_cells_stay_in_pinned_classes(index in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let sc = topo::generate(seed, index, false);
        let e = coverage::explore(&sc, scenarios::dsr_factory(), seed, &soak_budget());
        if let Some(f) = &e.finding {
            prop_assert!(
                f.class == ViolationClass::LivenessStall,
                "{}: unpinned DSR class {}",
                sc.name,
                f.class
            );
            check_finding(&sc, f, |ev| replay_class(&sc, scenarios::dsr_factory(), ev));
        }
    }

    /// OLSR: stale link-state views may loop transiently or stall.
    #[test]
    fn olsr_random_cells_stay_in_pinned_classes(index in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let sc = topo::generate(seed, index, false);
        let e = coverage::explore(&sc, scenarios::olsr_factory(), seed, &soak_budget());
        if let Some(f) = &e.finding {
            prop_assert!(
                matches!(f.class, ViolationClass::RoutingLoop | ViolationClass::LivenessStall),
                "{}: unpinned OLSR class {}",
                sc.name,
                f.class
            );
            check_finding(&sc, f, |ev| replay_class(&sc, scenarios::olsr_factory(), ev));
        }
    }
}
