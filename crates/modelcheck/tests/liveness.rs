//! Liveness property tests: hand-built witnesses driven through fair
//! completion, shrinker 1-minimality on the liveness oracle, and the
//! pinned minimal stall traces.
//!
//! The ignored `bless_fixtures` test regenerates every fixture this
//! suite and its siblings pin (`cargo test -p modelcheck --release
//! --test liveness -- --ignored bless_fixtures`). Blessing is a
//! deliberate act: run it only after verifying a format change is
//! intentional, and review the diff.

use manet_sim::packet::NodeId;
use modelcheck::live::{self, LiveVerdict};
use modelcheck::{coverage, report, scenarios, Event, NetState, ProtocolModel, Scenario};

/// Hand-drives a witness: inject origination 0, deliver every in-flight
/// copy to quiescence (first copy in enumeration order — the benign
/// schedule), then apply `tail`. Returns the recorded trace.
fn originate_drain_then<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    tail: &[Event],
) -> Vec<Event> {
    let mut state = NetState::init(scenario, factory);
    let mut trace = Vec::new();
    let mut push = |state: &mut NetState<M>, event: Event| {
        let step = state.apply(scenario, &event).expect("hand-built event must apply");
        trace.push(event);
        *state = step.state;
    };
    push(&mut state, Event::Originate { index: 0 });
    for _ in 0..200 {
        let next = state.enumerate(scenario).into_iter().find(|e| matches!(e, Event::Deliver(_)));
        let Some(event) = next else { break };
        push(&mut state, event);
    }
    for event in tail {
        push(&mut state, event.clone());
    }
    trace
}

/// Asserts 1-minimality of a stalling trace: removing any single event
/// must lose the stall.
fn assert_stall_minimal<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    events: &[Event],
) {
    assert!(
        matches!(live::replay_live(scenario, factory, events), LiveVerdict::Stall { .. }),
        "the full trace must stall"
    );
    for i in 0..events.len() {
        let mut cand = events.to_vec();
        let removed = cand.remove(i);
        assert!(
            !matches!(live::replay_live(scenario, factory, &cand), LiveVerdict::Stall { .. }),
            "trace is not 1-minimal: still stalls without event {i} ({removed})"
        );
    }
}

/// A completed discovery fair-completes to Pass: the baseline sanity
/// check that the executor's probe machinery works at all.
#[test]
fn ldr_completed_discovery_fair_completes_to_pass() {
    let entry = &scenarios::ldr_suite()[0];
    let trace = originate_drain_then(&entry.scenario, scenarios::ldr_factory(), &[]);
    assert!(trace.len() > 1, "discovery must generate traffic");
    let verdict = live::replay_live(&entry.scenario, scenarios::ldr_factory(), &trace);
    assert_eq!(verdict, LiveVerdict::Pass);
}

/// LDR's persistent request identifiers survive a reboot of the probe
/// source, so the restart that permanently wedges DSR and AODV merely
/// costs LDR one fresh discovery — the paper's point, as a liveness
/// property.
#[test]
fn ldr_restart_of_probe_source_recovers() {
    let suite = scenarios::ldr_suite();
    let entry = &suite[4];
    assert_eq!(entry.scenario.name, "ldr-restart-recover");
    let (src, _) = entry.scenario.probe.expect("witness has a probe");
    let trace = originate_drain_then(
        &entry.scenario,
        scenarios::ldr_factory(),
        &[Event::Restart { node: src }],
    );
    let verdict = live::replay_live(&entry.scenario, scenarios::ldr_factory(), &trace);
    assert_eq!(verdict, LiveVerdict::Pass, "LDR must re-discover after a source reboot");
}

/// An unreachable probe destination makes the property vacuous, not a
/// stall: liveness is only demanded of physically possible routes.
#[test]
fn partitioned_probe_destination_is_vacuous() {
    let scenario = Scenario {
        name: "isolated-dest".into(),
        n: 3,
        links: vec![(0, 1)],
        originations: vec![(0, 2)],
        toggles: vec![],
        max_expires: 0,
        max_bumps: 0,
        max_losses: 0,
        max_restarts: 0,
        probe: Some((0, 2)),
    };
    let state = NetState::init(&scenario, scenarios::ldr_factory());
    let (verdict, _) = live::fair_complete(&scenario, state);
    assert_eq!(verdict, LiveVerdict::Vacuous);
}

/// A scenario without a probe never produces a liveness verdict.
#[test]
fn probe_free_scenario_is_vacuous() {
    let mut entry = scenarios::ldr_suite()[0].clone();
    entry.scenario.probe = None;
    let state = NetState::init(&entry.scenario, scenarios::ldr_factory());
    let (verdict, _) = live::fair_complete(&entry.scenario, state);
    assert_eq!(verdict, LiveVerdict::Vacuous);
}

/// The DSR restart hole, built by hand: complete one discovery, reboot
/// the source. Its request-id counter restarts at zero, every neighbour
/// still remembers `(src, 0)`, and — at a frozen instant, where
/// duplicate state never ages out — every later discovery for the probe
/// is suppressed at the first hop, forever.
#[test]
fn dsr_restart_stall_witness_is_one_minimal_and_pinned() {
    let entry = scenarios::dsr_restart_stale_id();
    let (src, _) = entry.scenario.probe.expect("witness has a probe");
    let raw = originate_drain_then(
        &entry.scenario,
        scenarios::dsr_factory(),
        &[Event::Restart { node: src }],
    );
    let min = live::shrink_stall(&entry.scenario, scenarios::dsr_factory(), raw);
    assert_stall_minimal(&entry.scenario, scenarios::dsr_factory(), &min);

    let rendered = live::render_stall(&entry.scenario, scenarios::dsr_factory(), &min, min.len());
    assert_eq!(
        rendered,
        include_str!("fixtures/dsr_restart_stale_id.txt"),
        "minimal DSR stall drifted from the pinned fixture"
    );
}

/// The same hole in AODV: the rebooted source's RREQ-id restarts while
/// neighbours' duplicate caches survive, wedging discovery for good.
#[test]
fn aodv_restart_stall_witness_is_one_minimal_and_pinned() {
    let entry = scenarios::aodv_restart_amnesia();
    let (src, _) = entry.scenario.probe.expect("witness has a probe");
    let raw = originate_drain_then(
        &entry.scenario,
        scenarios::aodv_factory(),
        &[Event::Restart { node: src }],
    );
    let min = live::shrink_stall(&entry.scenario, scenarios::aodv_factory(), raw);
    assert_stall_minimal(&entry.scenario, scenarios::aodv_factory(), &min);

    let rendered = live::render_stall(&entry.scenario, scenarios::aodv_factory(), &min, min.len());
    assert_eq!(
        rendered,
        include_str!("fixtures/aodv_restart_stall.txt"),
        "minimal AODV stall drifted from the pinned fixture"
    );
}

/// Regenerates every pinned fixture in `tests/fixtures/`. Ignored by
/// default; see the module docs.
#[test]
#[ignore = "regenerates pinned fixtures; run deliberately and review the diff"]
fn bless_fixtures() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let write = |name: &str, contents: &str| {
        std::fs::write(format!("{dir}/{name}"), contents)
            .unwrap_or_else(|e| panic!("write {name}: {e}"));
    };

    // Safety witnesses: minimized DFS traces as wire-format .events.
    for (entry, name) in [
        (scenarios::aodv_stale_reply(), "aodv_stale_reply.events"),
        (scenarios::aodv_restart_amnesia(), "aodv_restart_amnesia.events"),
    ] {
        let outcome = modelcheck::Checker::new(entry.scenario.clone(), entry.budget)
            .run(scenarios::aodv_factory());
        let cex = outcome.violation.expect("curated witness must violate");
        let mut text = String::new();
        text.push_str(&format!("# {}: minimized checker trace\n", entry.scenario.name));
        for e in &cex.events {
            text.push_str(&e.to_wire());
            text.push('\n');
        }
        write(name, &text);
        // Keep the rendered report in sync too.
        write(
            &name.replace(".events", ".txt"),
            &report::render(&entry.scenario, scenarios::aodv_factory(), &cex),
        );
    }

    // Liveness witnesses: minimal stall traces plus rendered reports.
    {
        let entry = scenarios::dsr_restart_stale_id();
        let raw = originate_drain_then(
            &entry.scenario,
            scenarios::dsr_factory(),
            &[Event::Restart { node: 0 }],
        );
        let min = live::shrink_stall(&entry.scenario, scenarios::dsr_factory(), raw);
        let mut text = format!("# {}: minimal liveness stall\n", entry.scenario.name);
        for e in &min {
            text.push_str(&e.to_wire());
            text.push('\n');
        }
        write("dsr_restart_stale_id.events", &text);
        write(
            "dsr_restart_stale_id.txt",
            &live::render_stall(&entry.scenario, scenarios::dsr_factory(), &min, min.len()),
        );
    }
    {
        let entry = scenarios::aodv_restart_amnesia();
        let (src, _) = entry.scenario.probe.expect("witness has a probe");
        let raw = originate_drain_then(
            &entry.scenario,
            scenarios::aodv_factory(),
            &[Event::Restart { node: src }],
        );
        let min = live::shrink_stall(&entry.scenario, scenarios::aodv_factory(), raw);
        let mut text = format!("# {}: minimal liveness stall\n", entry.scenario.name);
        for e in &min {
            text.push_str(&e.to_wire());
            text.push('\n');
        }
        write("aodv_restart_stall.events", &text);
        write(
            "aodv_restart_stall.txt",
            &live::render_stall(&entry.scenario, scenarios::aodv_factory(), &min, min.len()),
        );
    }

    // The clean LDR coverage report.
    {
        let budget = coverage::ExploreBudget { walks: 8, max_steps: 40, max_states: 20_000 };
        let mut explorations = Vec::new();
        for entry in scenarios::ldr_suite() {
            explorations.push(coverage::explore(
                &entry.scenario,
                scenarios::ldr_factory(),
                0xc0ffee,
                &budget,
            ));
        }
        write("ldr_coverage.txt", &coverage::render_report(&explorations, &budget));
    }
}
