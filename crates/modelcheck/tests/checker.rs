//! Checker kernel tests: canonical hashing, budget exhaustion, shrinker
//! minimality, the LDR safety obligations and the pinned AODV loop.

use manet_sim::packet::{ControlKind, ControlPacket, NodeId, PacketBody};
use modelcheck::net::Msg;
use modelcheck::shrink::shrink_with;
use modelcheck::{scenarios, Budget, Checker, Event, NetState};

fn ctrl_msg(src: u16, dst: u16, payload: &[u8]) -> Msg {
    Msg {
        src: NodeId(src),
        dst: NodeId(dst),
        body: PacketBody::Control(ControlPacket { kind: ControlKind::Rreq, bytes: payload.into() }),
        was_broadcast: true,
        notify_failure: false,
    }
}

#[test]
fn fingerprint_is_insertion_order_invariant() {
    let sc = scenarios::ldr_suite()[0].scenario.clone();
    let mk = scenarios::ldr_factory();
    let m1 = ctrl_msg(0, 1, b"alpha");
    let m2 = ctrl_msg(1, 2, b"beta");
    let m3 = ctrl_msg(2, 1, b"gamma");

    let mut a = NetState::init(&sc, mk);
    a.inflight.extend([m1.clone(), m2.clone(), m3.clone()]);
    let mut b = NetState::init(&sc, mk);
    b.inflight.extend([m3, m1, m2.clone()]);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "the in-flight multiset must hash independently of arrival order"
    );

    let mut c = NetState::init(&sc, mk);
    c.inflight.extend([m2.clone(), m2]);
    assert_ne!(a.fingerprint(), c.fingerprint(), "different multisets must not collide");
}

#[test]
fn fingerprint_tracks_environment_not_just_tables() {
    let sc = scenarios::ldr_suite()[1].scenario.clone();
    let mk = scenarios::ldr_factory();
    let a = NetState::init(&sc, mk);
    let mut b = NetState::init(&sc, mk);
    b.expires_left -= 1;
    assert_ne!(a.fingerprint(), b.fingerprint(), "remaining hazard budgets are part of the state");

    let rc = scenarios::ldr_suite()[4].scenario.clone();
    assert_eq!(rc.name, "ldr-restart-recover");
    let c = NetState::init(&rc, mk);
    let mut d = NetState::init(&rc, mk);
    d.restarts_left -= 1;
    assert_ne!(c.fingerprint(), d.fingerprint(), "the restart budget is part of the state");
}

#[test]
fn restart_wipes_timers_spends_budget_and_changes_state() {
    let sc = scenarios::ldr_suite()[4].scenario.clone();
    let mk = scenarios::ldr_factory();
    let init = NetState::init(&sc, mk);
    assert_eq!(init.restarts_left, 1);
    assert!(
        init.enumerate(&sc).contains(&Event::Restart { node: 1 }),
        "restart transitions must be enabled while budget remains"
    );

    let step = init.apply(&sc, &Event::Restart { node: 1 }).expect("restart applies");
    let post = step.state;
    assert_eq!(post.restarts_left, 0);
    assert_ne!(
        init.fingerprint(),
        post.fingerprint(),
        "state loss (epoch bump, wiped table) must be observable"
    );
    assert!(
        !post.enumerate(&sc).iter().any(|e| matches!(e, Event::Restart { .. })),
        "an exhausted restart budget disables further restarts"
    );
    assert!(
        post.apply(&sc, &Event::Restart { node: 0 }).is_none(),
        "replay skips over-budget restarts"
    );
}

#[test]
fn dfs_reports_budget_exhaustion() {
    let entry = scenarios::ldr_suite()[0].clone();
    let tight = Checker::new(entry.scenario.clone(), Budget { max_depth: 3, max_states: 10 });
    let outcome = tight.run(scenarios::ldr_factory());
    assert!(outcome.violation.is_none());
    assert!(!outcome.exhaustive, "a 10-state budget cannot cover the scenario");
    assert!(outcome.states <= 10);
}

#[test]
fn shrinker_reaches_one_minimality_on_synthetic_oracle() {
    // Oracle: the trace still "fails" iff it contains the Fire events
    // for node 0 and node 2, in that order. Everything else is noise.
    let ev = |n: u16| Event::Fire { node: n, token: u64::from(n) };
    let is_failing = |t: &[Event]| {
        let a = t.iter().position(|e| *e == ev(0));
        let c = t.iter().position(|e| *e == ev(2));
        matches!((a, c), (Some(i), Some(j)) if i < j)
    };
    let noisy = vec![ev(5), ev(0), ev(1), ev(3), ev(2), ev(4)];
    assert!(is_failing(&noisy));
    let min = shrink_with(noisy, |t| is_failing(t));
    assert_eq!(min, vec![ev(0), ev(2)], "exactly the two load-bearing events survive");
    for i in 0..min.len() {
        let mut cand = min.clone();
        cand.remove(i);
        assert!(!is_failing(&cand), "result must be 1-minimal");
    }
}

#[test]
fn ldr_scenarios_explore_clean() {
    // The cheap obligations run under `cargo test`; the full suite
    // (including the larger expire/rediscover space) runs in the
    // release binary and the CI smoke job.
    let suite = scenarios::ldr_suite();
    for entry in [&suite[0], &suite[2], &suite[3]] {
        let outcome =
            Checker::new(entry.scenario.clone(), entry.budget).run(scenarios::ldr_factory());
        assert!(
            outcome.violation.is_none(),
            "{}: unexpected violation: {:?}",
            entry.scenario.name,
            outcome.violation.map(|c| c.violation)
        );
        assert!(outcome.exhaustive, "{}: budget too small", entry.scenario.name);
    }
}

#[test]
fn aodv_stale_reply_loop_is_pinned() {
    let entry = scenarios::aodv_stale_reply();
    let outcome = Checker::new(entry.scenario.clone(), entry.budget).run(scenarios::aodv_factory());
    let cex = outcome.violation.expect("the checker must find the classic AODV stale-route loop");
    let rendered = modelcheck::report::render(&entry.scenario, scenarios::aodv_factory(), &cex);
    let expected = include_str!("fixtures/aodv_stale_reply.txt");
    assert_eq!(
        rendered, expected,
        "minimized counterexample drifted from the pinned regression fixture"
    );
}

#[test]
fn aodv_restart_amnesia_loop_is_pinned() {
    // The van Glabbeek restart counterexample: state loss alone (no
    // expiry) makes AODV assemble a 2-cycle, because the restarted
    // node's sequence-number-less request draws a stale intermediate
    // reply from the neighbour that still routes through it.
    let entry = scenarios::aodv_restart_amnesia();
    let outcome = Checker::new(entry.scenario.clone(), entry.budget).run(scenarios::aodv_factory());
    let cex = outcome.violation.expect("the checker must find the AODV restart loop");
    let rendered = modelcheck::report::render(&entry.scenario, scenarios::aodv_factory(), &cex);
    let expected = include_str!("fixtures/aodv_restart_amnesia.txt");
    assert_eq!(
        rendered, expected,
        "minimized counterexample drifted from the pinned regression fixture"
    );
}
