//! Coverage explorer tests: byte-identical determinism, generated
//! topology properties, the pinned clean LDR report, and explorer
//! reproduction of the curated witnesses.

use modelcheck::coverage::{self, ExploreBudget, ViolationClass};
use modelcheck::{scenarios, topo};

/// A debug-build-friendly budget: big enough to cover real state, small
/// enough that `cargo test` stays fast.
fn small_budget() -> ExploreBudget {
    ExploreBudget { walks: 8, max_steps: 40, max_states: 20_000 }
}

/// The report — table, counters and any finding trace — must be a pure
/// function of `(scenario, seed, budget)`: running the same exploration
/// twice yields byte-identical output. This is the reproducibility
/// contract the CI artifact and every pinned fixture rely on.
#[test]
fn exploration_is_byte_identical_across_runs() {
    let budget = small_budget();
    let run = || {
        let explorations = vec![
            coverage::explore(
                &scenarios::ldr_suite()[0].scenario,
                scenarios::ldr_factory(),
                0xc0ffee,
                &budget,
            ),
            coverage::explore(
                &scenarios::olsr_stale_views_loop().scenario,
                scenarios::olsr_factory(),
                0xc0ffee,
                &budget,
            ),
            coverage::explore(&topo::generate(7, 3, true), scenarios::aodv_factory(), 7, &budget),
        ];
        coverage::render_report(&explorations, &budget)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "identical (scenario, seed, budget) must render identical reports");
}

/// Different seeds must actually steer differently (otherwise the seed
/// knob is decorative and CI diversity claims are empty).
#[test]
fn seed_changes_the_exploration() {
    let budget = small_budget();
    let sc = scenarios::ldr_suite()[1].scenario.clone();
    let a = coverage::explore(&sc, scenarios::ldr_factory(), 1, &budget);
    let b = coverage::explore(&sc, scenarios::ldr_factory(), 2, &budget);
    assert!(
        a.states != b.states || a.transitions != b.transitions || a.novel_picks != b.novel_picks,
        "two seeds produced identical exploration counters — the RNG is not wired through"
    );
}

/// The pinned LDR deliverable: every curated LDR cell explores clean
/// (safety and liveness) under this budget, and the rendered report is
/// pinned byte-for-byte. Regenerate with the ignored `bless_fixtures`
/// test in `liveness.rs` after an intentional format change.
#[test]
fn ldr_cells_explore_clean_and_report_is_pinned() {
    let budget = small_budget();
    let mut explorations = Vec::new();
    for entry in scenarios::ldr_suite() {
        let e = coverage::explore(&entry.scenario, scenarios::ldr_factory(), 0xc0ffee, &budget);
        assert!(
            e.finding.is_none(),
            "{}: LDR must explore clean, found {:?}",
            entry.scenario.name,
            e.finding.map(|f| f.class)
        );
        explorations.push(e);
    }
    let rendered = coverage::render_report(&explorations, &budget);
    let expected = include_str!("fixtures/ldr_coverage.txt");
    assert_eq!(rendered, expected, "LDR coverage report drifted from the pinned fixture");
}

/// The guided explorer (not just the exhaustive DFS) reproduces the
/// classic AODV stale-reply loop within a modest walk budget.
#[test]
fn explorer_reproduces_aodv_stale_reply_loop() {
    let budget = ExploreBudget { walks: 64, max_steps: 40, max_states: 20_000 };
    let entry = scenarios::aodv_stale_reply();
    let e = coverage::explore(&entry.scenario, scenarios::aodv_factory(), 0xc0ffee, &budget);
    let finding = e.finding.expect("the explorer must find the stale-reply loop in 64 walks");
    assert_eq!(finding.class, ViolationClass::RoutingLoop);
    assert!(!finding.events.is_empty());
    assert!(finding.events.len() <= finding.raw_len);
}

/// Generated topologies are deterministic, in the documented size
/// range, connected by construction, and probe-equipped.
#[test]
fn generated_topologies_are_deterministic_and_connected() {
    for seed in [0u64, 0xc0ffee, u64::MAX] {
        for index in 0..24u64 {
            let a = topo::generate(seed, index, true);
            let b = topo::generate(seed, index, true);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "generation must be deterministic");

            assert!((3..=6).contains(&a.n), "{}: node count out of range", a.name);
            assert!(!a.originations.is_empty(), "{}: no workload", a.name);
            for &(src, dst) in &a.originations {
                assert_ne!(src, dst, "{}: self-origination", a.name);
                assert!(src < a.n && dst < a.n, "{}: origination out of range", a.name);
            }
            assert_eq!(a.probe, a.originations.first().copied());

            // Connectivity: union of spanning-tree construction means
            // every node is reachable from 0 over the initial links.
            let mut seen = vec![false; usize::from(a.n)];
            seen[0] = true;
            let mut queue = vec![0u16];
            while let Some(node) = queue.pop() {
                for &(x, y) in &a.links {
                    let other = if x == node {
                        y
                    } else if y == node {
                        x
                    } else {
                        continue;
                    };
                    if !seen[usize::from(other)] {
                        seen[usize::from(other)] = true;
                        queue.push(other);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "{}: initial topology disconnected", a.name);
        }
    }
}

/// `with_bumps: false` must suppress the bump budget (DSR and OLSR have
/// no destination sequence numbers to bump).
#[test]
fn bump_budget_is_gated() {
    for index in 0..24u64 {
        let sc = topo::generate(0xc0ffee, index, false);
        assert_eq!(sc.max_bumps, 0, "{}: bump budget granted without sequence numbers", sc.name);
    }
}
