//! Counterexample minimisation.
//!
//! The DFS returns the first violating schedule it stumbles on, which
//! usually carries incidental events (timers that fired harmlessly,
//! deliveries on unrelated flows). [`shrink`] reduces it to a
//! **1-minimal** trace: removing any single remaining event makes the
//! violation disappear. Events are content-addressed
//! ([`crate::net::Msg::key`]), so a candidate trace replays even when
//! an earlier removal changed which copies are in flight — steps that
//! no longer apply are skipped rather than derailing the replay.

use crate::checker::{self, Violation};
use crate::model::ProtocolModel;
use crate::net::{Event, Scenario};
use manet_sim::packet::NodeId;

/// Greedy single-event removal to a 1-minimal trace under an arbitrary
/// oracle. `oracle(candidate)` must return whether the candidate still
/// exhibits the failure; it must hold for `events` on entry.
pub fn shrink_with(mut events: Vec<Event>, mut oracle: impl FnMut(&[Event]) -> bool) -> Vec<Event> {
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < events.len() {
            let mut candidate = events.clone();
            candidate.remove(i);
            if oracle(&candidate) {
                events = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    events
}

/// Minimises a violating trace against the real replay oracle: a
/// candidate counts when replaying it from the scenario's initial state
/// still produces *a* violation (not necessarily the identical one —
/// any safety breach is worth reporting, and accepting the strongest
/// reduction keeps traces short). Returns the minimized trace and the
/// violation it reproduces.
pub fn shrink<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    trace: Vec<Event>,
    violation: Violation,
) -> (Vec<Event>, Violation) {
    // Drop everything after the (replayed) violating step first — the
    // tail cannot matter.
    let mut events = trace;
    if let Some((i, _)) = checker::replay(scenario, factory, &events) {
        events.truncate(i + 1);
    }
    let minimized = shrink_with(events, |cand| checker::replay(scenario, factory, cand).is_some());
    match checker::replay(scenario, factory, &minimized) {
        Some((i, v)) => {
            let mut m = minimized;
            m.truncate(i + 1);
            (m, v)
        }
        // Unreachable in practice (shrink_with keeps the oracle true),
        // but degrade gracefully instead of panicking.
        None => (minimized, violation),
    }
}
