//! Exhaustive bounded model checking for on-demand routing protocols.
//!
//! The discrete-event simulator in `manet-sim` samples *one* schedule
//! per seed; this crate explores **all** of them, for small topologies.
//! A [`net::Scenario`] fixes a topology (3–5 nodes), a workload (data
//! originations) and budgets for environment hazards (message loss,
//! link toggles, route-table timeouts, destination sequence-number
//! increments). The checker then walks every reachable interleaving of
//!
//! * message delivery and loss (each in-flight copy independently),
//! * pending protocol timers firing in any order,
//! * link up/down transitions,
//! * soft-state route expiry at any node, and
//! * the destination raising its own sequence number,
//!
//! driving the *real* protocol implementations — [`ldr::Ldr`] and the
//! [`manet_baselines::Aodv`] baseline — through the same
//! [`manet_sim::protocol::Ctx`] callback interface the simulator uses
//! (the [`model::ProtocolModel`] trait is a thin veneer over it).
//!
//! At every transition the checker verifies the paper's safety
//! obligations: per-destination successor graphs stay acyclic
//! (Theorem 1's conclusion), feasible distances never rise under an
//! unchanged sequence number (Procedure 3), and every route admission
//! traced by the protocol actually satisfied NDC. Logical time is
//! frozen at a single instant so that states canonicalise; the passage
//! of time is modelled *explicitly* by the expiry and timer events,
//! which is exactly what makes the classic AODV stale-route loop
//! reachable (see [`scenarios`]).
//!
//! On a violation the checker emits the event trace, shrinks it to a
//! 1-minimal counterexample ([`shrink`]) and replays it through the
//! forensic audit machinery of `manet-sim` for a deterministic,
//! diffable dump ([`report`]).
//!
//! Beyond the exhaustive DFS, the crate hunts: [`topo`] manufactures
//! deterministic 3–6 node scenarios, [`coverage`] walks them steered
//! by fingerprint novelty (all four protocols — the DSR and OLSR
//! baselines implement [`model::ProtocolModel`] too), and [`live`]
//! adds the liveness question — after fair completion, can the probe
//! source still reach a route? — alongside the safety frontier.
//!
//! Run the curated suite with `cargo run -p modelcheck --release`, the
//! coverage hunt with `cargo run -p modelcheck --release -- --coverage`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod coverage;
pub mod live;
pub mod model;
pub mod net;
pub mod report;
pub mod scenarios;
pub mod shrink;
pub mod topo;

pub use checker::{Budget, Checker, Counterexample, Outcome, Violation};
pub use coverage::{Exploration, ExploreBudget, Finding, ViolationClass};
pub use live::LiveVerdict;
pub use model::ProtocolModel;
pub use net::{Event, NetState, Scenario};
