//! Runs the curated model-checking suite.
//!
//! Exit status 0 means every LDR obligation explored clean *and* the
//! AODV sensitivity witness produced its loop; anything else is 1.

use modelcheck::{report, scenarios, Checker};

fn main() {
    let mut failed = false;

    for entry in scenarios::LDR_SUITE {
        let checker = Checker::new(entry.scenario, entry.budget);
        let outcome = checker.run(scenarios::ldr_factory());
        let status = match (&outcome.violation, outcome.exhaustive) {
            (None, true) => "ok (exhaustive)",
            (None, false) => "ok (budget-bounded)",
            (Some(_), _) => "VIOLATION",
        };
        println!(
            "{:<24} {:>8} states {:>9} transitions  {status}",
            entry.scenario.name, outcome.states, outcome.transitions
        );
        if let Some(cex) = &outcome.violation {
            failed = true;
            print!("{}", report::render(&entry.scenario, scenarios::ldr_factory(), cex));
        }
    }

    for entry in [scenarios::AODV_STALE_REPLY, scenarios::AODV_RESTART_AMNESIA] {
        let checker = Checker::new(entry.scenario, entry.budget);
        let outcome = checker.run(scenarios::aodv_factory());
        match &outcome.violation {
            Some(cex) => {
                println!(
                    "{:<24} {:>8} states {:>9} transitions  loop found (expected)",
                    entry.scenario.name, outcome.states, outcome.transitions
                );
                print!("{}", report::render(&entry.scenario, scenarios::aodv_factory(), cex));
            }
            None => {
                failed = true;
                println!(
                    "{:<24} {:>8} states {:>9} transitions  NO LOOP FOUND (expected one)",
                    entry.scenario.name, outcome.states, outcome.transitions
                );
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
