//! Runs the model-checking suites.
//!
//! Default mode runs the curated exhaustive suite: exit status 0 means
//! every LDR obligation explored clean *and* the AODV sensitivity
//! witnesses produced their loops; anything else is 1.
//!
//! `--coverage [--seed N] [--out FILE]` runs the coverage-guided hunt
//! across all four protocols instead: curated scenarios plus generated
//! topologies, each explored under a fixed logical budget, with an
//! expectation table deciding which finding classes are pinned
//! knowledge (AODV loops, DSR/AODV restart stalls, OLSR transient
//! loops) and which are new unsoundness (anything on LDR, any
//! unexpected class elsewhere). The deterministic report goes to
//! stdout and, with `--out`, to a file for the CI artifact.

use modelcheck::coverage::{self, Exploration, ExploreBudget, ViolationClass};
use modelcheck::{report, scenarios, topo, Checker};

/// What a coverage exploration is allowed — or required — to find.
enum Expect {
    /// Any finding is a failure (the LDR obligation).
    Clean,
    /// A finding of one of these classes is required; a clean result
    /// or a different class is a failure (curated witnesses).
    MustFind(&'static [ViolationClass]),
    /// A finding of one of these classes is pinned knowledge; a clean
    /// result is fine; any other class is a failure.
    MayFind(&'static [ViolationClass]),
}

fn check_expectation(e: &Exploration, expect: &Expect, failures: &mut Vec<String>) {
    let found = e.finding.as_ref().map(|f| f.class);
    match (expect, found) {
        (Expect::Clean, Some(class)) => failures
            .push(format!("{} ({}): expected clean, found {class}", e.scenario.name, e.protocol)),
        (Expect::MustFind(allowed), None) => failures.push(format!(
            "{} ({}): expected a finding in {allowed:?}, explored clean",
            e.scenario.name, e.protocol
        )),
        (Expect::MustFind(allowed), Some(class)) | (Expect::MayFind(allowed), Some(class))
            if !allowed.contains(&class) =>
        {
            failures.push(format!(
                "{} ({}): unpinned finding class {class} (allowed: {allowed:?})",
                e.scenario.name, e.protocol
            ));
        }
        _ => {}
    }
}

/// The pinned CI coverage budget (see DESIGN.md §16). Under the
/// default seed the last curated witness to reproduce (the DSR restart
/// stall) needs 512 walks; 640 leaves headroom while keeping the whole
/// 21-cell run well inside the 60 s CI ceiling. The run is a pure
/// function of (seed, budget), so the reproduction threshold is exact,
/// not a flake probability.
fn ci_budget() -> ExploreBudget {
    ExploreBudget { walks: 640, max_steps: 40, max_states: 20_000 }
}

/// Generated cells per protocol in coverage mode.
const GENERATED_CELLS: u64 = 3;

fn coverage_main(seed: u64, out_path: Option<&str>) -> i32 {
    let budget = ci_budget();
    let mut explorations: Vec<Exploration> = Vec::new();
    let mut expectations: Vec<Expect> = Vec::new();

    // LDR: the paper's obligation — every curated and generated
    // scenario must explore clean, for safety *and* liveness.
    for entry in scenarios::ldr_suite() {
        explorations.push(coverage::explore(
            &entry.scenario,
            scenarios::ldr_factory(),
            seed,
            &budget,
        ));
        expectations.push(Expect::Clean);
    }
    for i in 0..GENERATED_CELLS {
        let mut sc = topo::generate(seed, i, true);
        sc.name = format!("ldr-{}", sc.name);
        explorations.push(coverage::explore(&sc, scenarios::ldr_factory(), seed, &budget));
        expectations.push(Expect::Clean);
    }

    // AODV: the curated witnesses must reproduce their loops; generated
    // cells may surface the pinned unsoundness classes.
    const AODV_CLASSES: &[ViolationClass] =
        &[ViolationClass::RoutingLoop, ViolationClass::FdRaised, ViolationClass::LivenessStall];
    // stale-reply must reproduce its loop; restart-amnesia may surface
    // either face of the same hole — the transient loop or the
    // permanent discovery stall (the exhaustive suite pins the loop
    // precisely; here exploration stops at its first finding).
    for (entry, expect) in [
        (scenarios::aodv_stale_reply(), &[ViolationClass::RoutingLoop][..]),
        (
            scenarios::aodv_restart_amnesia(),
            &[ViolationClass::RoutingLoop, ViolationClass::LivenessStall][..],
        ),
    ] {
        explorations.push(coverage::explore(
            &entry.scenario,
            scenarios::aodv_factory(),
            seed,
            &budget,
        ));
        expectations.push(Expect::MustFind(expect));
    }
    for i in 0..GENERATED_CELLS {
        let mut sc = topo::generate(seed, i, true);
        sc.name = format!("aodv-{}", sc.name);
        explorations.push(coverage::explore(&sc, scenarios::aodv_factory(), seed, &budget));
        expectations.push(Expect::MayFind(AODV_CLASSES));
    }

    // DSR: the restart witness must stall (the reset request-id hole);
    // generated cells may stall the same way. No successor graphs
    // exist, so safety classes cannot fire by construction.
    const DSR_CLASSES: &[ViolationClass] = &[ViolationClass::LivenessStall];
    {
        let entry = scenarios::dsr_restart_stale_id();
        explorations.push(coverage::explore(
            &entry.scenario,
            scenarios::dsr_factory(),
            seed,
            &budget,
        ));
        expectations.push(Expect::MustFind(DSR_CLASSES));
    }
    for i in 0..GENERATED_CELLS {
        let mut sc = topo::generate(seed, i, false);
        sc.name = format!("dsr-{}", sc.name);
        explorations.push(coverage::explore(&sc, scenarios::dsr_factory(), seed, &budget));
        expectations.push(Expect::MayFind(DSR_CLASSES));
    }

    // OLSR: stale link-state views may assemble transient loops or
    // stall (frozen time never ages a dead neighbour out, so the known
    // weakness is structural here).
    const OLSR_CLASSES: &[ViolationClass] =
        &[ViolationClass::RoutingLoop, ViolationClass::LivenessStall];
    {
        let entry = scenarios::olsr_stale_views_loop();
        explorations.push(coverage::explore(
            &entry.scenario,
            scenarios::olsr_factory(),
            seed,
            &budget,
        ));
        expectations.push(Expect::MayFind(OLSR_CLASSES));
    }
    for i in 0..GENERATED_CELLS {
        let mut sc = topo::generate(seed, i, false);
        sc.name = format!("olsr-{}", sc.name);
        explorations.push(coverage::explore(&sc, scenarios::olsr_factory(), seed, &budget));
        expectations.push(Expect::MayFind(OLSR_CLASSES));
    }

    let mut failures = Vec::new();
    for (e, expect) in explorations.iter().zip(&expectations) {
        check_expectation(e, expect, &mut failures);
    }

    let rendered = coverage::render_report(&explorations, &budget);
    print!("{rendered}");
    if let Some(path) = out_path {
        if let Err(err) = std::fs::write(path, &rendered) {
            eprintln!("error: cannot write {path}: {err}");
            return 1;
        }
    }
    if failures.is_empty() {
        println!("\ncoverage expectations: all satisfied");
        0
    } else {
        println!("\ncoverage expectations VIOLATED:");
        for f in &failures {
            println!("  {f}");
        }
        1
    }
}

fn suite_main() -> i32 {
    let mut failed = false;

    for entry in scenarios::ldr_suite() {
        let checker = Checker::new(entry.scenario.clone(), entry.budget);
        let outcome = checker.run(scenarios::ldr_factory());
        let status = match (&outcome.violation, outcome.exhaustive) {
            (None, true) => "ok (exhaustive)",
            (None, false) => "ok (budget-bounded)",
            (Some(_), _) => "VIOLATION",
        };
        println!(
            "{:<24} {:>8} states {:>9} transitions  {status}",
            entry.scenario.name, outcome.states, outcome.transitions
        );
        if let Some(cex) = &outcome.violation {
            failed = true;
            print!("{}", report::render(&entry.scenario, scenarios::ldr_factory(), cex));
        }
    }

    for entry in [scenarios::aodv_stale_reply(), scenarios::aodv_restart_amnesia()] {
        let checker = Checker::new(entry.scenario.clone(), entry.budget);
        let outcome = checker.run(scenarios::aodv_factory());
        match &outcome.violation {
            Some(cex) => {
                println!(
                    "{:<24} {:>8} states {:>9} transitions  loop found (expected)",
                    entry.scenario.name, outcome.states, outcome.transitions
                );
                print!("{}", report::render(&entry.scenario, scenarios::aodv_factory(), cex));
            }
            None => {
                failed = true;
                println!(
                    "{:<24} {:>8} states {:>9} transitions  NO LOOP FOUND (expected one)",
                    entry.scenario.name, outcome.states, outcome.transitions
                );
            }
        }
    }

    i32::from(failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = if args.iter().any(|a| a == "--coverage") {
        let mut seed = 0xc0ffee_u64;
        let mut out_path: Option<&str> = None;
        let mut bad_args = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--coverage" => {}
                "--seed" => {
                    i += 1;
                    match args.get(i).and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => bad_args = true,
                    }
                }
                "--out" => {
                    i += 1;
                    match args.get(i) {
                        Some(v) => out_path = Some(v),
                        None => bad_args = true,
                    }
                }
                _ => bad_args = true,
            }
            i += 1;
        }
        if bad_args {
            eprintln!("usage: modelcheck [--coverage [--seed N] [--out FILE]]");
            2
        } else {
            coverage_main(seed, out_path)
        }
    } else if args.is_empty() {
        suite_main()
    } else {
        eprintln!("usage: modelcheck [--coverage [--seed N] [--out FILE]]");
        2
    };
    std::process::exit(code);
}
