//! Network state, scenarios and the transition relation.
//!
//! A [`NetState`] is one vertex of the transition system: the protocol
//! state of every node plus the environment — in-flight message copies,
//! pending timers, the live link set, and the remaining hazard budgets.
//! [`NetState::enumerate`] lists every event enabled in a state and
//! [`NetState::apply`] executes one, producing the successor state and
//! the routing-decision trace events the transition emitted.
//!
//! **Logical time is frozen** at [`T0`]: every callback observes the
//! same `now`, so route lifetimes granted during the run never lapse on
//! their own and canonically equal states hash identically. The passage
//! of time is modelled explicitly instead — [`Event::Expire`] is the
//! route-table timeout, [`Event::Fire`] delivers any pending timer, and
//! [`Event::Bump`] is the destination-side sequence-number increment.
//! This is what makes timing-dependent interleavings (the stale-route
//! AODV loop among them) ordinary reachable states instead of
//! improbable schedules.

use crate::model::ProtocolModel;
use manet_sim::packet::{ControlKind, DataPacket, NodeId, Packet, PacketBody};
use manet_sim::protocol::{Action, Ctx};
use manet_sim::rng::SimRng;
use manet_sim::time::SimTime;
use manet_sim::trace::TraceEvent;
use std::collections::BTreeSet;
use std::fmt;

/// The frozen logical instant every callback observes.
pub const T0: SimTime = SimTime::from_secs(1);

/// Hop budget given to originated data packets.
const DATA_TTL: u8 = 16;

/// Flow id stamped on liveness-probe data packets, keeping them
/// distinct from scenario workload flows (which use their origination
/// index).
pub const PROBE_FLOW: u32 = u32::MAX;

/// One scenario: topology, workload and hazard budgets.
///
/// Budgets bound the environment's adversarial moves, keeping the state
/// space finite and focused: a scenario with `max_expires: 1` explores
/// every schedule in which *at most one* route entry times out, at any
/// node, at any point.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (reports and test assertions).
    pub name: String,
    /// Number of nodes (ids `0..n`).
    pub n: u16,
    /// Initially-up symmetric links.
    pub links: Vec<(u16, u16)>,
    /// Data originations `(src, dst)`, injectable in list order at any
    /// point of the schedule.
    pub originations: Vec<(u16, u16)>,
    /// Links that may change state (each toggled at most once, in any
    /// order relative to everything else).
    pub toggles: Vec<(u16, u16)>,
    /// How many route entries may time out ([`Event::Expire`]).
    pub max_expires: u32,
    /// How many owner sequence-number increments ([`Event::Bump`]).
    pub max_bumps: u32,
    /// How many in-flight copies may be lost on *live* links (loss on a
    /// downed link is certain, not a choice, and is always free).
    pub max_losses: u32,
    /// How many crash/restart-with-state-loss transitions
    /// ([`Event::Restart`]) the environment may inject. Mirrors the
    /// simulator's `FaultAction::CrashRestart` with zero downtime: the
    /// node's protocol state and pending timers vanish and its reboot
    /// callback runs, all at the frozen instant.
    pub max_restarts: u32,
    /// The `(src, dst)` pair the liveness executor probes after a walk
    /// ends: once the schedule quiesces fairly, `src` must either hold
    /// a route towards `dst` or `dst` must be partitioned away. `None`
    /// skips the liveness check (pure safety scenarios).
    pub probe: Option<(u16, u16)>,
}

/// An in-flight message copy (one receiver; broadcasts fan out into one
/// copy per neighbour at send time).
#[derive(Clone, Debug)]
pub struct Msg {
    /// Transmitter.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Payload.
    pub body: PacketBody,
    /// Whether the receiver should see a broadcast reception.
    pub was_broadcast: bool,
    /// Whether losing this copy notifies the transmitter (models the
    /// MAC retry give-up callback for unicasts).
    pub notify_failure: bool,
}

fn kind_tag(kind: ControlKind) -> u8 {
    match kind {
        ControlKind::Rreq => 0,
        ControlKind::Rrep => 1,
        ControlKind::Rerr => 2,
        ControlKind::Hello => 3,
        ControlKind::Tc => 4,
        ControlKind::Other => 5,
    }
}

fn tag_name(tag: u8) -> &'static str {
    match tag {
        0 => "RREQ",
        1 => "RREP",
        2 => "RERR",
        3 => "HELLO",
        4 => "TC",
        5 => "CTRL",
        _ => "DATA",
    }
}

impl Msg {
    /// Canonical byte key: equal keys iff the copies are
    /// interchangeable. Layout: src, dst, flags, tag, payload.
    pub fn key(&self) -> Vec<u8> {
        let mut k = Vec::with_capacity(32);
        k.extend_from_slice(&self.src.0.to_le_bytes());
        k.extend_from_slice(&self.dst.0.to_le_bytes());
        k.push(u8::from(self.was_broadcast) | (u8::from(self.notify_failure) << 1));
        match &self.body {
            PacketBody::Control(c) => {
                k.push(kind_tag(c.kind));
                k.extend_from_slice(&c.bytes);
            }
            PacketBody::Data(d) => {
                k.push(255);
                k.extend_from_slice(&d.src.0.to_le_bytes());
                k.extend_from_slice(&d.dst.0.to_le_bytes());
                k.extend_from_slice(&d.flow.to_le_bytes());
                k.extend_from_slice(&d.seq.to_le_bytes());
                k.push(d.ttl);
            }
        }
        k
    }
}

/// One transition of the system. `Deliver`/`Lose` identify the message
/// copy by its canonical [`Msg::key`] rather than a queue index, so a
/// recorded trace replays (with inapplicable steps skipped) even after
/// the shrinker removes earlier events.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// Deliver the (first) in-flight copy with this key.
    Deliver(Vec<u8>),
    /// Lose the (first) in-flight copy with this key.
    Lose(Vec<u8>),
    /// Fire the pending timer `token` at `node`.
    Fire {
        /// Timer owner.
        node: u16,
        /// Timer token.
        token: u64,
    },
    /// Time out `node`'s route entry towards `dest`.
    Expire {
        /// The node whose table entry expires.
        node: u16,
        /// The entry's destination.
        dest: u16,
    },
    /// `node` raises its own destination sequence number.
    Bump {
        /// The destination node.
        node: u16,
    },
    /// Inject origination `index` of the scenario's workload.
    Originate {
        /// Index into [`Scenario::originations`].
        index: usize,
    },
    /// Toggle link `index` of the scenario's toggle list.
    Toggle {
        /// Index into [`Scenario::toggles`].
        index: usize,
    },
    /// Crash `node` and restart it with total state loss (protocol
    /// state and pending timers gone; the reboot callback runs).
    Restart {
        /// The node that loses its state.
        node: u16,
    },
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[usize::from(b >> 4)] as char);
        s.push(HEX[usize::from(b & 15)] as char);
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

impl Event {
    /// Serialises the event to one line of the witness wire format
    /// (`deliver <hex-key>`, `fire <node> <token>`, ...). The format
    /// round-trips through [`Event::from_wire`] and is what
    /// `.events` fixture files contain.
    pub fn to_wire(&self) -> String {
        match self {
            Event::Deliver(k) => format!("deliver {}", hex_encode(k)),
            Event::Lose(k) => format!("lose {}", hex_encode(k)),
            Event::Fire { node, token } => format!("fire {node} {token}"),
            Event::Expire { node, dest } => format!("expire {node} {dest}"),
            Event::Bump { node } => format!("bump {node}"),
            Event::Originate { index } => format!("originate {index}"),
            Event::Toggle { index } => format!("toggle {index}"),
            Event::Restart { node } => format!("restart {node}"),
        }
    }

    /// Parses one line of the witness wire format; `None` on malformed
    /// input (wrong verb, missing or non-numeric operands, odd-length
    /// hex). Blank lines and `#` comments are the *caller's* concern —
    /// this parses exactly one event.
    pub fn from_wire(line: &str) -> Option<Event> {
        let mut parts = line.split_whitespace();
        let verb = parts.next()?;
        let event = match verb {
            "deliver" => Event::Deliver(hex_decode(parts.next()?)?),
            "lose" => Event::Lose(hex_decode(parts.next()?)?),
            "fire" => Event::Fire {
                node: parts.next()?.parse().ok()?,
                token: parts.next()?.parse().ok()?,
            },
            "expire" => Event::Expire {
                node: parts.next()?.parse().ok()?,
                dest: parts.next()?.parse().ok()?,
            },
            "bump" => Event::Bump { node: parts.next()?.parse().ok()? },
            "originate" => Event::Originate { index: parts.next()?.parse().ok()? },
            "toggle" => Event::Toggle { index: parts.next()?.parse().ok()? },
            "restart" => Event::Restart { node: parts.next()?.parse().ok()? },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(event)
    }
}

/// FNV-1a over a byte slice with a caller-chosen offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn short_hash(bytes: &[u8]) -> u32 {
    fnv1a(bytes, 0xcbf2_9ce4_8422_2325) as u32
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = |f: &mut fmt::Formatter<'_>, verb: &str, k: &[u8]| {
            let src = u16::from_le_bytes([k[0], k[1]]);
            let dst = u16::from_le_bytes([k[2], k[3]]);
            let what = tag_name(k[5]);
            write!(f, "{verb} {what} {src}->{dst} #{:08x}", short_hash(k))
        };
        match self {
            Event::Deliver(k) => msg(f, "deliver", k),
            Event::Lose(k) => msg(f, "lose", k),
            Event::Fire { node, token } => write!(f, "fire timer {token:#x} at {node}"),
            Event::Expire { node, dest } => write!(f, "expire route {node}->{dest}"),
            Event::Bump { node } => write!(f, "bump own seqno at {node}"),
            Event::Originate { index } => write!(f, "originate #{index}"),
            Event::Toggle { index } => write!(f, "toggle link #{index}"),
            Event::Restart { node } => write!(f, "restart {node} with state loss"),
        }
    }
}

/// The result of applying one event: the successor state plus the
/// routing-decision trace the transition emitted.
pub struct Step<M> {
    /// Successor state.
    pub state: NetState<M>,
    /// Trace events emitted by the protocol callback (if any).
    pub traces: Vec<TraceEvent>,
}

/// One vertex of the transition system.
#[derive(Clone, Debug)]
pub struct NetState<M> {
    /// Per-node protocol instances, indexed by node id.
    pub nodes: Vec<M>,
    /// In-flight message copies (a multiset; order is irrelevant).
    pub inflight: Vec<Msg>,
    /// Pending timers as a `(node, token)` set — any may fire next.
    pub timers: BTreeSet<(u16, u64)>,
    /// Live symmetric links, normalised to `(low, high)`.
    pub links: BTreeSet<(u16, u16)>,
    /// Next workload origination to inject.
    pub next_orig: usize,
    /// Remaining route-expiry budget.
    pub expires_left: u32,
    /// Remaining seqno-bump budget.
    pub bumps_left: u32,
    /// Remaining live-link loss budget.
    pub losses_left: u32,
    /// Remaining crash/restart budget.
    pub restarts_left: u32,
    /// Bitmask of already-fired link toggles.
    pub toggles_done: u32,
}

fn norm(a: u16, b: u16) -> (u16, u16) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<M: ProtocolModel> NetState<M> {
    /// The initial state: fresh nodes (with their start callbacks run),
    /// the scenario's initial links, and full budgets.
    pub fn init(scenario: &Scenario, factory: impl Fn(NodeId) -> M) -> Self {
        let mut s = NetState {
            nodes: (0..scenario.n).map(|i| factory(NodeId(i))).collect(),
            inflight: Vec::new(),
            timers: BTreeSet::new(),
            links: scenario.links.iter().map(|&(a, b)| norm(a, b)).collect(),
            next_orig: 0,
            expires_left: scenario.max_expires,
            bumps_left: scenario.max_bumps,
            losses_left: scenario.max_losses,
            restarts_left: scenario.max_restarts,
            toggles_done: 0,
        };
        for i in 0..scenario.n {
            s.callback(scenario, i, |m, ctx| m.on_start(ctx));
        }
        s
    }

    fn link_up(&self, a: u16, b: u16) -> bool {
        self.links.contains(&norm(a, b))
    }

    fn neighbors(&self, node: u16) -> Vec<u16> {
        // `links` is sorted, so the result is deterministic.
        let mut out: Vec<u16> = self
            .links
            .iter()
            .filter_map(|&(a, b)| {
                if a == node {
                    Some(b)
                } else if b == node {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Runs one protocol callback at `node` and folds its queued
    /// actions back into the network state. Returns the trace events
    /// the callback emitted.
    fn callback(
        &mut self,
        scenario: &Scenario,
        node: u16,
        f: impl FnOnce(&mut M, &mut Ctx),
    ) -> Vec<TraceEvent> {
        let mut actions = Vec::new();
        {
            // A fresh fixed-seed stream per callback: protocols only
            // draw jitter from it, and reusing the seed keeps equal
            // states canonically equal.
            let mut rng = SimRng::from_seed(0);
            let mut ctx = Ctx::new(T0, NodeId(node), scenario.n as usize, &mut rng, &mut actions);
            ctx.set_trace_enabled(true);
            f(&mut self.nodes[node as usize], &mut ctx);
        }
        let mut traces = Vec::new();
        for action in actions {
            match action {
                Action::Broadcast { ctrl, .. } => {
                    for nbr in self.neighbors(node) {
                        self.inflight.push(Msg {
                            src: NodeId(node),
                            dst: NodeId(nbr),
                            body: PacketBody::Control(ctrl.clone()),
                            was_broadcast: true,
                            notify_failure: false,
                        });
                    }
                }
                Action::UnicastControl { next, ctrl, notify_failure, .. } => {
                    self.inflight.push(Msg {
                        src: NodeId(node),
                        dst: next,
                        body: PacketBody::Control(ctrl),
                        was_broadcast: false,
                        notify_failure,
                    });
                }
                Action::SendData { next, data } => {
                    self.inflight.push(Msg {
                        src: NodeId(node),
                        dst: next,
                        body: PacketBody::Data(data),
                        was_broadcast: false,
                        notify_failure: true,
                    });
                }
                Action::SetTimer { token, .. } => {
                    self.timers.insert((node, token));
                }
                Action::Trace(event) => traces.push(event),
                // The model checker never injects corrupted frames, so
                // `DropMalformed` is unreachable here; treating it as a
                // no-op keeps the match exhaustive without pretending
                // the model covers corruption.
                Action::Deliver { .. }
                | Action::DropData { .. }
                | Action::DropMalformed { .. }
                | Action::Count { .. } => {}
            }
        }
        traces
    }

    /// Injects a data origination at `src` towards `dst` outside the
    /// scenario workload — the liveness executor's probe (flow id
    /// [`PROBE_FLOW`]). Returns the traces the callback emitted.
    pub(crate) fn inject_origination(
        &mut self,
        scenario: &Scenario,
        src: u16,
        dst: u16,
    ) -> Vec<TraceEvent> {
        let data = DataPacket {
            src: NodeId(src),
            dst: NodeId(dst),
            flow: PROBE_FLOW,
            seq: 0,
            created: T0,
            payload_len: 512,
            ttl: DATA_TTL,
            ext: vec![],
        };
        self.callback(scenario, src, |m, ctx| m.on_originate(ctx, data))
    }

    /// Every event enabled in this state, in deterministic order.
    pub fn enumerate(&self, scenario: &Scenario) -> Vec<Event> {
        let mut events = Vec::new();
        let mut keys: Vec<(Vec<u8>, bool)> =
            self.inflight.iter().map(|m| (m.key(), self.link_up(m.src.0, m.dst.0))).collect();
        keys.sort_unstable();
        keys.dedup();
        for (key, up) in &keys {
            if *up {
                events.push(Event::Deliver(key.clone()));
            }
        }
        for (key, up) in &keys {
            // Loss on a live link spends budget; on a dead link it is
            // the only possible outcome and is free.
            if !*up || self.losses_left > 0 {
                events.push(Event::Lose(key.clone()));
            }
        }
        for &(node, token) in &self.timers {
            events.push(Event::Fire { node, token });
        }
        if self.expires_left > 0 {
            for (i, m) in self.nodes.iter().enumerate() {
                for r in m.dump() {
                    if r.valid {
                        events.push(Event::Expire { node: i as u16, dest: r.dest.0 });
                    }
                }
            }
        }
        if self.bumps_left > 0 {
            for i in 0..self.nodes.len() {
                events.push(Event::Bump { node: i as u16 });
            }
        }
        if self.next_orig < scenario.originations.len() {
            events.push(Event::Originate { index: self.next_orig });
        }
        for index in 0..scenario.toggles.len() {
            if self.toggles_done & (1 << index) == 0 {
                events.push(Event::Toggle { index });
            }
        }
        if self.restarts_left > 0 {
            for i in 0..self.nodes.len() {
                events.push(Event::Restart { node: i as u16 });
            }
        }
        events
    }

    /// Applies one event, returning the successor state (or `None` when
    /// the event is not applicable here — a replayed trace may contain
    /// steps an earlier removal made moot).
    pub fn apply(&self, scenario: &Scenario, event: &Event) -> Option<Step<M>> {
        let mut next = self.clone();
        let traces = match event {
            Event::Deliver(key) => {
                let i = next.inflight.iter().position(|m| m.key() == *key)?;
                let msg = next.inflight.remove(i);
                if !next.link_up(msg.src.0, msg.dst.0) {
                    return None;
                }
                let (src, dst, bcast) = (msg.src, msg.dst, msg.was_broadcast);
                match msg.body {
                    PacketBody::Control(ctrl) => {
                        next.callback(scenario, dst.0, |m, ctx| m.on_control(ctx, src, ctrl, bcast))
                    }
                    PacketBody::Data(data) => {
                        next.callback(scenario, dst.0, |m, ctx| m.on_data(ctx, src, data))
                    }
                }
            }
            Event::Lose(key) => {
                let i = next.inflight.iter().position(|m| m.key() == *key)?;
                let msg = next.inflight.remove(i);
                if next.link_up(msg.src.0, msg.dst.0) {
                    if next.losses_left == 0 {
                        return None;
                    }
                    next.losses_left -= 1;
                }
                if msg.notify_failure {
                    let (src, dst) = (msg.src, msg.dst);
                    let packet = Packet { uid: 0, origin: src, body: msg.body };
                    next.callback(scenario, src.0, |m, ctx| m.on_unicast_failure(ctx, dst, packet))
                } else {
                    Vec::new()
                }
            }
            Event::Fire { node, token } => {
                if !next.timers.remove(&(*node, *token)) {
                    return None;
                }
                let token = *token;
                next.callback(scenario, *node, |m, ctx| m.on_timer(ctx, token))
            }
            Event::Expire { node, dest } => {
                if next.expires_left == 0 {
                    return None;
                }
                if !next.nodes[*node as usize].force_expire(NodeId(*dest)) {
                    return None;
                }
                next.expires_left -= 1;
                Vec::new()
            }
            Event::Bump { node } => {
                if next.bumps_left == 0 {
                    return None;
                }
                next.bumps_left -= 1;
                next.nodes[*node as usize].bump_own_seqno();
                Vec::new()
            }
            Event::Originate { index } => {
                if *index != next.next_orig || *index >= scenario.originations.len() {
                    return None;
                }
                next.next_orig += 1;
                let (src, dst) = scenario.originations[*index];
                let data = DataPacket {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    flow: *index as u32,
                    seq: 0,
                    created: T0,
                    payload_len: 512,
                    ttl: DATA_TTL,
                    ext: vec![],
                };
                next.callback(scenario, src, |m, ctx| m.on_originate(ctx, data))
            }
            Event::Toggle { index } => {
                if next.toggles_done & (1 << *index) != 0 || *index >= scenario.toggles.len() {
                    return None;
                }
                next.toggles_done |= 1 << *index;
                let (a, b) = scenario.toggles[*index];
                let link = norm(a, b);
                if !next.links.remove(&link) {
                    next.links.insert(link);
                }
                Vec::new()
            }
            Event::Restart { node } => {
                if next.restarts_left == 0 || *node as usize >= next.nodes.len() {
                    return None;
                }
                next.restarts_left -= 1;
                // Pending timers belong to the lost incarnation.
                next.timers.retain(|&(n, _)| n != *node);
                next.callback(scenario, *node, |m, ctx| m.on_restart(ctx))
            }
        };
        Some(Step { state: next, traces })
    }

    /// Canonical 128-bit fingerprint for state-space deduplication.
    ///
    /// Everything order-dependent is sorted first (node digests iterate
    /// their maps sorted; the in-flight multiset is sorted by key), so
    /// two states reached along different schedules but holding the
    /// same logical state collide — which is the point.
    pub fn fingerprint(&self) -> u128 {
        let mut bytes = Vec::with_capacity(256);
        for m in &self.nodes {
            let start = bytes.len();
            m.digest(&mut bytes);
            let len = (bytes.len() - start) as u64;
            bytes.extend_from_slice(&len.to_le_bytes());
        }
        let mut keys: Vec<Vec<u8>> = self.inflight.iter().map(Msg::key).collect();
        keys.sort_unstable();
        bytes.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            bytes.extend_from_slice(&(k.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&k);
        }
        for &(node, token) in &self.timers {
            bytes.extend_from_slice(&node.to_le_bytes());
            bytes.extend_from_slice(&token.to_le_bytes());
        }
        for &(a, b) in &self.links {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        bytes.extend_from_slice(&(self.next_orig as u64).to_le_bytes());
        bytes.extend_from_slice(&self.expires_left.to_le_bytes());
        bytes.extend_from_slice(&self.bumps_left.to_le_bytes());
        bytes.extend_from_slice(&self.losses_left.to_le_bytes());
        bytes.extend_from_slice(&self.restarts_left.to_le_bytes());
        bytes.extend_from_slice(&self.toggles_done.to_le_bytes());
        let h1 = fnv1a(&bytes, 0xcbf2_9ce4_8422_2325);
        let h2 = fnv1a(&bytes, 0x6c62_272e_07bb_0142);
        (u128::from(h1) << 64) | u128::from(h2)
    }
}
