//! Coverage-guided exploration.
//!
//! The exhaustive DFS ([`crate::checker`]) owns small curated
//! scenarios; this module trades exhaustiveness for reach. An
//! exploration runs a fixed number of random walks, and at every step
//! it *applies every enabled event* before committing to one — so each
//! step is a one-transition frontier check (any violation on any
//! enabled transition is caught, exactly as the DFS would catch it) —
//! then commits to a successor chosen by **fingerprint novelty**: if
//! any candidate lands in a state the coverage map has not seen, the
//! walk goes there. The FNV-128 fingerprints from
//! [`NetState::fingerprint`] make "seen" canonical, so novelty means
//! genuinely new protocol state, not a reshuffled queue.
//!
//! Every random draw comes from one `SimRng` stream derived from the
//! exploration seed, and the coverage map is a `BTreeSet` — the whole
//! run, including the rendered report, is a pure function of
//! `(scenario, seed, budget)`. Budgets are states/steps/walks, never
//! wall-clock.
//!
//! When a walk survives its safety frontier, its end state is handed to
//! [`live::fair_complete`] for the liveness verdict; a stall shrinks
//! through the liveness oracle just as a safety violation shrinks
//! through the replay oracle. Exploration stops at the first finding —
//! the checker reports first breaches, not breach inventories.

use crate::checker::{check_transition, Violation};
use crate::live::{self, LiveVerdict};
use crate::model::ProtocolModel;
use crate::net::{NetState, Scenario};
use crate::{shrink, Event};
use manet_sim::packet::NodeId;
use manet_sim::rng::SimRng;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// Exploration budget: all three axes are logical quantities, so a
/// budgeted run is reproducible on any machine.
#[derive(Clone, Copy, Debug)]
pub struct ExploreBudget {
    /// Number of guided walks from the initial state.
    pub walks: usize,
    /// Maximum events per walk.
    pub max_steps: usize,
    /// Maximum distinct fingerprints in the coverage map; the run
    /// winds down once the map is full.
    pub max_states: usize,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget { walks: 64, max_steps: 40, max_states: 20_000 }
    }
}

/// Coarse classification of a finding, used by expectation tables
/// (which classes may a protocol exhibit?) and report rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationClass {
    /// A per-destination successor graph contains a cycle.
    RoutingLoop,
    /// A feasible distance rose under an unchanged sequence number.
    FdRaised,
    /// A traced route admission violated NDC.
    NdcUnsound,
    /// Fair completion left the probe source without a route to a
    /// reachable destination.
    LivenessStall,
    /// Fair completion failed to quiesce within the step cap.
    Diverged,
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationClass::RoutingLoop => "routing-loop",
            ViolationClass::FdRaised => "fd-raised",
            ViolationClass::NdcUnsound => "ndc-unsound",
            ViolationClass::LivenessStall => "liveness-stall",
            ViolationClass::Diverged => "diverged",
        };
        f.write_str(s)
    }
}

/// Classifies a safety violation.
pub fn classify(v: &Violation) -> ViolationClass {
    match v {
        Violation::RoutingLoop { .. } => ViolationClass::RoutingLoop,
        Violation::FdRaised { .. } => ViolationClass::FdRaised,
        Violation::NdcUnsound { .. } => ViolationClass::NdcUnsound,
    }
}

/// One finding: a classified, 1-minimal witness trace.
#[derive(Clone, Debug)]
pub struct Finding {
    /// What kind of breach this is.
    pub class: ViolationClass,
    /// The safety violation, when the class is a safety class
    /// (`None` for liveness findings).
    pub safety: Option<Violation>,
    /// Minimized event trace.
    pub events: Vec<Event>,
    /// Trace length as first found, before shrinking.
    pub raw_len: usize,
}

/// The result of one coverage-guided exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The explored scenario.
    pub scenario: Scenario,
    /// Protocol under test.
    pub protocol: &'static str,
    /// Exploration seed.
    pub seed: u64,
    /// Distinct fingerprints covered.
    pub states: usize,
    /// Transitions executed (every frontier probe counts).
    pub transitions: usize,
    /// Steps whose successor was chosen for novelty (vs. fallback
    /// random picks among already-covered states).
    pub novel_picks: usize,
    /// Walks actually run (exploration stops early on a finding or a
    /// full coverage map).
    pub walks_run: usize,
    /// The first finding, if any.
    pub finding: Option<Finding>,
}

/// Runs one coverage-guided exploration. Deterministic: the outcome is
/// a pure function of `(scenario, seed, budget)` (the factory must be
/// deterministic too, which all of [`crate::scenarios`]'s are).
pub fn explore<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    seed: u64,
    budget: &ExploreBudget,
) -> Exploration {
    let mut rng = SimRng::stream(seed, "mc-explore");
    let init = NetState::init(scenario, factory);
    let mut coverage: BTreeSet<u128> = BTreeSet::new();
    coverage.insert(init.fingerprint());
    let mut transitions = 0usize;
    let mut novel_picks = 0usize;
    let mut walks_run = 0usize;
    let mut finding: Option<Finding> = None;

    'walks: for _ in 0..budget.walks {
        walks_run += 1;
        let mut state = init.clone();
        let mut trace: Vec<Event> = Vec::new();
        for _ in 0..budget.max_steps {
            // Frontier check: apply every enabled event. A violation on
            // *any* enabled transition is found, not just on the one
            // the walk happens to take.
            let mut candidates = Vec::new();
            for event in state.enumerate(scenario) {
                let Some(step) = state.apply(scenario, &event) else { continue };
                transitions += 1;
                if let Some(v) = check_transition(&state, &step.state, &step.traces) {
                    let mut t = trace.clone();
                    t.push(event);
                    let raw_len = t.len();
                    let (events, v) = shrink::shrink(scenario, factory, t, v);
                    finding =
                        Some(Finding { class: classify(&v), safety: Some(v), events, raw_len });
                    break 'walks;
                }
                candidates.push((event, step));
            }
            if candidates.is_empty() {
                break;
            }
            // Commit to a novel successor when one exists; otherwise
            // wander among covered states (which still reshuffles the
            // prefix for later steps).
            let fps: Vec<u128> = candidates.iter().map(|(_, s)| s.state.fingerprint()).collect();
            let novel: Vec<usize> =
                (0..candidates.len()).filter(|&i| !coverage.contains(&fps[i])).collect();
            let pick = if novel.is_empty() {
                rng.below(candidates.len() as u64) as usize
            } else {
                novel_picks += 1;
                novel[rng.below(novel.len() as u64) as usize]
            };
            coverage.insert(fps[pick]);
            let (event, step) = candidates.swap_remove(pick);
            trace.push(event);
            state = step.state;
            if coverage.len() >= budget.max_states {
                break;
            }
        }
        // The walk's safety frontier was clean: ask the liveness
        // question about its end state.
        match live::fair_complete(scenario, state).0 {
            LiveVerdict::Stall { .. } => {
                let raw_len = trace.len();
                let events = live::shrink_stall(scenario, factory, trace);
                finding = Some(Finding {
                    class: ViolationClass::LivenessStall,
                    safety: None,
                    events,
                    raw_len,
                });
                break 'walks;
            }
            LiveVerdict::Diverged => {
                let raw_len = trace.len();
                finding = Some(Finding {
                    class: ViolationClass::Diverged,
                    safety: None,
                    events: trace,
                    raw_len,
                });
                break 'walks;
            }
            LiveVerdict::Pass | LiveVerdict::Vacuous => {}
        }
        if coverage.len() >= budget.max_states {
            break 'walks;
        }
    }

    Exploration {
        scenario: scenario.clone(),
        protocol: factory(NodeId(0)).protocol_name(),
        seed,
        states: coverage.len(),
        transitions,
        novel_picks,
        walks_run,
        finding,
    }
}

/// Renders the coverage report for a batch of explorations: a summary
/// table, then one detail block per finding. Pure function of its
/// inputs — pinned byte-for-byte by the determinism test and uploaded
/// as the CI artifact.
pub fn render_report(explorations: &[Exploration], budget: &ExploreBudget) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== modelcheck coverage report ==");
    let _ = writeln!(
        out,
        "budget: walks={} max_steps={} max_states={}",
        budget.walks, budget.max_steps, budget.max_states
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<26} {:<5} {:>6} {:>7} {:>11} {:>6} {:>6}  finding",
        "scenario", "proto", "seed", "states", "transitions", "novel", "walks"
    );
    for e in explorations {
        let verdict =
            e.finding.as_ref().map_or_else(|| "clean".to_string(), |f| f.class.to_string());
        let _ = writeln!(
            out,
            "{:<26} {:<5} {:>6} {:>7} {:>11} {:>6} {:>6}  {verdict}",
            e.scenario.name,
            e.protocol,
            e.seed,
            e.states,
            e.transitions,
            e.novel_picks,
            e.walks_run
        );
    }
    for e in explorations {
        let Some(f) = &e.finding else { continue };
        let _ = writeln!(out);
        let _ = writeln!(out, "-- finding: {} ({}) --", e.scenario.name, e.protocol);
        let _ = writeln!(out, "class: {}", f.class);
        if let Some(v) = &f.safety {
            let _ = writeln!(out, "violation: {v}");
        }
        let _ = writeln!(out, "trace ({} events, shrunk from {}):", f.events.len(), f.raw_len);
        for (i, ev) in f.events.iter().enumerate() {
            let _ = writeln!(out, "  {:>2}. {ev}", i + 1);
        }
    }
    out
}
