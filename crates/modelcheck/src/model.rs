//! The pluggable protocol interface the checker drives.
//!
//! [`ProtocolModel`] mirrors the callback surface of
//! [`manet_sim::protocol::RoutingProtocol`] and adds the three
//! verification hooks a checker needs: a canonical state digest for
//! state-space deduplication, and the two environment transitions —
//! soft-state expiry and owner sequence-number increments — that the
//! simulator normally produces through the passage of time. Both the
//! LDR implementation under test and the AODV baseline implement it,
//! so the same scenarios and invariant checks run against either.

use ldr::Ldr;
use manet_baselines::{Aodv, Dsr, Olsr};
use manet_sim::packet::{ControlPacket, DataPacket, NodeId, Packet};
use manet_sim::protocol::{Ctx, RouteDump, RoutingProtocol};

/// A per-node protocol instance the model checker can drive, clone (to
/// branch the search), and canonically fingerprint.
pub trait ProtocolModel: Clone {
    /// Protocol name for reports ("LDR", "AODV", ...).
    fn protocol_name(&self) -> &'static str;
    /// Simulation-start callback (periodic timers are scheduled here).
    fn on_start(&mut self, ctx: &mut Ctx);
    /// The local application originates `data`.
    fn on_originate(&mut self, ctx: &mut Ctx, data: DataPacket);
    /// A data packet arrived from link neighbour `prev`.
    fn on_data(&mut self, ctx: &mut Ctx, prev: NodeId, data: DataPacket);
    /// A control message arrived from link neighbour `prev`.
    fn on_control(&mut self, ctx: &mut Ctx, prev: NodeId, ctrl: ControlPacket, bcast: bool);
    /// A timer requested via `Ctx::set_timer` fired.
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64);
    /// The link layer gave up delivering `packet` to `next_hop`.
    fn on_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet);
    /// Environment transition: the node crashes and restarts with total
    /// state loss (drives the protocol's reboot recovery honestly —
    /// same hook [`Event::Restart`](crate::net::Event::Restart) and the
    /// simulator's `FaultAction::CrashRestart` both exercise).
    fn on_restart(&mut self, ctx: &mut Ctx);
    /// Environment transition: the route towards `dest` times out
    /// (soft-state only; history survives). Returns whether an entry
    /// existed to expire.
    fn force_expire(&mut self, dest: NodeId) -> bool;
    /// Environment transition: this node raises its *own* destination
    /// sequence number (the owner-only operation).
    fn bump_own_seqno(&mut self);
    /// Appends a canonical byte encoding of the complete protocol state
    /// (sorted map iteration; equal bytes iff behaviourally identical).
    fn digest(&self, out: &mut Vec<u8>);
    /// `(dest, next_hop)` pairs of currently usable routes.
    fn successors(&self) -> Vec<(NodeId, NodeId)>;
    /// Full routing-table snapshot, sorted by destination.
    fn dump(&self) -> Vec<RouteDump>;
    /// Whether a usable route towards `dest` exists right now (the
    /// liveness executor's probe predicate). The default reads the
    /// routing-table dump, which is correct for every table-driven
    /// protocol.
    fn has_route(&self, dest: NodeId) -> bool {
        self.dump().iter().any(|r| r.valid && r.dest == dest)
    }
    /// Whether a route discovery towards `dest` is still in progress
    /// (reported in liveness stalls to distinguish "gave up" from
    /// "still trying"). Proactive protocols have no discoveries.
    fn discovery_pending(&self, _dest: NodeId) -> bool {
        false
    }
    /// Brings derived routing state up to date outside any callback.
    /// Proactive protocols recompute their dirty-gated tables here;
    /// on-demand protocols need nothing.
    fn refresh_routes(&mut self) {}
    /// How many discovery attempts the protocol's own TTL schedule
    /// needs to reach a destination `dist` hops away, starting cold —
    /// `None` when the configured schedule cannot reach it at all (the
    /// probe is then vacuous: the configuration, not a protocol bug,
    /// rules the discovery out). The liveness executor grants a probe
    /// exactly this many attempts (firing the retry timers between
    /// them): expanding-ring searches get their schedule-mandated
    /// retries, but a protocol whose state loss costs *extra* attempts
    /// stalls — which is the deficiency the restart witnesses pin.
    /// Single-flood and proactive protocols need one.
    fn discovery_attempts(&self, _dist: u32) -> Option<u32> {
        Some(1)
    }
}

impl ProtocolModel for Ldr {
    fn protocol_name(&self) -> &'static str {
        RoutingProtocol::name(self)
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::start(self, ctx);
    }
    fn on_originate(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.handle_data_origination(ctx, data);
    }
    fn on_data(&mut self, ctx: &mut Ctx, prev: NodeId, data: DataPacket) {
        self.handle_data_packet(ctx, prev, data);
    }
    fn on_control(&mut self, ctx: &mut Ctx, prev: NodeId, ctrl: ControlPacket, bcast: bool) {
        self.handle_control(ctx, prev, ctrl, bcast);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.handle_timer(ctx, token);
    }
    fn on_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.handle_unicast_failure(ctx, next_hop, packet);
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::handle_reboot(self, ctx);
    }
    fn force_expire(&mut self, dest: NodeId) -> bool {
        Ldr::force_expire(self, dest)
    }
    fn bump_own_seqno(&mut self) {
        Ldr::bump_own_seqno(self);
    }
    fn digest(&self, out: &mut Vec<u8>) {
        self.verification_digest(out);
    }
    fn successors(&self) -> Vec<(NodeId, NodeId)> {
        self.route_successors()
    }
    fn dump(&self) -> Vec<RouteDump> {
        self.route_table_dump()
    }
    fn discovery_pending(&self, dest: NodeId) -> bool {
        self.is_active_for(dest)
    }
    fn discovery_attempts(&self, dist: u32) -> Option<u32> {
        self.discovery_attempts_for(dist)
    }
}

impl ProtocolModel for Aodv {
    fn protocol_name(&self) -> &'static str {
        RoutingProtocol::name(self)
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::start(self, ctx);
    }
    fn on_originate(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.handle_data_origination(ctx, data);
    }
    fn on_data(&mut self, ctx: &mut Ctx, prev: NodeId, data: DataPacket) {
        self.handle_data_packet(ctx, prev, data);
    }
    fn on_control(&mut self, ctx: &mut Ctx, prev: NodeId, ctrl: ControlPacket, bcast: bool) {
        self.handle_control(ctx, prev, ctrl, bcast);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.handle_timer(ctx, token);
    }
    fn on_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.handle_unicast_failure(ctx, next_hop, packet);
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::handle_reboot(self, ctx);
    }
    fn force_expire(&mut self, dest: NodeId) -> bool {
        Aodv::force_expire(self, dest)
    }
    fn bump_own_seqno(&mut self) {
        Aodv::bump_own_seqno(self);
    }
    fn digest(&self, out: &mut Vec<u8>) {
        self.verification_digest(out);
    }
    fn successors(&self) -> Vec<(NodeId, NodeId)> {
        self.route_successors()
    }
    fn dump(&self) -> Vec<RouteDump> {
        self.route_table_dump()
    }
    fn discovery_pending(&self, dest: NodeId) -> bool {
        self.is_discovering(dest)
    }
    fn discovery_attempts(&self, dist: u32) -> Option<u32> {
        self.discovery_attempts_for(dist)
    }
}

impl ProtocolModel for Dsr {
    fn protocol_name(&self) -> &'static str {
        RoutingProtocol::name(self)
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::start(self, ctx);
    }
    fn on_originate(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.handle_data_origination(ctx, data);
    }
    fn on_data(&mut self, ctx: &mut Ctx, prev: NodeId, data: DataPacket) {
        self.handle_data_packet(ctx, prev, data);
    }
    fn on_control(&mut self, ctx: &mut Ctx, prev: NodeId, ctrl: ControlPacket, bcast: bool) {
        self.handle_control(ctx, prev, ctrl, bcast);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.handle_timer(ctx, token);
    }
    fn on_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.handle_unicast_failure(ctx, next_hop, packet);
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::handle_reboot(self, ctx);
    }
    fn force_expire(&mut self, dest: NodeId) -> bool {
        Dsr::force_expire(self, dest)
    }
    /// DSR has no sequence numbers; scenarios give it a zero bump
    /// budget, so this transition is never enumerated.
    fn bump_own_seqno(&mut self) {}
    fn digest(&self, out: &mut Vec<u8>) {
        self.verification_digest(out);
    }
    /// Empty by design: DSR keeps no next-hop table, so the
    /// successor-graph loop check is vacuous (source routes are
    /// loop-free per packet by construction).
    fn successors(&self) -> Vec<(NodeId, NodeId)> {
        self.route_successors()
    }
    /// The cache-derived dump (one row per destination with a live
    /// path) rather than the simulator-facing empty
    /// `route_table_dump`, so [`Event::Expire`](crate::net::Event) can
    /// enumerate cache timeouts.
    fn dump(&self) -> Vec<RouteDump> {
        self.verification_route_dump()
    }
    fn discovery_pending(&self, dest: NodeId) -> bool {
        self.is_discovering(dest)
    }
    fn discovery_attempts(&self, dist: u32) -> Option<u32> {
        self.discovery_attempts_for(dist)
    }
}

impl ProtocolModel for Olsr {
    fn protocol_name(&self) -> &'static str {
        RoutingProtocol::name(self)
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::start(self, ctx);
    }
    fn on_originate(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.handle_data_origination(ctx, data);
    }
    fn on_data(&mut self, ctx: &mut Ctx, prev: NodeId, data: DataPacket) {
        self.handle_data_packet(ctx, prev, data);
    }
    fn on_control(&mut self, ctx: &mut Ctx, prev: NodeId, ctrl: ControlPacket, bcast: bool) {
        self.handle_control(ctx, prev, ctrl, bcast);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        self.handle_timer(ctx, token);
    }
    fn on_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet) {
        self.handle_unicast_failure(ctx, next_hop, packet);
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        RoutingProtocol::handle_reboot(self, ctx);
    }
    fn force_expire(&mut self, dest: NodeId) -> bool {
        Olsr::force_expire(self, dest)
    }
    /// OLSR has no destination sequence numbers (ANSN belongs to TC
    /// flooding); scenarios give it a zero bump budget.
    fn bump_own_seqno(&mut self) {}
    fn digest(&self, out: &mut Vec<u8>) {
        self.verification_digest(out);
    }
    fn successors(&self) -> Vec<(NodeId, NodeId)> {
        self.route_successors()
    }
    fn dump(&self) -> Vec<RouteDump> {
        self.route_table_dump()
    }
    fn refresh_routes(&mut self) {
        self.force_recompute();
    }
}
