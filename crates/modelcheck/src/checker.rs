//! Depth-first exhaustive exploration with canonical-state dedup.
//!
//! The checker walks the transition system defined by [`NetState`],
//! deduplicating states by [`NetState::fingerprint`] and re-exploring a
//! known state only when reached at a strictly shallower depth (so a
//! depth bound never hides a short path behind a long first visit).
//! Every *edge* is checked, not just every vertex: a transition's
//! pre/post route-table dumps are compared for feasible-distance
//! monotonicity, its emitted decision traces are audited for NDC
//! soundness, and the post-state successor graphs are searched for
//! cycles.

use crate::model::ProtocolModel;
use crate::net::{Event, NetState, Scenario};
use crate::shrink;
use ldr::SeqNo;
use manet_sim::loopcheck::find_loops;
use manet_sim::packet::NodeId;
use manet_sim::trace::{InvariantSnapshot, RouteVerdict, TraceEvent};
use std::collections::HashMap;
use std::fmt;

/// Search bounds. Exploration stops (and the outcome is marked
/// non-exhaustive) when either is exceeded.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum schedule length explored from the initial state.
    pub max_depth: usize,
    /// Maximum number of distinct states visited.
    pub max_states: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_depth: 40, max_states: 200_000 }
    }
}

/// A safety violation found on some transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A per-destination successor graph contains a cycle (Theorem 1).
    RoutingLoop {
        /// Destination whose successor graph is cyclic.
        dest: NodeId,
        /// The cycle, closing back on its first node.
        cycle: Vec<NodeId>,
    },
    /// A feasible distance rose while the stored sequence number was
    /// unchanged (Procedure 3's monotonicity obligation).
    FdRaised {
        /// The offending node.
        node: NodeId,
        /// The route's destination.
        dest: NodeId,
        /// The unchanged (packed) sequence number.
        seqno: u64,
        /// Feasible distance before the transition.
        old_fd: u32,
        /// Feasible distance after the transition.
        new_fd: u32,
    },
    /// A traced route admission (`RouteVerdict::Installed`) did not
    /// satisfy NDC against the pre-decision invariants.
    NdcUnsound {
        /// The admitting node.
        node: NodeId,
        /// The advertised destination.
        dest: NodeId,
        /// Advertised (packed) sequence number.
        adv_sn: u64,
        /// Advertised distance.
        adv_d: u32,
        /// Stored invariants the admission was judged against.
        before: InvariantSnapshot,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RoutingLoop { dest, cycle } => {
                write!(f, "routing loop towards {dest}: ")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            Violation::FdRaised { node, dest, seqno, old_fd, new_fd } => write!(
                f,
                "fd raised at {node} towards {dest}: {old_fd} -> {new_fd} under seqno {}",
                SeqNo::from_u64(*seqno)
            ),
            Violation::NdcUnsound { node, dest, adv_sn, adv_d, before } => write!(
                f,
                "NDC-unsound admission at {node} towards {dest}: \
                 accepted (sn*={}, d*={adv_d}) against (sn={}, d={}, fd={})",
                SeqNo::from_u64(*adv_sn),
                before.sn.map_or_else(|| "-".into(), |s| SeqNo::from_u64(s).to_string()),
                before.d,
                before.fd,
            ),
        }
    }
}

/// A violating schedule, shrunk to 1-minimality.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The violated invariant.
    pub violation: Violation,
    /// Minimized event trace; replaying it from the initial state
    /// reproduces `violation` on the final event.
    pub events: Vec<Event>,
    /// Length of the trace as first found, before shrinking.
    pub raw_len: usize,
}

/// The result of one exploration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed (including revisits).
    pub transitions: usize,
    /// Whether the reachable space was fully explored within budget.
    pub exhaustive: bool,
    /// The first violation found, if any (search stops on it).
    pub violation: Option<Counterexample>,
}

/// Checks the invariants across one transition.
pub(crate) fn check_transition<M: ProtocolModel>(
    pre: &NetState<M>,
    post: &NetState<M>,
    traces: &[TraceEvent],
) -> Option<Violation> {
    // NDC soundness: every admission the protocol traced as `Installed`
    // must have been feasible. `Refreshed` is exempt by design — a
    // through-the-current-successor update needs no NDC (Procedure 3).
    for t in traces {
        if let TraceEvent::AdvertConsidered {
            node,
            dest,
            adv_sn,
            adv_d,
            before,
            verdict: RouteVerdict::Installed,
            ..
        } = t
        {
            let unsound = match before {
                None => false,
                Some(b) => match b.sn {
                    None => false,
                    Some(sn) => !(*adv_sn > sn || (*adv_sn == sn && *adv_d < b.fd)),
                },
            };
            if unsound {
                return Some(Violation::NdcUnsound {
                    node: *node,
                    dest: *dest,
                    adv_sn: *adv_sn,
                    adv_d: *adv_d,
                    before: before.unwrap_or(InvariantSnapshot {
                        sn: None,
                        d: u32::MAX,
                        fd: u32::MAX,
                    }),
                });
            }
        }
    }
    // fd monotonicity per unchanged seqno, per (node, dest).
    for (i, (pre_m, post_m)) in pre.nodes.iter().zip(&post.nodes).enumerate() {
        let pre_dump = pre_m.dump();
        for r_post in post_m.dump() {
            let (Some(new_fd), Some(sn)) = (r_post.feasible_dist, r_post.seqno) else {
                continue;
            };
            let Some(r_pre) = pre_dump.iter().find(|r| r.dest == r_post.dest) else {
                continue;
            };
            if r_pre.seqno == Some(sn) {
                if let Some(old_fd) = r_pre.feasible_dist {
                    if new_fd > old_fd {
                        return Some(Violation::FdRaised {
                            node: NodeId(i as u16),
                            dest: r_post.dest,
                            seqno: sn,
                            old_fd,
                            new_fd,
                        });
                    }
                }
            }
        }
    }
    // Successor-graph acyclicity per destination.
    let tables: Vec<Vec<(NodeId, NodeId)>> = post.nodes.iter().map(|m| m.successors()).collect();
    if let Some(v) = find_loops(&tables).into_iter().next() {
        return Some(Violation::RoutingLoop { dest: v.destination, cycle: v.cycle });
    }
    None
}

/// Replays `events` from the scenario's initial state, skipping steps
/// that are not applicable, and returns the index of the first
/// violating event together with the violation.
pub fn replay<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M,
    events: &[Event],
) -> Option<(usize, Violation)> {
    let mut state = NetState::init(scenario, factory);
    for (i, event) in events.iter().enumerate() {
        let Some(step) = state.apply(scenario, event) else { continue };
        if let Some(v) = check_transition(&state, &step.state, &step.traces) {
            return Some((i, v));
        }
        state = step.state;
    }
    None
}

struct Frame<M> {
    state: NetState<M>,
    /// Event that produced this frame's state (None for the root).
    via: Option<Event>,
    events: Vec<Event>,
    idx: usize,
}

/// Exhaustive bounded DFS over a scenario's transition system.
pub struct Checker {
    /// The scenario to explore.
    pub scenario: Scenario,
    /// Search bounds.
    pub budget: Budget,
}

impl Checker {
    /// Creates a checker with the given scenario and budget.
    pub fn new(scenario: Scenario, budget: Budget) -> Self {
        Checker { scenario, budget }
    }

    /// Runs the search. Stops on the first violation (returning its
    /// shrunk counterexample) or when the reachable space — within
    /// budget — is exhausted.
    pub fn run<M: ProtocolModel>(&self, factory: impl Fn(NodeId) -> M + Copy) -> Outcome {
        let scenario = &self.scenario;
        let root = NetState::init(scenario, factory);
        let mut visited: HashMap<u128, usize> = HashMap::new();
        visited.insert(root.fingerprint(), 0);
        let events = root.enumerate(scenario);
        let mut stack = vec![Frame { state: root, via: None, events, idx: 0 }];
        let mut transitions = 0usize;
        let mut exhaustive = true;

        while let Some(top) = stack.last_mut() {
            if top.idx >= top.events.len() {
                stack.pop();
                continue;
            }
            let event = top.events[top.idx].clone();
            top.idx += 1;
            let depth = stack.len(); // depth of the prospective child
            let Some(step) = stack.last().and_then(|f| f.state.apply(scenario, &event)) else {
                continue;
            };
            transitions += 1;

            if let Some(violation) =
                check_transition(&stack[stack.len() - 1].state, &step.state, &step.traces)
            {
                let mut trace: Vec<Event> = stack.iter().filter_map(|f| f.via.clone()).collect();
                trace.push(event);
                let raw_len = trace.len();
                let (events, violation) = shrink::shrink(scenario, factory, trace, violation);
                return Outcome {
                    states: visited.len(),
                    transitions,
                    exhaustive,
                    violation: Some(Counterexample { violation, events, raw_len }),
                };
            }

            let fp = step.state.fingerprint();
            match visited.get(&fp) {
                Some(&d) if d <= depth => continue,
                _ => {}
            }
            if visited.len() >= self.budget.max_states {
                exhaustive = false;
                continue;
            }
            visited.insert(fp, depth);
            if depth >= self.budget.max_depth {
                exhaustive = false;
                continue;
            }
            let child_events = step.state.enumerate(scenario);
            stack.push(Frame { state: step.state, via: Some(event), events: child_events, idx: 0 });
        }

        Outcome { states: visited.len(), transitions, exhaustive, violation: None }
    }
}
