//! Liveness-flavoured properties under fair completion.
//!
//! Safety holds on every prefix; liveness only makes sense at the *end*
//! of a schedule, under a fairness assumption — messages in flight are
//! eventually delivered, pending timers eventually fire. This module
//! provides that fair-completion executor: after an explored walk ends,
//! [`fair_complete`] drains the network deterministically and then asks
//! the scenario's probe question — *can the probe source still obtain a
//! route to the probe destination?* A protocol that answers "no" while
//! the destination is physically reachable has a liveness hole: some
//! reachable protocol state (stale duplicate-suppression entries after
//! a reboot, for instance) permanently blocks route discovery.
//!
//! The completion order is fixed and fair:
//!
//! 1. **Settle** — deliver every in-flight copy on live links (sorted
//!    key order) and drop every copy stranded on dead links, repeating
//!    until the network is quiet. Loss on live links is never chosen:
//!    completion is the *benign* future, hazards all happened during
//!    the walk.
//! 2. **Timer rounds** — a bounded number of rounds, each firing every
//!    pending timer once (snapshot order) and settling after each
//!    fire. This flushes stale discovery give-ups and lets proactive
//!    protocols exchange their periodic beacons.
//! 3. **Reachability** — if the probe destination is not connected to
//!    the source over live links, the property is vacuous.
//! 4. **Probe** — inject a fresh data origination `src -> dst` (flow
//!    [`PROBE_FLOW`](crate::net::PROBE_FLOW)) and settle again. The
//!    discovery is granted exactly the retry timer rounds its own TTL
//!    schedule needs for the probe distance
//!    ([`ProtocolModel::discovery_attempts`]) — an expanding-ring
//!    search gets its mandated ring expansions, but a protocol whose
//!    state loss costs *extra* attempts gets no charity. A probe the
//!    configured schedule can never reach (TTL tops out short of the
//!    distance) is vacuous, like a partitioned one. The whole
//!    probe cycle repeats up to [`PROBE_ATTEMPTS`] times, modelling an
//!    application that retries (the first packet may be legitimately
//!    spent tearing down a stale route via a route error).
//! 5. **Verdict** — after a final route refresh at the source,
//!    [`LiveVerdict::Pass`] iff the source holds a usable route.

use crate::model::ProtocolModel;
use crate::net::{Event, NetState, Scenario};
use crate::shrink::shrink_with;
use ldr::SeqNo;
use manet_sim::packet::NodeId;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// Completion-step safety valve: a protocol that keeps the network busy
/// past this many fair-completion steps is reported as
/// [`LiveVerdict::Diverged`] instead of looping forever.
const SETTLE_CAP: usize = 10_000;

/// Timer rounds executed before the probe (enough for a 6-node OLSR
/// network to converge hello/TC state: heard -> sym -> two-hop/MPR ->
/// selectors -> TC flood, with slack).
const TIMER_ROUNDS: usize = 6;

/// Probe originations injected before declaring a stall. One is not
/// enough: a source may hold a route that is valid locally but stale
/// downstream, and the first probe packet is legitimately consumed
/// *teaching* it so (the route error coming back invalidates the stale
/// entry); the retry then runs a fresh discovery. A protocol is only
/// stalled if **every** retry fails — which is exactly the shape of
/// the genuine holes (a dedup-blocked discovery stays pending forever,
/// so retries queue behind it and never transmit).
const PROBE_ATTEMPTS: usize = 3;

/// The outcome of fair completion against the scenario's probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveVerdict {
    /// The probe source obtained (or kept) a route to the destination.
    Pass,
    /// The property is vacuous: the scenario has no probe, or the
    /// destination is partitioned from the source over live links.
    Vacuous,
    /// The destination is reachable, the network is quiet, and the
    /// source still has no route — a liveness breach.
    Stall {
        /// Probe source.
        src: u16,
        /// Probe destination.
        dst: u16,
        /// Whether the source believes a discovery is still in
        /// progress (a wedged discovery rather than a given-up one).
        discovering: bool,
    },
    /// Fair completion did not quiesce within the step cap.
    Diverged,
}

impl fmt::Display for LiveVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveVerdict::Pass => write!(f, "pass"),
            LiveVerdict::Vacuous => write!(f, "vacuous (probe unreachable or absent)"),
            LiveVerdict::Stall { src, dst, discovering } => write!(
                f,
                "stall: {src} cannot re-establish a route to {dst} \
                 (discovery pending: {discovering})"
            ),
            LiveVerdict::Diverged => write!(f, "diverged (no quiescence within step cap)"),
        }
    }
}

fn norm(a: u16, b: u16) -> (u16, u16) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Delivers every live-link copy and free-drops every dead-link copy
/// until none remain, in **creation (FIFO) order**. Returns `false`
/// when the step cap is exceeded.
///
/// FIFO is the benign radio timing: copies are created in breadth-first
/// wave order, so every node's *first* copy of a flood arrives along a
/// shortest path, carrying the largest surviving TTL. (Delivering in
/// fingerprint order instead can hand a node a TTL-exhausted copy via a
/// longer path first, and duplicate suppression then kills the live one
/// — an adversarial ordering that belongs to the explored walk, not to
/// fair completion.) Loss on live links is never chosen: completion is
/// the benign future, hazards all happened during the walk.
fn settle<M: ProtocolModel>(
    state: &mut NetState<M>,
    scenario: &Scenario,
    steps: &mut usize,
) -> bool {
    loop {
        if *steps >= SETTLE_CAP {
            return false;
        }
        let next = state.inflight.first().map(|m| {
            let key = m.key();
            if state.links.contains(&norm(m.src.0, m.dst.0)) {
                Event::Deliver(key)
            } else {
                // Free loss: a copy on a dead link has no other future.
                Event::Lose(key)
            }
        });
        let Some(event) = next else { return true };
        let Some(step) = state.apply(scenario, &event) else { return true };
        *steps += 1;
        *state = step.state;
    }
}

/// Hop distance from `src` to `dst` over the live link set (`None`
/// when partitioned).
fn hop_distance(links: &BTreeSet<(u16, u16)>, n: u16, src: u16, dst: u16) -> Option<u32> {
    let mut dist = vec![u32::MAX; usize::from(n)];
    dist[usize::from(src)] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(node) = queue.pop_front() {
        if node == dst {
            return Some(dist[usize::from(node)]);
        }
        for &(a, b) in links {
            let other = if a == node {
                b
            } else if b == node {
                a
            } else {
                continue;
            };
            if dist[usize::from(other)] == u32::MAX {
                dist[usize::from(other)] = dist[usize::from(node)] + 1;
                queue.push_back(other);
            }
        }
    }
    None
}

/// Runs fair completion on `state` and returns the probe verdict
/// together with the completed state (for rendering).
pub fn fair_complete<M: ProtocolModel>(
    scenario: &Scenario,
    mut state: NetState<M>,
) -> (LiveVerdict, NetState<M>) {
    let Some((src, dst)) = scenario.probe else {
        return (LiveVerdict::Vacuous, state);
    };
    let mut steps = 0usize;
    if !settle(&mut state, scenario, &mut steps) {
        return (LiveVerdict::Diverged, state);
    }
    for _ in 0..TIMER_ROUNDS {
        let pending: Vec<(u16, u64)> = state.timers.iter().copied().collect();
        for (node, token) in pending {
            // A timer may have been consumed by a cascade; skip it.
            let Some(step) = state.apply(scenario, &Event::Fire { node, token }) else {
                continue;
            };
            steps += 1;
            state = step.state;
            if !settle(&mut state, scenario, &mut steps) {
                return (LiveVerdict::Diverged, state);
            }
        }
    }
    let Some(dist) = hop_distance(&state.links, scenario.n, src, dst) else {
        return (LiveVerdict::Vacuous, state);
    };
    // The probe discovery is granted exactly the retries the protocol's
    // own TTL schedule needs for this distance: after the injection
    // settles, `rounds − 1` extra timer rounds let an expanding ring
    // expand. No more than that — "one extra attempt recovers it" is
    // precisely the post-reboot deficiency the restart witnesses pin.
    // A schedule that tops out short of the distance makes the probe
    // vacuous: the configuration rules the discovery out a priori.
    let Some(rounds) = state.nodes[usize::from(src)].discovery_attempts(dist) else {
        return (LiveVerdict::Vacuous, state);
    };
    let rounds = rounds.max(1);
    for _ in 0..PROBE_ATTEMPTS {
        state.inject_origination(scenario, src, dst);
        if !settle(&mut state, scenario, &mut steps) {
            return (LiveVerdict::Diverged, state);
        }
        for _ in 1..rounds {
            state.nodes[usize::from(src)].refresh_routes();
            if state.nodes[usize::from(src)].has_route(NodeId(dst)) {
                break;
            }
            let pending: Vec<(u16, u64)> = state.timers.iter().copied().collect();
            for (node, token) in pending {
                let Some(step) = state.apply(scenario, &Event::Fire { node, token }) else {
                    continue;
                };
                steps += 1;
                state = step.state;
                if !settle(&mut state, scenario, &mut steps) {
                    return (LiveVerdict::Diverged, state);
                }
            }
        }
        state.nodes[usize::from(src)].refresh_routes();
        if state.nodes[usize::from(src)].has_route(NodeId(dst)) {
            return (LiveVerdict::Pass, state);
        }
    }
    let discovering = state.nodes[usize::from(src)].discovery_pending(NodeId(dst));
    (LiveVerdict::Stall { src, dst, discovering }, state)
}

/// Replays `events` from the initial state (skipping inapplicable
/// steps, like [`crate::checker::replay`]) and fair-completes, returning
/// the liveness verdict.
pub fn replay_live<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M,
    events: &[Event],
) -> LiveVerdict {
    let mut state = NetState::init(scenario, factory);
    for event in events {
        if let Some(step) = state.apply(scenario, event) {
            state = step.state;
        }
    }
    fair_complete(scenario, state).0
}

/// Minimises a stalling trace: the oracle is "replaying the candidate
/// and fair-completing still stalls". The result is 1-minimal.
pub fn shrink_stall<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    trace: Vec<Event>,
) -> Vec<Event> {
    shrink_with(trace, |cand| {
        matches!(replay_live(scenario, factory, cand), LiveVerdict::Stall { .. })
    })
}

/// Renders the deterministic report for a liveness counterexample:
/// verdict, minimized trace, and the probe source's view of the world
/// after fair completion. Pinned byte-for-byte by regression tests.
pub fn render_stall<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    events: &[Event],
    raw_len: usize,
) -> String {
    let mut out = String::new();
    let proto = factory(NodeId(0)).protocol_name();
    let _ = writeln!(out, "== liveness stall: {} ({proto}) ==", scenario.name);
    let mut state = NetState::init(scenario, factory);
    for event in events {
        if let Some(step) = state.apply(scenario, event) {
            state = step.state;
        }
    }
    let (verdict, done) = fair_complete(scenario, state);
    let _ = writeln!(out, "verdict: {verdict}");
    let _ = writeln!(out, "trace ({} events, shrunk from {raw_len}):", events.len());
    for (i, e) in events.iter().enumerate() {
        let _ = writeln!(out, "  {:>2}. {e}", i + 1);
    }
    if let Some((src, dst)) = scenario.probe {
        let _ = writeln!(out, "-- probe {src} -> {dst}: source view after fair completion --");
        let node = &done.nodes[usize::from(src)];
        let _ = writeln!(out, "  discovery pending: {}", node.discovery_pending(NodeId(dst)));
        let dump = node.dump();
        if dump.is_empty() {
            let _ = writeln!(out, "  (route table empty)");
        }
        for r in dump {
            let fd = r.feasible_dist.map_or_else(|| "-".into(), |v| v.to_string());
            let sn = r.seqno.map_or_else(|| "-".into(), |v| SeqNo::from_u64(v).to_string());
            let valid = if r.valid { "valid" } else { "expired" };
            let _ = writeln!(
                out,
                "  -> {} via {} d={} fd={} sn={} {}",
                r.dest, r.next, r.dist, fd, sn, valid
            );
        }
    }
    out
}
