//! The curated scenario suite.
//!
//! Each entry pairs a [`Scenario`] with a search [`Budget`] sized so the
//! whole suite stays inside the CI smoke budget. The LDR scenarios are
//! *safety obligations* — the checker must come back clean — while the
//! AODV scenario is a *sensitivity witness*: it reproduces the classic
//! stale-route loop (an expired entry re-accepting an equal-sequence
//! advertisement from a neighbour whose own route points back), proving
//! the checker actually finds the bug class LDR's NDC rules out.
//!
//! Protocol configs here cap discovery at a single attempt: retries
//! only multiply timer interleavings without enabling new route-table
//! behaviour, and the loss budgets already model a failed first flood.

use crate::checker::Budget;
use crate::net::Scenario;
use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig};
use manet_sim::packet::NodeId;

/// LDR configuration used by the model-check scenarios.
pub fn ldr_config() -> LdrConfig {
    LdrConfig { max_attempts: 1, ..LdrConfig::default() }
}

/// AODV configuration used by the model-check scenarios.
pub fn aodv_config() -> AodvConfig {
    AodvConfig { max_attempts: 1, ..AodvConfig::default() }
}

/// Node factory for LDR scenarios.
pub fn ldr_factory() -> impl Fn(NodeId) -> Ldr + Copy {
    |id| Ldr::new(id, ldr_config())
}

/// Node factory for AODV scenarios.
pub fn aodv_factory() -> impl Fn(NodeId) -> Aodv + Copy {
    |id| Aodv::new(id, aodv_config())
}

/// A scenario plus the search budget it runs under.
#[derive(Clone, Copy, Debug)]
pub struct SuiteEntry {
    /// The scenario.
    pub scenario: Scenario,
    /// Its search budget.
    pub budget: Budget,
}

/// LDR obligations: every entry must explore clean.
pub const LDR_SUITE: &[SuiteEntry] = &[
    // Plain discovery over a chain, with one message loss allowed
    // anywhere (covers retried floods arriving after partial state).
    SuiteEntry {
        scenario: Scenario {
            name: "ldr-chain-discovery",
            n: 3,
            links: &[(0, 1), (1, 2)],
            originations: &[(0, 2)],
            toggles: &[],
            max_expires: 0,
            max_bumps: 0,
            max_losses: 1,
            max_restarts: 0,
        },
        budget: Budget { max_depth: 40, max_states: 120_000 },
    },
    // The stale-route shape that loops AODV: establish 2->1->0, expire
    // the middle node's entry at any point, re-discover. NDC must
    // reject the neighbour's equal-sequence stale advertisement.
    SuiteEntry {
        scenario: Scenario {
            name: "ldr-expire-rediscover",
            n: 3,
            links: &[(0, 1), (1, 2)],
            originations: &[(2, 0), (1, 0)],
            toggles: &[],
            max_expires: 1,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 0,
        },
        budget: Budget { max_depth: 40, max_states: 120_000 },
    },
    // Two disjoint paths; one may break mid-flight. Replies racing over
    // both sides must never assemble a cycle.
    SuiteEntry {
        scenario: Scenario {
            name: "ldr-diamond-partition",
            n: 4,
            links: &[(0, 1), (0, 2), (1, 3), (2, 3)],
            originations: &[(0, 3)],
            toggles: &[(1, 3)],
            max_expires: 0,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 0,
        },
        budget: Budget { max_depth: 40, max_states: 150_000 },
    },
    // Destination-side sequence increments racing stale state: fd
    // history must reset only on a strictly newer seqno.
    SuiteEntry {
        scenario: Scenario {
            name: "ldr-bump-reset",
            n: 3,
            links: &[(0, 1), (1, 2)],
            originations: &[(0, 2)],
            toggles: &[],
            max_expires: 1,
            max_bumps: 1,
            max_losses: 0,
            max_restarts: 0,
        },
        budget: Budget { max_depth: 40, max_states: 120_000 },
    },
    // Crash/restart with total state loss at any node, at any point.
    // The restarted node re-requests with no history; the neighbour
    // holding a stale route through it must treat that request as a
    // route error (the request-as-error rule) instead of answering
    // from the stale entry — the exact hole AODV's restart leaves open.
    SuiteEntry {
        scenario: Scenario {
            name: "ldr-restart-recover",
            n: 3,
            links: &[(0, 1), (1, 2)],
            originations: &[(2, 0), (1, 0)],
            toggles: &[],
            max_expires: 0,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 1,
        },
        budget: Budget { max_depth: 40, max_states: 200_000 },
    },
];

/// The AODV sensitivity witness: same shape as `ldr-expire-rediscover`;
/// the checker must find a routing loop here.
pub const AODV_STALE_REPLY: SuiteEntry = SuiteEntry {
    scenario: Scenario {
        name: "aodv-stale-reply",
        n: 3,
        links: &[(0, 1), (1, 2)],
        originations: &[(2, 0), (1, 0)],
        toggles: &[],
        max_expires: 1,
        max_bumps: 0,
        max_losses: 0,
        max_restarts: 0,
    },
    budget: Budget { max_depth: 40, max_states: 120_000 },
};

/// The AODV restart witness (van Glabbeek et al.): a node that crashes,
/// loses its sequence number, and re-requests with an unknown
/// destination sequence number draws a stale intermediate reply from a
/// neighbour whose own route points back through it. The checker must
/// find a routing loop here — no expiry needed, state loss alone does
/// it — while `ldr-restart-recover` (same shape) explores clean.
pub const AODV_RESTART_AMNESIA: SuiteEntry = SuiteEntry {
    scenario: Scenario {
        name: "aodv-restart-amnesia",
        n: 3,
        links: &[(0, 1), (1, 2)],
        originations: &[(2, 0), (1, 0)],
        toggles: &[],
        max_expires: 0,
        max_bumps: 0,
        max_losses: 0,
        max_restarts: 1,
    },
    budget: Budget { max_depth: 40, max_states: 200_000 },
};
