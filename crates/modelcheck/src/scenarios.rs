//! The curated scenario suite.
//!
//! Each entry pairs a [`Scenario`] with a search [`Budget`] sized so the
//! whole suite stays inside the CI smoke budget. The LDR scenarios are
//! *safety obligations* — the checker must come back clean — while the
//! AODV scenario is a *sensitivity witness*: it reproduces the classic
//! stale-route loop (an expired entry re-accepting an equal-sequence
//! advertisement from a neighbour whose own route points back), proving
//! the checker actually finds the bug class LDR's NDC rules out. The
//! DSR and OLSR entries are the hand-built witnesses behind the
//! liveness and differential fixtures (see `tests/`).
//!
//! Protocol configs here cap discovery at a single attempt: retries
//! only multiply timer interleavings without enabling new route-table
//! behaviour, and the loss budgets already model a failed first flood.

use crate::checker::Budget;
use crate::net::Scenario;
use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig, Dsr, DsrConfig, Olsr, OlsrConfig};
use manet_sim::packet::NodeId;
use manet_sim::time::SimDuration;

/// LDR configuration used by the model-check scenarios.
pub fn ldr_config() -> LdrConfig {
    LdrConfig { max_attempts: 1, ..LdrConfig::default() }
}

/// AODV configuration used by the model-check scenarios.
pub fn aodv_config() -> AodvConfig {
    AodvConfig { max_attempts: 1, ..AodvConfig::default() }
}

/// DSR configuration used by the model-check scenarios: draft-07
/// flavoured (finite cache timeout, so [`crate::net::Event::Expire`]
/// models a real protocol behaviour), one discovery attempt, and no
/// non-propagating first attempt — under `max_attempts: 1` a TTL-1
/// first flood would make every multi-hop discovery fail by
/// construction, which verifies nothing.
pub fn dsr_config() -> DsrConfig {
    DsrConfig {
        cache_timeout: Some(SimDuration::from_secs(300)),
        max_attempts: 1,
        non_propagating_first: false,
        ..DsrConfig::default()
    }
}

/// OLSR configuration used by the model-check scenarios: no jitter
/// queue (the queue only reorders broadcasts in wall-clock time, which
/// the frozen-time model already explores by interleaving deliveries).
pub fn olsr_config() -> OlsrConfig {
    OlsrConfig { jitter_max: None, ..OlsrConfig::default() }
}

/// Node factory for LDR scenarios.
pub fn ldr_factory() -> impl Fn(NodeId) -> Ldr + Copy {
    |id| Ldr::new(id, ldr_config())
}

/// Node factory for AODV scenarios.
pub fn aodv_factory() -> impl Fn(NodeId) -> Aodv + Copy {
    |id| Aodv::new(id, aodv_config())
}

/// Node factory for DSR scenarios.
pub fn dsr_factory() -> impl Fn(NodeId) -> Dsr + Copy {
    |id| Dsr::new(id, dsr_config())
}

/// Node factory for OLSR scenarios.
pub fn olsr_factory() -> impl Fn(NodeId) -> Olsr + Copy {
    |id| Olsr::new(id, olsr_config())
}

/// A scenario plus the search budget it runs under.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The scenario.
    pub scenario: Scenario,
    /// Its search budget.
    pub budget: Budget,
}

/// LDR obligations: every entry must explore clean.
pub fn ldr_suite() -> Vec<SuiteEntry> {
    vec![
        // Plain discovery over a chain, with one message loss allowed
        // anywhere (covers retried floods arriving after partial
        // state).
        SuiteEntry {
            scenario: Scenario {
                name: "ldr-chain-discovery".into(),
                n: 3,
                links: vec![(0, 1), (1, 2)],
                originations: vec![(0, 2)],
                toggles: vec![],
                max_expires: 0,
                max_bumps: 0,
                max_losses: 1,
                max_restarts: 0,
                probe: Some((0, 2)),
            },
            budget: Budget { max_depth: 40, max_states: 120_000 },
        },
        // The stale-route shape that loops AODV: establish 2->1->0,
        // expire the middle node's entry at any point, re-discover. NDC
        // must reject the neighbour's equal-sequence stale
        // advertisement.
        SuiteEntry {
            scenario: Scenario {
                name: "ldr-expire-rediscover".into(),
                n: 3,
                links: vec![(0, 1), (1, 2)],
                originations: vec![(2, 0), (1, 0)],
                toggles: vec![],
                max_expires: 1,
                max_bumps: 0,
                max_losses: 0,
                max_restarts: 0,
                probe: Some((2, 0)),
            },
            budget: Budget { max_depth: 40, max_states: 120_000 },
        },
        // Two disjoint paths; one may break mid-flight. Replies racing
        // over both sides must never assemble a cycle.
        SuiteEntry {
            scenario: Scenario {
                name: "ldr-diamond-partition".into(),
                n: 4,
                links: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
                originations: vec![(0, 3)],
                toggles: vec![(1, 3)],
                max_expires: 0,
                max_bumps: 0,
                max_losses: 0,
                max_restarts: 0,
                probe: Some((0, 3)),
            },
            budget: Budget { max_depth: 40, max_states: 150_000 },
        },
        // Destination-side sequence increments racing stale state: fd
        // history must reset only on a strictly newer seqno.
        SuiteEntry {
            scenario: Scenario {
                name: "ldr-bump-reset".into(),
                n: 3,
                links: vec![(0, 1), (1, 2)],
                originations: vec![(0, 2)],
                toggles: vec![],
                max_expires: 1,
                max_bumps: 1,
                max_losses: 0,
                max_restarts: 0,
                probe: Some((0, 2)),
            },
            budget: Budget { max_depth: 40, max_states: 120_000 },
        },
        // Crash/restart with total state loss at any node, at any
        // point. The restarted node re-requests with no history; the
        // neighbour holding a stale route through it must treat that
        // request as a route error (the request-as-error rule) instead
        // of answering from the stale entry — the exact hole AODV's
        // restart leaves open.
        SuiteEntry {
            scenario: Scenario {
                name: "ldr-restart-recover".into(),
                n: 3,
                links: vec![(0, 1), (1, 2)],
                originations: vec![(2, 0), (1, 0)],
                toggles: vec![],
                max_expires: 0,
                max_bumps: 0,
                max_losses: 0,
                max_restarts: 1,
                probe: Some((2, 0)),
            },
            budget: Budget { max_depth: 40, max_states: 200_000 },
        },
    ]
}

/// The AODV sensitivity witness: same shape as `ldr-expire-rediscover`;
/// the checker must find a routing loop here.
pub fn aodv_stale_reply() -> SuiteEntry {
    SuiteEntry {
        scenario: Scenario {
            name: "aodv-stale-reply".into(),
            n: 3,
            links: vec![(0, 1), (1, 2)],
            originations: vec![(2, 0), (1, 0)],
            toggles: vec![],
            max_expires: 1,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 0,
            probe: Some((2, 0)),
        },
        budget: Budget { max_depth: 40, max_states: 120_000 },
    }
}

/// The AODV restart witness (van Glabbeek et al.): a node that crashes,
/// loses its sequence number, and re-requests with an unknown
/// destination sequence number draws a stale intermediate reply from a
/// neighbour whose own route points back through it. The checker must
/// find a routing loop here — no expiry needed, state loss alone does
/// it — while `ldr-restart-recover` (same shape) explores clean.
pub fn aodv_restart_amnesia() -> SuiteEntry {
    SuiteEntry {
        scenario: Scenario {
            name: "aodv-restart-amnesia".into(),
            n: 3,
            links: vec![(0, 1), (1, 2)],
            originations: vec![(2, 0), (1, 0)],
            toggles: vec![],
            max_expires: 0,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 1,
            probe: Some((2, 0)),
        },
        budget: Budget { max_depth: 40, max_states: 200_000 },
    }
}

/// The DSR liveness witness: complete one discovery over a chain, then
/// crash the source. The reboot resets `next_id` to 0, so the
/// restarted source's re-discovery reuses request id 0 — which every
/// neighbour's dedup set still remembers (frozen time keeps `seen`
/// entries immortal) — and the flood dies one hop out. The probe
/// origination must therefore stall: a liveness breach LDR avoids by
/// *not* resetting its request-id counter on reboot.
pub fn dsr_restart_stale_id() -> SuiteEntry {
    SuiteEntry {
        scenario: Scenario {
            name: "dsr-restart-stale-id".into(),
            n: 3,
            links: vec![(0, 1), (1, 2)],
            originations: vec![(0, 2)],
            toggles: vec![],
            max_expires: 0,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 1,
            probe: Some((0, 2)),
        },
        budget: Budget { max_depth: 40, max_states: 200_000 },
    }
}

/// The OLSR safety witness: a triangle whose links break faster than
/// the link-state views converge. After both of node 2's links go
/// down, node 0 still routes to 2 via 1 (stale topology) and node 1
/// routes to 2 via 0 (stale two-hop set) — a transient 2-cycle, the
/// classic link-state stale-view loop that sequence-numbered on-demand
/// protocols dodge per-route.
pub fn olsr_stale_views_loop() -> SuiteEntry {
    SuiteEntry {
        scenario: Scenario {
            name: "olsr-stale-views-loop".into(),
            n: 3,
            links: vec![(0, 1), (1, 2), (0, 2)],
            originations: vec![(0, 2)],
            toggles: vec![(1, 2), (0, 2)],
            max_expires: 0,
            max_bumps: 0,
            max_losses: 0,
            max_restarts: 0,
            probe: Some((0, 2)),
        },
        budget: Budget { max_depth: 60, max_states: 200_000 },
    }
}
