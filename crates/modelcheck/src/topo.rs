//! Deterministic small-topology generation.
//!
//! The curated suite ([`crate::scenarios`]) pins shapes we already know
//! are adversarial; this module manufactures shapes nobody picked. A
//! generated [`Scenario`] is a pure function of `(seed, index)` — the
//! same pair always yields byte-identical topology, workload and hazard
//! budgets, which is what keeps coverage reports reproducible and lets
//! a failing cell be named by two integers in a regression file.
//!
//! Topologies are 3–6 nodes: small enough that the coverage walker's
//! state budget buys real interleaving depth, large enough for diamonds
//! and bridges (the shapes that historically break routing protocols).
//! Connectivity is guaranteed by construction — a random spanning tree
//! first, extra edges after — so probe liveness is non-vacuous unless a
//! toggle partitions the network mid-run.

use crate::net::Scenario;
use manet_sim::rng::SimRng;

/// Mixer applied to the generation index before it enters the RNG
/// stream (golden-ratio odd constant, same family as splitmix64).
const INDEX_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Generates cell `index` of the scenario family for `seed`.
///
/// `with_bumps` grants a destination sequence-number bump budget; pass
/// it only for protocols with destination sequence numbers (LDR, AODV —
/// for DSR and OLSR the transition would be a confusing no-op).
pub fn generate(seed: u64, index: u64, with_bumps: bool) -> Scenario {
    let mut rng = SimRng::stream(seed ^ index.wrapping_mul(INDEX_MIX), "mc-topo");
    let n = 3 + rng.below(4) as u16;

    // Random spanning tree: node i attaches to a random earlier node.
    let mut links: Vec<(u16, u16)> = Vec::new();
    for i in 1..n {
        let parent = rng.below(u64::from(i)) as u16;
        links.push((parent, i));
    }
    // Up to two extra edges (diamonds, triangles, chords).
    for _ in 0..rng.below(3) {
        let a = rng.below(u64::from(n)) as u16;
        let b = rng.below(u64::from(n)) as u16;
        let edge = if a <= b { (a, b) } else { (b, a) };
        if a != b && !links.contains(&edge) {
            links.push(edge);
        }
    }
    links.sort_unstable();

    // One or two originations between distinct nodes.
    let mut originations: Vec<(u16, u16)> = Vec::new();
    for _ in 0..1 + rng.below(2) {
        let src = rng.below(u64::from(n)) as u16;
        let mut dst = rng.below(u64::from(n)) as u16;
        if dst == src {
            dst = (dst + 1) % n;
        }
        originations.push((src, dst));
    }

    // Up to two link toggles: an existing link may fail, a missing one
    // may come up.
    let mut toggles: Vec<(u16, u16)> = Vec::new();
    for _ in 0..rng.below(3) {
        let a = rng.below(u64::from(n)) as u16;
        let b = rng.below(u64::from(n)) as u16;
        let edge = if a <= b { (a, b) } else { (b, a) };
        if a != b && !toggles.contains(&edge) {
            toggles.push(edge);
        }
    }

    let probe = originations.first().copied();
    Scenario {
        name: format!("gen-{index}-s{seed:016x}"),
        n,
        links,
        originations,
        toggles,
        max_expires: rng.below(2) as u32,
        max_bumps: if with_bumps { rng.below(2) as u32 } else { 0 },
        max_losses: rng.below(2) as u32,
        max_restarts: rng.below(2) as u32,
        probe,
    }
}
