//! Deterministic counterexample rendering.
//!
//! A minimized trace is replayed once more from the initial state, this
//! time feeding every routing-decision trace event into the simulator's
//! [`InvariantAuditor`] so the counterexample gets the same forensic
//! treatment a simulation breach would: the first-violation report with
//! involved nodes, table snapshots and the recent decision timeline.
//! The output contains no wall-clock, map-order or randomness
//! dependence, so regression tests pin it byte-for-byte.

use crate::checker::Counterexample;
use crate::model::ProtocolModel;
use crate::net::{NetState, Scenario, T0};
use ldr::SeqNo;
use manet_sim::audit::InvariantAuditor;
use manet_sim::packet::NodeId;
use manet_sim::protocol::RouteDump;
use std::fmt::Write as _;

fn route_line(out: &mut String, r: &RouteDump) {
    let fd = r.feasible_dist.map_or_else(|| "-".into(), |v| v.to_string());
    let sn = r.seqno.map_or_else(|| "-".into(), |v| SeqNo::from_u64(v).to_string());
    let state = if r.valid { "valid" } else { "expired" };
    let _ = writeln!(
        out,
        "    -> {} via {} d={} fd={} sn={} {}",
        r.dest, r.next, r.dist, fd, sn, state
    );
}

/// Replays `events` through the simulator's [`InvariantAuditor`] and
/// renders the forensic section alone: the auditor's first-violation
/// report when it flags one, the final route tables otherwise. The
/// differential replay suite compares this section against the tail of
/// each pinned fixture — the simulator's audit machinery must reach the
/// same first-breach verdict the checker reached.
pub fn forensic_section<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    events: &[crate::net::Event],
) -> String {
    let mut out = String::new();
    // Forensic replay: drive the auditor exactly as the simulator's
    // invariant layer would.
    let mut auditor = InvariantAuditor::new();
    let mut state = NetState::init(scenario, factory);
    for event in events {
        let Some(step) = state.apply(scenario, event) else { continue };
        for t in &step.traces {
            auditor.observe(T0, t);
        }
        state = step.state;
        let dumps: Vec<Vec<RouteDump>> = state.nodes.iter().map(|m| m.dump()).collect();
        let successors: Vec<Vec<(NodeId, NodeId)>> =
            state.nodes.iter().map(|m| m.successors()).collect();
        auditor.check(T0, 0, &dumps, &successors);
        if auditor.report().is_some() {
            break;
        }
    }

    if let Some(report) = auditor.report() {
        let _ = writeln!(out, "-- forensic replay --");
        let _ = write!(out, "{report}");
    } else {
        // NDC-unsoundness has no auditor counterpart (the auditor sees
        // tables, not admission decisions); dump the tables ourselves.
        let _ = writeln!(out, "-- final route tables --");
        for (i, m) in state.nodes.iter().enumerate() {
            let _ = writeln!(out, "  node {i}:");
            for r in m.dump() {
                route_line(&mut out, &r);
            }
        }
    }
    out
}

/// Renders the full deterministic report for a counterexample.
pub fn render<M: ProtocolModel>(
    scenario: &Scenario,
    factory: impl Fn(NodeId) -> M + Copy,
    cex: &Counterexample,
) -> String {
    let mut out = String::new();
    let proto = factory(NodeId(0)).protocol_name();
    let _ = writeln!(out, "== counterexample: {} ({proto}) ==", scenario.name);
    let _ = writeln!(out, "violation: {}", cex.violation);
    let _ = writeln!(out, "trace ({} events, shrunk from {}):", cex.events.len(), cex.raw_len);
    for (i, e) in cex.events.iter().enumerate() {
        let _ = writeln!(out, "  {:>2}. {e}", i + 1);
    }
    out.push_str(&forensic_section(scenario, factory, &cex.events));
    out
}
