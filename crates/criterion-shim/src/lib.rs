//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the real `criterion` cannot be downloaded. This shim
//! implements the subset of the API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId::from_parameter`], `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring wall time
//! with `std::time::Instant` and printing a `name  time/iter` line per
//! benchmark.
//!
//! Behaviour:
//!
//! * Under `cargo bench` (or any invocation without `--test`), every
//!   benchmark runs a short calibration pass and then enough
//!   iterations to fill the group's measurement time (default 2 s),
//!   reporting mean ns/iter.
//! * Under `cargo test` (cargo passes `--test` to `harness = false`
//!   bench targets), every benchmark body runs **once** as a smoke
//!   test, matching real criterion's test-mode behaviour.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How benchmarks execute (full measurement vs. one-shot smoke test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--test") {
        Mode::TestOnce
    } else {
        Mode::Measure
    }
}

/// Runs timed closures for one benchmark.
pub struct Bencher {
    mode: Mode,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::TestOnce {
            std::hint::black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Calibrate: find an iteration count that takes ~10 ms.
        let mut n: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 30 {
                break (elapsed.as_nanos() as f64 / n as f64).max(0.1);
            }
            n *= 4;
        };
        // Measure: as many iterations as fit the measurement budget.
        let budget = self.measurement_time.as_nanos() as f64;
        let total = ((budget / per_iter_ns) as u64).max(1);
        let start = Instant::now();
        for _ in 0..total {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / total as f64;
        self.iters = total;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.mode == Mode::TestOnce {
        println!("bench {name}: ok (test mode, 1 iteration)");
        return;
    }
    let ns = b.mean_ns;
    let pretty = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    };
    println!("bench {name}: {pretty}/iter ({} iterations)", b.iters);
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility;
    /// the shim sizes runs by measurement time alone).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mode: self.mode,
            measurement_time: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            measurement_time: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: mode_from_args() }
    }
}

impl Criterion {
    /// Runs one named benchmark with default settings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            measurement_time: Duration::from_secs(2),
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let mode = self.mode;
        BenchmarkGroup {
            name: name.into(),
            mode,
            measurement_time: Duration::from_secs(2),
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export of `std::hint::black_box`, which real criterion provides.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mode: Mode::Measure,
            measurement_time: Duration::from_millis(30),
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(41u64) + 1);
        assert!(b.mean_ns > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("LDR").id, "LDR");
        assert_eq!(BenchmarkId::new("t", 5).id, "t/5");
    }
}
