//! Deterministic fast hashing for simulator-internal keys.
//!
//! The standard library's default hasher is SipHash-1-3, whose keyed,
//! DoS-resistant design costs real time on the simulator's hot paths
//! (per-packet duplicate checks, per-recompute route-table builds).
//! Simulator keys are small integers (`NodeId`, uids, tuples of both)
//! under no adversarial pressure, so a fixed-key multiplicative hash is
//! both faster and — crucially for the reproducibility contract —
//! deterministic across runs and platforms.
//!
//! Determinism caveat: a map's *iteration order* still depends on its
//! hash function. Swapping a map to [`FxBuild`] is only sound where
//! every iteration of that map is order-insensitive (probe-only use,
//! or results sorted/fold-commutative afterwards). The `cargo xtask`
//! determinism lint keeps raw `HashMap`/`HashSet` out of the files
//! where ordering bugs would be silent.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash (the rustc hasher): one rotate-xor-multiply per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — plug into `HashMap`/`HashSet` type
/// parameters.
pub type FxBuild = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let build = FxBuild::default();
        let a = std::hash::BuildHasher::hash_one(&build, 42u64);
        let b = std::hash::BuildHasher::hash_one(&build, 42u64);
        assert_eq!(a, b, "same key must hash identically");
        let c = std::hash::BuildHasher::hash_one(&build, 43u64);
        assert_ne!(a, c, "neighbouring keys should not collide trivially");
    }

    #[test]
    fn map_with_fx_build_behaves_like_a_map() {
        let mut m: HashMap<u16, u32, FxBuild> = HashMap::default();
        for k in 0..1000u16 {
            m.insert(k, u32::from(k) * 3);
        }
        for k in 0..1000u16 {
            assert_eq!(m.get(&k), Some(&(u32::from(k) * 3)));
        }
        assert_eq!(m.len(), 1000);
    }
}
