//! Deterministic spatial neighbor index for the unit-disk radio.
//!
//! [`World::propagate`](crate::world::World) and
//! [`World::neighbors`](crate::world::World::neighbors) need "every node
//! within radio range of X, in ascending node order" for every frame on
//! the air. The naive answer scans all N nodes per query — O(N) position
//! lookups per transmission, the dominant cost of paper-scale (100-node,
//! 900 s) runs. [`NeighborGrid`] answers the same query from a uniform
//! cell grid over the node population, evaluating exact positions only
//! for nodes whose cell can possibly contain an in-range node.
//!
//! # Byte-identity with the linear scan
//!
//! The grid is an *index*, not an approximation: enabled or disabled
//! ([`crate::config::SimConfig::spatial_grid`]), a run produces
//! bit-for-bit identical metrics and traces. Three properties make this
//! hold:
//!
//! 1. **Superset candidates.** The index records each node's cell as
//!    of the last rebuild at time `t_r`. A node can have drifted at
//!    most `v_max · (now − t_r)` metres since, so accepting every node
//!    whose recorded cell intersects the disc of radius
//!    `range + v_max · (now − t_r)` around the sender cannot miss an
//!    in-range node. `v_max` comes from the mobility model's promise
//!    ([`MobilityModel::max_speed_mps`]); models that cannot promise a
//!    bound disable the grid entirely.
//! 2. **Exact filter, same order.** Candidates are visited in
//!    ascending node order (the very order the linear scan uses: the
//!    cell test is applied while walking node ids `0..n`) and filtered
//!    by the *exact* squared-distance test on the *exact* model
//!    position, so the surviving set, its order and the reported
//!    distances are bitwise equal to the linear scan's. Skipped
//!    out-of-range nodes have no side effects in either path.
//! 3. **Order-independent mobility.** Positions for nodes the grid
//!    never inspects are simply not queried. This is only sound
//!    because every mobility model's trajectory is independent of its
//!    query pattern (random waypoint splits one RNG stream per node at
//!    construction; see [`crate::mobility`]).
//!
//! # Epoch-based position caching
//!
//! Exact positions are served through a per-node cache keyed on the
//! mobility *leg*: [`MobilityModel::motion_leg`] returns the node's
//! current straight-line segment plus a `valid_until` instant through
//! which the model promises the leg describes the trajectory exactly
//! (the rest of a random-waypoint leg and its pause, forever for
//! static nodes). A cache entry is valid for every query time
//! `t ≤ valid_until` — the epoch invalidation rule — and positions
//! inside the window are evaluated with the *same* canonical
//! [`MotionLeg::pos_at`] formula the model itself uses, so cached
//! answers are bitwise equal to direct lookups. Simulation time never
//! decreases, so expired entries are refreshed in place and never
//! resurrected.
//!
//! # Determinism
//!
//! The grid draws no randomness, reads no clocks and iterates only
//! `Vec`s in index order (no `HashMap`/`HashSet`; enforced by
//! `cargo xtask check`). Rebuild instants are a pure function of query
//! times, which are simulation times.

use crate::geometry::{CellGrid, Position};
use crate::mobility::{MobilityModel, MotionLeg};
use crate::packet::NodeId;
use crate::time::{SimDuration, SimTime};

/// A uniform-grid spatial index over the node population.
///
/// Owned by the [`World`](crate::world::World) behind a `RefCell`
/// (range queries are logically read-only but advance the cache and
/// the rebuild epoch).
#[derive(Clone, Debug)]
pub struct NeighborGrid {
    /// Radio range in metres (the unit-disk radius).
    range: f64,
    /// Promised upper bound on node speed, m/s.
    v_max: f64,
    /// How often buckets are rebuilt from fresh positions.
    rebuild_every: SimDuration,
    /// When the buckets were last rebuilt; `None` before first use.
    rebuilt_at: Option<SimTime>,
    /// The cell decomposition of the node bounding box at rebuild time.
    grid: CellGrid,
    /// Each node's cell as of the last rebuild, packed `row << 8 | col`
    /// (the 64-cell axis cap keeps both coordinates in a byte). Stored
    /// per node — not as per-cell buckets — so a query prunes with one
    /// load and two integer compares per node while walking ids in
    /// ascending order, which *is* the linear scan's visit order: no
    /// gather, no sort. At the paper's population (≤ a few hundred
    /// nodes) this flat test beats a bucket walk outright.
    node_cell: Vec<u16>,
    /// Motion-leg cache, one entry per node (see the module docs).
    cache: Vec<MotionLeg>,
}

impl NeighborGrid {
    /// Builds an (initially unpopulated) index for `n` nodes with the
    /// given radio range and speed bound. The first query populates it.
    ///
    /// # Panics
    ///
    /// Panics unless `range` is positive and finite and `v_max` is
    /// finite and non-negative.
    pub fn new(n: usize, range: f64, v_max: f64) -> Self {
        assert!(range.is_finite() && range > 0.0, "bad radio range {range}");
        assert!(v_max.is_finite() && v_max >= 0.0, "bad speed bound {v_max}");
        NeighborGrid {
            range,
            v_max,
            // One rebuild per simulated second keeps the query slack at
            // `v_max` metres (20 m for the paper's random waypoint) —
            // small against the 275 m range — while amortising the
            // O(N) rebuild over the thousands of events a second holds.
            rebuild_every: SimDuration::from_secs(1),
            rebuilt_at: None,
            grid: CellGrid::covering(Position::new(0.0, 0.0), Position::new(0.0, 0.0), range),
            node_cell: vec![0; n],
            cache: vec![MotionLeg::parked(Position::new(0.0, 0.0), SimTime::ZERO); n],
        }
    }

    /// Number of nodes the index covers.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the index covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The exact position of `node` at `now`, served from the epoch
    /// cache when the model's leg promise still covers `now`,
    /// refreshed from the model otherwise. Bitwise equal to
    /// `mobility.position(node, now)` in both cases because hit and
    /// miss alike evaluate the canonical [`MotionLeg::pos_at`].
    fn position_of(
        &mut self,
        mobility: &dyn MobilityModel,
        node: NodeId,
        now: SimTime,
    ) -> Position {
        let entry = &mut self.cache[node.index()];
        if now <= entry.valid_until && self.rebuilt_at.is_some() {
            return entry.pos_at(now);
        }
        let leg = mobility.motion_leg(node, now);
        *entry = leg;
        leg.pos_at(now)
    }

    /// Rebuilds the buckets from fresh positions if the rebuild epoch
    /// has lapsed (or the index was never populated).
    fn maybe_rebuild(&mut self, mobility: &dyn MobilityModel, now: SimTime) {
        match self.rebuilt_at {
            Some(at) if now < at + self.rebuild_every => return,
            _ => {}
        }
        let n = self.cache.len();
        // Refresh every expired cache entry (ascending node order) and
        // track the population bounding box.
        let mut min = Position::new(f64::INFINITY, f64::INFINITY);
        let mut max = Position::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for i in 0..n {
            let entry = &mut self.cache[i];
            if now > entry.valid_until || self.rebuilt_at.is_none() {
                *entry = mobility.motion_leg(NodeId(i as u16), now);
            }
            let pos = entry.pos_at(now);
            min = Position::new(min.x.min(pos.x), min.y.min(pos.y));
            max = Position::new(max.x.max(pos.x), max.y.max(pos.y));
        }
        // Cell edge = radio range, floored so a degenerate population
        // or tiny range cannot explode the cell count: the widest axis
        // is capped at 64 cells.
        let span = (max.x - min.x).max(max.y - min.y);
        let cell = self.range.max(span / 64.0).max(1e-9);
        self.grid = CellGrid::covering(min, max, cell);
        for i in 0..n {
            let (cx, cy) = self.grid.cell_of(self.cache[i].pos_at(now));
            self.node_cell[i] = ((cy as u16) << 8) | cx as u16;
        }
        self.rebuilt_at = Some(now);
    }

    /// Every node within radio range of `of` at `now`, **excluding**
    /// `of` itself, in ascending node order, with its exact squared
    /// distance — appended to `out` (cleared first). Bitwise equal
    /// (set, order and distances) to the linear scan over all nodes.
    pub fn query_into(
        &mut self,
        mobility: &dyn MobilityModel,
        of: NodeId,
        now: SimTime,
        out: &mut Vec<(NodeId, f64)>,
    ) {
        out.clear();
        self.maybe_rebuild(mobility, now);
        let center = self.position_of(mobility, of, now);
        // Recorded cells are as of the last rebuild: widen the query
        // disc by the maximum drift since then.
        let drift =
            self.rebuilt_at.map_or(0.0, |at| self.v_max * now.saturating_since(at).as_secs_f64());
        let reach = self.range + drift;
        let (cols, rows) = self.grid.cells_within(center, reach);
        let (c0, c1) = (*cols.start() as u16, *cols.end() as u16);
        let (r0, r1) = (*rows.start() as u16, *rows.end() as u16);
        let range_sq = self.range * self.range;
        let of_idx = of.index();
        // Walking ids `0..n` is the linear scan's own visit order, so
        // the survivors need no sorting; the packed-cell compare skips
        // nodes that cannot be in range without touching their legs.
        for i in 0..self.node_cell.len() {
            if i == of_idx {
                continue;
            }
            let cell = self.node_cell[i];
            let (col, row) = (cell & 0xff, cell >> 8);
            if col < c0 || col > c1 || row < r0 || row > r1 {
                continue;
            }
            let entry = &mut self.cache[i];
            if now > entry.valid_until {
                *entry = mobility.motion_leg(NodeId(i as u16), now);
            }
            let d = entry.pos_at(now).distance_sq(center);
            if d <= range_sq {
                out.push((NodeId(i as u16), d));
            }
        }
    }

    /// Allocating convenience wrapper around [`NeighborGrid::query_into`].
    pub fn query(
        &mut self,
        mobility: &dyn MobilityModel,
        of: NodeId,
        now: SimTime,
    ) -> Vec<(NodeId, f64)> {
        let mut out = Vec::new();
        self.query_into(mobility, of, now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Terrain;
    use crate::mobility::{RandomWaypoint, StaticMobility};
    use crate::rng::SimRng;

    /// Reference linear scan matching `World`'s un-indexed path.
    fn linear(
        mobility: &dyn MobilityModel,
        of: NodeId,
        now: SimTime,
        range: f64,
    ) -> Vec<(NodeId, f64)> {
        let p = mobility.position(of, now);
        let range_sq = range * range;
        (0..mobility.len() as u16)
            .map(NodeId)
            .filter(|&m| m != of)
            .filter_map(|m| {
                let d = mobility.position(m, now).distance_sq(p);
                (d <= range_sq).then_some((m, d))
            })
            .collect()
    }

    #[test]
    fn matches_linear_scan_on_static_line() {
        let m = StaticMobility::line(10, 200.0);
        let mut g = NeighborGrid::new(10, 275.0, 0.0);
        for node in 0..10u16 {
            let got = g.query(&m, NodeId(node), SimTime::from_secs(1));
            assert_eq!(got, linear(&m, NodeId(node), SimTime::from_secs(1), 275.0));
        }
    }

    #[test]
    fn matches_linear_scan_under_random_waypoint_over_time() {
        let terrain = Terrain::new(1500.0, 300.0);
        let mk = || {
            RandomWaypoint::new(
                30,
                terrain,
                SimDuration::from_secs(2),
                1.0,
                20.0,
                SimRng::stream(42, "mobility"),
            )
        };
        // Two independent copies: the grid must not perturb trajectories.
        let for_grid = mk();
        let for_linear = mk();
        let mut g = NeighborGrid::new(30, 275.0, 20.0);
        for step in 0..240u64 {
            let now = SimTime::from_millis(step * 250);
            let node = NodeId((step % 30) as u16);
            let got = g.query(&for_grid, node, now);
            let want = linear(&for_linear, node, now, 275.0);
            assert_eq!(got, want, "node {node:?} at {now:?}");
        }
    }

    #[test]
    fn range_boundary_is_inclusive_exactly_like_the_scan() {
        // Node 1 exactly at range, node 2 one ULP-ish beyond.
        let m = StaticMobility::new(vec![
            Position::new(0.0, 0.0),
            Position::new(275.0, 0.0),
            Position::new(275.0000001, 0.0),
        ]);
        let mut g = NeighborGrid::new(3, 275.0, 0.0);
        let got = g.query(&m, NodeId(0), SimTime::ZERO);
        assert_eq!(got, linear(&m, NodeId(0), SimTime::ZERO, 275.0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, NodeId(1));
    }

    #[test]
    fn cell_edge_nodes_are_not_missed() {
        // Nodes sitting exactly on cell boundaries (multiples of the
        // 275 m cell edge) on both axes.
        let mut positions = Vec::new();
        for i in 0..5 {
            for j in 0..3 {
                positions.push(Position::new(i as f64 * 275.0, j as f64 * 275.0));
            }
        }
        let n = positions.len();
        let m = StaticMobility::new(positions);
        let mut g = NeighborGrid::new(n, 275.0, 0.0);
        for node in 0..n as u16 {
            let got = g.query(&m, NodeId(node), SimTime::from_secs(3));
            assert_eq!(got, linear(&m, NodeId(node), SimTime::from_secs(3), 275.0), "node {node}");
        }
    }

    #[test]
    fn stale_buckets_between_rebuilds_still_answer_exactly() {
        let terrain = Terrain::new(600.0, 600.0);
        let mk = || {
            RandomWaypoint::new(
                12,
                terrain,
                SimDuration::ZERO,
                20.0,
                20.0, // fastest legal nodes: maximum drift per epoch
                SimRng::stream(5, "mobility"),
            )
        };
        let for_grid = mk();
        let for_linear = mk();
        let mut g = NeighborGrid::new(12, 275.0, 20.0);
        // Force a rebuild at t=0, then query just before the next
        // rebuild instant, when drift slack is at its maximum.
        g.query(&for_grid, NodeId(0), SimTime::ZERO);
        let now = SimTime::from_millis(999);
        for node in 0..12u16 {
            let got = g.query(&for_grid, NodeId(node), now);
            assert_eq!(got, linear(&for_linear, NodeId(node), now, 275.0), "node {node}");
        }
    }

    #[test]
    fn single_node_population() {
        let m = StaticMobility::line(1, 100.0);
        let mut g = NeighborGrid::new(1, 275.0, 0.0);
        assert_eq!(g.len(), 1);
        assert!(g.query(&m, NodeId(0), SimTime::ZERO).is_empty());
    }

    /// Property-based differential suite: for arbitrary populations,
    /// terrains, speeds and query schedules, the grid's answer must be
    /// `Vec`-equal (same set, same ascending order, bitwise-same
    /// distances) to the linear scan's. The generators deliberately
    /// construct the adversarial geometries — nodes exactly on cell
    /// edges and exactly at the range boundary — where an off-by-one in
    /// the cell walk or a `<` / `<=` slip in the filter would show.
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Random-waypoint differential: independent mobility
            /// copies (the grid must not perturb trajectories), a
            /// randomized query schedule crossing several rebuild
            /// epochs, arbitrary terrain shapes and speed bounds.
            #[test]
            fn grid_matches_linear_under_random_waypoint(
                seed in 1u64..1_000_000,
                n in 2usize..40,
                width in 300u32..2500,
                height in 100u32..900,
                pause in prop::sample::select(vec![0u64, 1, 30]),
                vmax_dm in 10u32..300, // 1.0 .. 30.0 m/s in decimetres
                step_ms in 37u64..900,
            ) {
                let vmax = f64::from(vmax_dm) / 10.0;
                let terrain = Terrain::new(f64::from(width), f64::from(height));
                let mk = || {
                    RandomWaypoint::new(
                        n,
                        terrain,
                        SimDuration::from_secs(pause),
                        0.5,
                        vmax,
                        SimRng::stream(seed, "mobility"),
                    )
                };
                let for_grid = mk();
                let for_linear = mk();
                let mut g = NeighborGrid::new(n, 275.0, vmax);
                for step in 0..60u64 {
                    let now = SimTime::from_millis(step * step_ms);
                    let node = NodeId((step as usize % n) as u16);
                    let got = g.query(&for_grid, node, now);
                    let want = linear(&for_linear, node, now, 275.0);
                    prop_assert_eq!(got, want, "node {:?} at {:?}", node, now);
                }
            }

            /// Static lattice differential: nodes on exact multiples of
            /// the cell edge (cell-boundary aliasing) with tiny per-node
            /// jitters on either side, plus one node at *exactly* the
            /// radio range from the origin node (the inclusive-boundary
            /// case) and one just beyond it.
            #[test]
            fn grid_matches_linear_on_cell_edges_and_range_boundary(
                range_dm in 500u32..4000, // 50.0 .. 400.0 m in decimetres
                cols in 1usize..6,
                rows in 1usize..4,
                jitters in proptest::collection::vec(
                    prop::sample::select(vec![-0.5f64, -1e-6, 0.0, 1e-6, 0.5]),
                    8..48,
                ),
            ) {
                let range = f64::from(range_dm) / 10.0;
                let mut positions = Vec::new();
                let mut j = jitters.iter().cycle();
                let mut jit = || *j.next().unwrap_or(&0.0);
                for i in 0..cols {
                    for k in 0..rows {
                        positions.push(Position::new(
                            i as f64 * range + jit(),
                            k as f64 * range + jit(),
                        ));
                    }
                }
                // The inclusive boundary, measured from the first
                // lattice node, and a point strictly beyond it.
                let origin = positions[0];
                positions.push(Position::new(origin.x + range, origin.y));
                positions.push(Position::new(origin.x + range + 1e-7, origin.y));
                let n = positions.len();
                let m = StaticMobility::new(positions);
                let mut g = NeighborGrid::new(n, range, 0.0);
                for t in [SimTime::ZERO, SimTime::from_secs(2)] {
                    for node in 0..n as u16 {
                        let got = g.query(&m, NodeId(node), t);
                        let want = linear(&m, NodeId(node), t, range);
                        prop_assert_eq!(got, want, "node {} at {:?}", node, t);
                    }
                }
            }
        }
    }
}
