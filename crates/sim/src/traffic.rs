//! Constant-bit-rate traffic generation.
//!
//! The evaluation drives the network with a fixed number of concurrent
//! CBR flows (10 or 30), each sending 512-byte packets at 4 packets/s
//! between random distinct endpoints, with flow lifetimes drawn from an
//! exponential distribution with mean 100 s; when a flow ends a new one
//! replaces it, so the offered load is constant.

use crate::time::SimDuration;

/// CBR workload parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficConfig {
    /// Number of concurrent flows.
    pub n_flows: usize,
    /// Packets per second per flow.
    pub pkts_per_sec: f64,
    /// Application payload bytes per packet.
    pub payload_len: u16,
    /// Mean flow lifetime in seconds (exponential).
    pub mean_flow_secs: f64,
    /// Flow starts are staggered uniformly over this window.
    pub start_window: SimDuration,
}

impl TrafficConfig {
    /// The paper's workload: `n_flows` CBR flows of 512-byte packets at
    /// 4 packets per second, mean flow length 100 s.
    pub fn paper(n_flows: usize) -> Self {
        TrafficConfig {
            n_flows,
            pkts_per_sec: 4.0,
            payload_len: 512,
            mean_flow_secs: 100.0,
            start_window: SimDuration::from_secs(20),
        }
    }

    /// Interval between packets of one flow.
    ///
    /// # Panics
    ///
    /// Panics if `pkts_per_sec` is not positive.
    pub fn packet_interval(&self) -> SimDuration {
        assert!(self.pkts_per_sec > 0.0, "packet rate must be positive");
        SimDuration::from_secs_f64(1.0 / self.pkts_per_sec)
    }
}

/// Internal state of one flow slot (the current flow occupying it).
#[derive(Clone, Debug)]
pub(crate) struct FlowState {
    /// Metrics identity of the current flow instance.
    pub flow_id: u32,
    /// Source node index.
    pub src: u16,
    /// Destination node index.
    pub dst: u16,
    /// Next packet sequence number.
    pub next_seq: u32,
    /// When the current flow instance ends.
    pub ends_at: crate::time::SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let t = TrafficConfig::paper(10);
        assert_eq!(t.n_flows, 10);
        assert_eq!(t.payload_len, 512);
        assert_eq!(t.packet_interval(), SimDuration::from_millis(250));
    }

    #[test]
    fn packet_interval_from_rate() {
        let t = TrafficConfig { pkts_per_sec: 8.0, ..TrafficConfig::paper(1) };
        assert_eq!(t.packet_interval(), SimDuration::from_millis(125));
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let t = TrafficConfig { pkts_per_sec: 0.0, ..TrafficConfig::paper(1) };
        let _ = t.packet_interval();
    }
}
