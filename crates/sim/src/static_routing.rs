//! A fixed-table routing protocol.
//!
//! Not part of the paper: this is the substrate-testing protocol. With
//! routes precomputed from a known static topology, any loss or latency
//! the simulator reports is attributable to the PHY/MAC model alone,
//! which lets the kernel be validated independently of the routing
//! protocols under study. Also handy in examples.

use crate::packet::{ControlPacket, DataPacket, NodeId, Packet, PacketBody};
use crate::protocol::{Ctx, DropReason, RouteDump, RoutingProtocol};
use std::sync::Arc;

/// All-pairs next-hop tables: `tables[src][dst]` is the next hop from
/// `src` towards `dst`, or `None` if unreachable.
pub type NextHopTables = Arc<Vec<Vec<Option<NodeId>>>>;

/// Routing with immutable precomputed next hops.
#[derive(Clone, Debug)]
pub struct StaticRouting {
    id: NodeId,
    next_hop: Vec<Option<NodeId>>,
}

impl StaticRouting {
    /// One node's view of shared all-pairs tables.
    pub fn new(id: NodeId, tables: NextHopTables) -> Self {
        StaticRouting { id, next_hop: tables[id.index()].clone() }
    }

    /// Tables for an `n`-node chain `0 — 1 — ... — n-1`.
    pub fn tables_for_line(n: usize) -> NextHopTables {
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        Self::from_adjacency(&adj)
    }

    /// BFS all-pairs next hops over an adjacency list.
    pub fn from_adjacency(adj: &[Vec<usize>]) -> NextHopTables {
        let n = adj.len();
        let mut tables = vec![vec![None; n]; n];
        for src in 0..n {
            // BFS from src, remembering each node's parent.
            let mut parent = vec![usize::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            parent[src] = src;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if parent[v] == usize::MAX {
                        parent[v] = u;
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                if dst == src || parent[dst] == usize::MAX {
                    continue;
                }
                // Walk back from dst to find the first hop out of src.
                let mut cur = dst;
                while parent[cur] != src {
                    cur = parent[cur];
                }
                tables[src][dst] = Some(NodeId(cur as u16));
            }
        }
        Arc::new(tables)
    }

    fn forward(&self, ctx: &mut Ctx, mut data: DataPacket) {
        if data.dst == self.id {
            ctx.deliver(data);
            return;
        }
        if data.ttl == 0 {
            ctx.drop_data(data, DropReason::TtlExpired);
            return;
        }
        data.ttl -= 1;
        match self.next_hop.get(data.dst.index()).copied().flatten() {
            Some(next) => ctx.send_data(next, data),
            None => ctx.drop_data(data, DropReason::NoRoute),
        }
    }
}

impl RoutingProtocol for StaticRouting {
    fn name(&self) -> &'static str {
        "Static"
    }

    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket) {
        self.forward(ctx, data);
    }

    fn handle_data_packet(&mut self, ctx: &mut Ctx, _prev_hop: NodeId, data: DataPacket) {
        self.forward(ctx, data);
    }

    fn handle_control(
        &mut self,
        _ctx: &mut Ctx,
        _prev_hop: NodeId,
        _ctrl: ControlPacket,
        _was_broadcast: bool,
    ) {
    }

    fn handle_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    fn handle_unicast_failure(&mut self, ctx: &mut Ctx, _next_hop: NodeId, packet: Packet) {
        if let PacketBody::Data(data) = packet.body {
            ctx.drop_data(data, DropReason::Other);
        }
    }

    fn route_successors(&self) -> Vec<(NodeId, NodeId)> {
        self.next_hop
            .iter()
            .enumerate()
            .filter_map(|(dst, nh)| nh.map(|n| (NodeId(dst as u16), n)))
            .collect()
    }

    fn route_table_dump(&self) -> Vec<RouteDump> {
        self.next_hop
            .iter()
            .enumerate()
            .filter_map(|(dst, nh)| {
                nh.map(|n| RouteDump {
                    dest: NodeId(dst as u16),
                    next: n,
                    dist: 0,
                    feasible_dist: None,
                    seqno: None,
                    valid: true,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_tables_point_along_the_chain() {
        let t = StaticRouting::tables_for_line(4);
        // From node 0 towards node 3: next hop 1.
        assert_eq!(t[0][3], Some(NodeId(1)));
        assert_eq!(t[1][3], Some(NodeId(2)));
        assert_eq!(t[2][3], Some(NodeId(3)));
        assert_eq!(t[3][0], Some(NodeId(2)));
        assert_eq!(t[2][2], None);
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        // Two components: {0,1} and {2}.
        let adj = vec![vec![1], vec![0], vec![]];
        let t = StaticRouting::from_adjacency(&adj);
        assert_eq!(t[0][1], Some(NodeId(1)));
        assert_eq!(t[0][2], None);
        assert_eq!(t[2][0], None);
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        // Square with diagonal 0-2: route 0->2 is direct.
        let adj = vec![vec![1, 2, 3], vec![0, 2], vec![0, 1, 3], vec![0, 2]];
        let t = StaticRouting::from_adjacency(&adj);
        assert_eq!(t[0][2], Some(NodeId(2)));
        assert_eq!(t[1][3], Some(NodeId(0)).or(t[1][3]), "either 2-hop path is fine");
    }

    #[test]
    fn successors_listed_for_auditor() {
        let t = StaticRouting::tables_for_line(3);
        let p = StaticRouting::new(NodeId(0), t);
        let succ = p.route_successors();
        assert!(succ.contains(&(NodeId(1), NodeId(1))));
        assert!(succ.contains(&(NodeId(2), NodeId(1))));
        assert_eq!(p.route_table_dump().len(), 2);
    }
}
