//! Summary statistics: online mean/variance and Student-t 95%
//! confidence intervals, matching the paper's error bars ("the vertical
//! error bars represent the 95% confidence interval").

/// Online (Welford) accumulator for mean and variance.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95% confidence interval of the mean
    /// (Student-t). Zero with fewer than two observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_quantile_975(self.n - 1);
        t * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Formats "mean ± ci" with the given precision.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean(), self.ci95_half_width(), p = precision)
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

/// Nearest-rank percentile of a sample, `p` in `[0, 100]`. Total on
/// degenerate input: an empty sample yields 0, and the sort uses the
/// IEEE 754 total order ([`f64::total_cmp`]), under which positive NaN
/// sorts after every real number — so the result is a well-defined
/// function of the sample *set*, independent of input order, and never
/// NaN for `p < 100` over real data. (The previous
/// `partial_cmp(..).unwrap_or(Less)` comparator was not a total order:
/// a NaN anywhere in the sample made the sort — and therefore the
/// reported percentile — depend on the input permutation.)
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Two-sided 97.5% quantile of Student's t distribution for `df`
/// degrees of freedom (table through 30, then the normal limit).
pub fn t_quantile_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.00,
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_observation() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.ci95_half_width(), 0.0);
        acc.push(3.5);
        assert_eq!(acc.mean(), 3.5);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_formula_for_ten_trials() {
        // Ten identical-ish trials, known closed form: t(9) = 2.262.
        let acc: Accumulator = (0..10).map(|i| i as f64).collect();
        let expected = 2.262 * acc.std_dev() / 10f64.sqrt();
        assert!((acc.ci95_half_width() - expected).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let small: Accumulator = (0..5).map(|i| (i % 2) as f64).collect();
        let large: Accumulator = (0..500).map(|i| (i % 2) as f64).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn t_table_monotone_towards_normal() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert!(t_quantile_975(30) > t_quantile_975(1000));
        assert_eq!(t_quantile_975(1000), 1.96);
        assert!(t_quantile_975(0).is_infinite());
    }

    #[test]
    fn percentile_nearest_rank_and_degenerate_inputs() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 30.0), 20.0);
        assert_eq!(percentile(&xs, 50.0), 35.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&xs, 0.0), 15.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert!(!percentile(&xs, -3.0).is_nan());
        assert!(!percentile(&xs, 250.0).is_nan());
    }

    #[test]
    fn display_formats() {
        let acc: Accumulator = [1.0, 2.0, 3.0].into_iter().collect();
        let s = acc.display(2);
        assert!(s.starts_with("2.00 ± "), "{s}");
    }

    #[test]
    fn percentile_nan_sorts_last() {
        // With total_cmp, a NaN cannot displace real samples: the
        // median of {1, 2, NaN} is 2 no matter where the NaN sits.
        for xs in [[f64::NAN, 1.0, 2.0], [1.0, f64::NAN, 2.0], [1.0, 2.0, f64::NAN]] {
            assert_eq!(percentile(&xs, 50.0), 2.0, "{xs:?}");
        }
        // Only the top rank ever sees the NaN.
        assert!(percentile(&[1.0, f64::NAN], 100.0).is_nan());
        assert!(!percentile(&[1.0, f64::NAN], 50.0).is_nan());
    }

    proptest::proptest! {
        /// Percentile is a function of the sample multiset: any
        /// permutation of the input — including inputs containing NaN —
        /// yields a bit-identical result at every rank.
        #[test]
        fn percentile_is_permutation_invariant(
            raw in proptest::collection::vec((0u8..12, 0u32..1000), 1..24),
            rot in 0usize..24,
            p in 0u32..101,
        ) {
            let xs: Vec<f64> = raw
                .iter()
                .map(|&(tag, v)| match tag {
                    0 => f64::NAN,
                    1 => -f64::NAN,
                    2 => f64::INFINITY,
                    3 => f64::NEG_INFINITY,
                    4 => -0.0,
                    _ => (f64::from(v) - 500.0) / 8.0,
                })
                .collect();
            // Two deterministic permutations: a rotation and a reversal.
            let mut rotated = xs.clone();
            rotated.rotate_left(rot % xs.len());
            let mut reversed = xs.clone();
            reversed.reverse();
            let p = f64::from(p);
            let base = percentile(&xs, p);
            for other in [percentile(&rotated, p), percentile(&reversed, p)] {
                proptest::prop_assert_eq!(base.to_bits(), other.to_bits());
            }
        }
    }
}
