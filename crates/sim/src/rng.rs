//! Deterministic random-number generation.
//!
//! Every stochastic component of the simulator (mobility, traffic, MAC
//! backoff, protocol jitter) draws from its own [`SimRng`] stream derived
//! from the trial seed and a stream label. Runs are therefore bit-for-bit
//! reproducible across machines and independent of external crate version
//! churn — the generator (xoshiro256**, seeded through splitmix64) is
//! implemented here.
//!
//! # Determinism contract
//!
//! All randomness in a simulation run MUST come from a [`SimRng`]
//! (directly, via [`SimRng::stream`], or via [`SimRng::split`]); OS
//! entropy (`std::time`, `SystemTime`, `/dev/urandom`, hash-map
//! iteration order) is forbidden in simulator paths and enforced by
//! `cargo xtask check`. Given the same seed, the same build produces the
//! same event sequence, metrics and traces on every machine, which is
//! what makes counterexample replay (`crates/modelcheck`) and the
//! forensic audit dumps meaningful.

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for discrete-event simulation.
///
/// ```
/// use manet_sim::rng::SimRng;
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// Advances a splitmix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Creates a generator for a named sub-stream of `seed`.
    ///
    /// Streams with different labels are statistically independent, so a
    /// change in how one component consumes randomness never perturbs
    /// another component's draws.
    pub fn stream(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(seed ^ h)
    }

    /// Derives a child generator, consuming state from `self`.
    pub fn split(&mut self) -> SimRng {
        let seed = self.next_u64();
        Self::from_seed(seed)
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Exponentially distributed float with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0);
        // Inverse CDF; 1 - f64() is in (0, 1] so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_label_order() {
        let mut m1 = SimRng::stream(99, "mobility");
        let mut t1 = SimRng::stream(99, "traffic");
        assert_ne!(m1.next_u64(), t1.next_u64());
        // Re-derive: identical.
        let mut m2 = SimRng::stream(99, "mobility");
        let mut m3 = SimRng::stream(99, "mobility");
        assert_eq!(m2.next_u64(), m3.next_u64());
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut r = SimRng::from_seed(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SimRng::from_seed(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_u64(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_u64(9, 9), 9);
    }

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut r = SimRng::from_seed(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::from_seed(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "exponential mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::from_seed(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn split_children_differ() {
        let mut parent = SimRng::from_seed(11);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        SimRng::from_seed(0).below(0);
    }

    #[test]
    #[should_panic]
    fn choose_empty_panics() {
        let empty: [u8; 0] = [];
        SimRng::from_seed(0).choose(&empty);
    }
}
