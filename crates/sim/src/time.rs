//! Simulated time.
//!
//! The simulator clock is a monotonically non-decreasing count of
//! nanoseconds since the start of the run. Nanosecond resolution keeps
//! MAC-layer slot arithmetic (20 µs slots, 10 µs SIFS) exact while a
//! `u64` still covers ~584 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since run start.
///
/// `SimTime` is ordered, hashable and cheap to copy. Subtracting two
/// instants yields a [`SimDuration`]; adding a duration yields a later
/// instant.
///
/// ```
/// use manet_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use manet_sim::time::SimDuration;
/// assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from nanoseconds since run start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from microseconds since run start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs an instant from milliseconds since run start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds since run start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start, as a float (for metrics and display).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier`
    /// is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds.
    ///
    /// Negative and non-finite input is a caller bug (durations are
    /// unsigned), flagged by a debug assertion. Release builds clamp
    /// instead of corrupting the clock: NaN and negatives become
    /// [`SimDuration::ZERO`], `+inf` (and any overflow of the `u64`
    /// nanosecond range) saturates to the maximum span — the semantics
    /// of Rust's saturating float→int cast.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(7);
        assert_eq!(u.as_nanos(), 7_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.015).as_millis(), 15);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }

    // Misuse of `from_secs_f64` trips the debug assertion in debug
    // builds (the profile tests run under)...
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_infinity() {
        let _ = SimDuration::from_secs_f64(f64::INFINITY);
    }

    // ...and clamps deterministically in release builds (exercised by
    // `cargo test --release`): NaN and negatives to zero, +inf to the
    // maximum span.
    #[cfg(not(debug_assertions))]
    #[test]
    fn from_secs_f64_clamps_in_release() {
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).as_nanos(), u64::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000");
        assert_eq!(format!("{:?}", SimDuration::from_millis(15)), "0.015000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }
}
