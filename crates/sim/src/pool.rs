//! Recycling allocation pools for the hot event loop.
//!
//! At paper scale every protocol callback used to allocate (and drop)
//! a fresh `Vec<Action>`, and every fast-path transmission a receiver
//! batch — millions of short-lived heap round-trips per run. The PR 4
//! `Arc<Frame>` steal removed the per-receiver payload clones; this
//! module extends that toward a steady-state zero-allocation loop by
//! keeping cleared buffers on a small free list instead of returning
//! them to the allocator.
//!
//! The pool is **capacity-preserving and content-free**: a recycled
//! `Vec` is always handed out empty (`clear()` on `put`), so reuse is
//! observationally identical to a fresh allocation — the differential
//! tests hold metrics and trace byte-identical with pooling on and
//! off ([`crate::config::SimConfig::recycle_pools`]).
//!
//! Determinism note: the free list is a plain LIFO `Vec` — no hashing,
//! no capacity-dependent iteration — so it cannot perturb event order
//! even in principle.

/// A LIFO free list of reusable `Vec<T>` buffers.
#[derive(Debug)]
pub struct VecPool<T> {
    spares: Vec<Vec<T>>,
    max_spares: usize,
    takes: u64,
    reuses: u64,
}

impl<T> VecPool<T> {
    /// An empty pool retaining at most `max_spares` buffers; beyond
    /// that, returned buffers are dropped (bounds worst-case memory).
    pub fn new(max_spares: usize) -> Self {
        VecPool { spares: Vec::new(), max_spares, takes: 0, reuses: 0 }
    }

    /// Hands out an empty buffer, recycled if one is spare.
    pub fn take(&mut self) -> Vec<T> {
        self.takes += 1;
        match self.spares.pop() {
            Some(buf) => {
                self.reuses += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool. Contents are cleared here, so a
    /// pooled buffer is indistinguishable from a fresh one.
    pub fn put(&mut self, mut buf: Vec<T>) {
        if self.spares.len() < self.max_spares {
            buf.clear();
            self.spares.push(buf);
        }
    }

    /// Buffers currently on the free list.
    pub fn spares(&self) -> usize {
        self.spares.len()
    }

    /// Whether the next [`VecPool::take`] will recycle rather than
    /// allocate (the profiler's pool-hit/miss probe).
    pub fn has_spare(&self) -> bool {
        !self.spares.is_empty()
    }

    /// Total `take` calls.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// `take` calls satisfied by recycling (no allocation).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_lifo_and_capacity_preserving() {
        let mut pool: VecPool<u32> = VecPool::new(4);
        let mut a = pool.take();
        assert_eq!(pool.reuses(), 0, "first take allocates");
        a.reserve(100);
        let cap = a.capacity();
        a.extend([1, 2, 3]);
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffers are handed out empty");
        assert_eq!(b.capacity(), cap, "recycling preserves grown capacity");
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.takes(), 2);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool: VecPool<u8> = VecPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.spares(), 2, "beyond max_spares buffers are dropped");
    }

    #[test]
    fn steady_state_never_allocates() {
        let mut pool: VecPool<u64> = VecPool::new(8);
        // Warm-up: one buffer in flight at a time.
        for round in 0..100u64 {
            let mut buf = pool.take();
            buf.extend(0..10);
            pool.put(buf);
            if round > 0 {
                assert_eq!(pool.takes(), pool.reuses() + 1, "only the first take allocated");
            }
        }
    }
}
