//! Bounds-checked wire readers and writers shared by every codec.
//!
//! Wire bytes come off a simulated radio that the fault layer can
//! corrupt arbitrarily (see [`crate::faults`]), and every control
//! frame decoded by a protocol runs inside the same no-abort replay
//! loop as the kernel itself. Decoders therefore must be *total*:
//! malformed input surfaces as a rejected frame (`None`), never as a
//! panic. These helpers make that property compositional — no bare
//! indexing, no unchecked offset arithmetic, no narrowing casts — and
//! the `cargo xtask check` panic-surface pass keeps the codecs that
//! use them honest.

use crate::packet::NodeId;

/// Reads one byte; `None` past the end.
#[inline]
pub fn get_u8(b: &[u8], at: usize) -> Option<u8> {
    b.get(at).copied()
}

/// Reads a big-endian `u16`; `None` on truncation or offset overflow.
#[inline]
pub fn get_u16(b: &[u8], at: usize) -> Option<u16> {
    let s = b.get(at..at.checked_add(2)?)?;
    s.try_into().ok().map(u16::from_be_bytes)
}

/// Reads a big-endian `u32`; `None` on truncation or offset overflow.
#[inline]
pub fn get_u32(b: &[u8], at: usize) -> Option<u32> {
    let s = b.get(at..at.checked_add(4)?)?;
    s.try_into().ok().map(u32::from_be_bytes)
}

/// Reads a big-endian `u64`; `None` on truncation or offset overflow.
#[inline]
pub fn get_u64(b: &[u8], at: usize) -> Option<u64> {
    let s = b.get(at..at.checked_add(8)?)?;
    s.try_into().ok().map(u64::from_be_bytes)
}

/// Appends a big-endian `u16`.
#[inline]
pub fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u32`.
#[inline]
pub fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u64`.
#[inline]
pub fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_be_bytes());
}

/// Clamps a list length to the one-byte count field every codec here
/// uses. A frame whose count byte disagreed with its payload would be
/// rejected wholesale by the decoder; clamping instead emits a valid
/// frame carrying the first 255 entries — graceful degradation for
/// lists the wire format cannot express (protocol lists are TTL- or
/// neighbourhood-bounded far below 255 in practice).
#[inline]
pub fn clamp_count(n: usize) -> u8 {
    u8::try_from(n).unwrap_or(u8::MAX)
}

/// Appends the first `count` node ids, big-endian. Pass the
/// [`clamp_count`] of the same slice so the count field and the
/// payload stay consistent.
pub fn push_ids(b: &mut Vec<u8>, ids: &[NodeId], count: u8) {
    for n in ids.iter().take(usize::from(count)) {
        b.extend_from_slice(&n.0.to_be_bytes());
    }
}

/// Reads `n` big-endian node ids starting at `at`; `None` on
/// truncation or offset overflow.
pub fn read_ids(b: &[u8], at: usize, n: usize) -> Option<Vec<NodeId>> {
    let s = b.get(at..at.checked_add(n.checked_mul(2)?)?)?;
    s.chunks_exact(2).map(|c| c.try_into().ok().map(u16::from_be_bytes).map(NodeId)).collect()
}

/// Reads a one-byte count followed by that many node ids. Returns the
/// ids and the offset just past them; `None` on malformed input.
pub fn read_node_list(b: &[u8], at: usize) -> Option<(Vec<NodeId>, usize)> {
    let n = usize::from(get_u8(b, at)?);
    let start = at.checked_add(1)?;
    let ids = read_ids(b, start, n)?;
    let end = start.checked_add(n.checked_mul(2)?)?;
    Some((ids, end))
}

/// Appends a one-byte count and the ids it covers.
pub fn push_node_list(b: &mut Vec<u8>, ids: &[NodeId]) {
    let k = clamp_count(ids.len());
    b.push(k);
    push_ids(b, ids, k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_are_total_on_short_input() {
        let b = [1u8, 2, 3];
        assert_eq!(get_u8(&b, 2), Some(3));
        assert_eq!(get_u8(&b, 3), None);
        assert_eq!(get_u16(&b, 1), Some(0x0203));
        assert_eq!(get_u16(&b, 2), None);
        assert_eq!(get_u32(&b, 0), None);
        assert_eq!(get_u64(&b, 0), None);
    }

    #[test]
    fn readers_survive_offset_overflow() {
        let b = [0u8; 4];
        assert_eq!(get_u16(&b, usize::MAX), None);
        assert_eq!(get_u32(&b, usize::MAX - 1), None);
        assert_eq!(get_u64(&b, usize::MAX - 3), None);
        assert_eq!(read_ids(&b, usize::MAX, 1), None);
        assert_eq!(read_node_list(&b, usize::MAX), None);
    }

    #[test]
    fn node_list_round_trips() {
        let ids: Vec<NodeId> = [5u16, 9, 1000].iter().map(|&i| NodeId(i)).collect();
        let mut b = vec![0xAAu8]; // leading junk the list sits after
        push_node_list(&mut b, &ids);
        let (got, end) = read_node_list(&b, 1).expect("well-formed");
        assert_eq!(got, ids);
        assert_eq!(end, b.len());
    }

    #[test]
    fn oversize_list_is_clamped_consistently() {
        let ids: Vec<NodeId> = (0..300u16).map(NodeId).collect();
        let mut b = Vec::new();
        push_node_list(&mut b, &ids);
        assert_eq!(b.len(), 1 + 2 * 255, "count byte and payload agree");
        let (got, end) = read_node_list(&b, 0).expect("clamped list still decodes");
        assert_eq!(got.len(), 255);
        assert_eq!(end, b.len());
        assert_eq!(got, ids[..255]);
    }

    #[test]
    fn read_ids_rejects_truncated_payload() {
        let b = [0u8, 1, 0, 2, 0]; // 2.5 ids
        assert_eq!(read_ids(&b, 0, 2), Some(vec![NodeId(1), NodeId(2)]));
        assert_eq!(read_ids(&b, 0, 3), None);
        let lied = [3u8, 0, 1]; // count says 3, one id present
        assert_eq!(read_node_list(&lied, 0), None);
    }
}
