//! Every-mutation invariant auditing with first-violation forensics.
//!
//! The periodic loop auditor ([`crate::loopcheck`]) samples the
//! successor graphs at fixed intervals; a loop that forms and heals
//! between samples is invisible, and a sample that *does* catch one
//! says nothing about how it formed. This module closes both gaps when
//! enabled via [`crate::config::SimConfig::invariant_audit`]:
//!
//! * after **every** protocol callback (the only points where route
//!   tables mutate) the auditor re-checks two invariants —
//!   1. *fd-monotonicity per sequence number*: a node's feasible
//!      distance for a destination never increases while its stored
//!      sequence number is unchanged (LDR's Procedure 3 guarantee, the
//!      premise of Theorem 4);
//!   2. *successor-graph acyclicity*: no per-destination successor
//!      graph across all nodes contains a cycle;
//! * the **first** violation freezes a [`ForensicReport`]: the breach,
//!   the involved nodes' full route-table dumps, their recent
//!   routing-decision timeline and the tail of the global trace ring.
//!   Under a fixed seed the report is byte-for-byte reproducible.
//!
//! The cost is O(nodes × routes) per protocol event — strictly a
//! debugging/verification mode, which is why it is opt-in.

use crate::loopcheck::{find_loops, LoopViolation};
use crate::packet::NodeId;
use crate::protocol::RouteDump;
use crate::telemetry::FlightEntry;
use crate::time::SimTime;
use crate::trace::TraceEvent;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// How many recent trace events the auditor retains for forensics.
pub const FORENSIC_WINDOW: usize = 128;

/// A broken invariant caught by the every-mutation auditor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantBreach {
    /// A node's feasible distance rose while its stored sequence number
    /// for the destination was unchanged.
    FdRaised {
        /// The offending node.
        node: NodeId,
        /// The destination whose entry regressed.
        dest: NodeId,
        /// The (unchanged) stored sequence number.
        seqno: Option<u64>,
        /// Feasible distance before the mutation.
        old_fd: u32,
        /// Feasible distance after the mutation.
        new_fd: u32,
    },
    /// A per-destination successor graph contains a cycle.
    RoutingLoop(LoopViolation),
}

impl fmt::Display for InvariantBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantBreach::FdRaised { node, dest, seqno, old_fd, new_fd } => write!(
                f,
                "fd-monotonicity broken at {node} towards {dest}: fd rose {old_fd} -> {new_fd} under sn {seqno:?}"
            ),
            InvariantBreach::RoutingLoop(v) => write!(f, "{v}"),
        }
    }
}

/// Everything needed to diagnose the first invariant breach of a run.
///
/// The report is fully determined by `(configuration, seed)`: rerunning
/// the same scenario reproduces it exactly, so its rendered form can be
/// asserted on in tests and diffed across code changes.
#[derive(Clone, Debug, PartialEq)]
pub struct ForensicReport {
    /// Simulated time of the breach.
    pub at: SimTime,
    /// The run's master seed (for replay).
    pub seed: u64,
    /// What broke.
    pub breach: InvariantBreach,
    /// Nodes implicated in the breach (offender + destination, or the
    /// cycle members), ascending.
    pub involved: Vec<NodeId>,
    /// The involved nodes' complete route-table dumps at breach time.
    pub tables: Vec<(NodeId, Vec<RouteDump>)>,
    /// Recent trace events at the involved nodes, oldest first.
    pub timeline: Vec<(SimTime, TraceEvent)>,
    /// The tail of the global trace ring (all nodes), oldest first.
    pub recent: Vec<(SimTime, TraceEvent)>,
    /// Flight-recorder dump at breach time (merged per-node rings with
    /// global sequence numbers), attached by the world when a
    /// [`crate::telemetry::FlightRecorder`] is configured. Empty — and
    /// absent from the rendered report — otherwise.
    pub flight: Vec<FlightEntry>,
}

impl fmt::Display for ForensicReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== invariant breach at t={}s (seed {}) ===", self.at, self.seed)?;
        writeln!(f, "breach: {}", self.breach)?;
        writeln!(f, "involved nodes: {:?}", self.involved)?;
        for (node, dump) in &self.tables {
            writeln!(f, "route table of {node}:")?;
            if dump.is_empty() {
                writeln!(f, "  (empty)")?;
            }
            for r in dump {
                writeln!(
                    f,
                    "  -> {} via {} d={} fd={:?} sn={:?} valid={}",
                    r.dest, r.next, r.dist, r.feasible_dist, r.seqno, r.valid
                )?;
            }
        }
        writeln!(f, "timeline of involved nodes ({} events):", self.timeline.len())?;
        for (t, e) in &self.timeline {
            writeln!(f, "  [{t:?}] {e:?}")?;
        }
        writeln!(f, "last {} trace events overall:", self.recent.len())?;
        for (t, e) in &self.recent {
            writeln!(f, "  [{t:?}] {e:?}")?;
        }
        if !self.flight.is_empty() {
            writeln!(f, "flight recorder ({} events):", self.flight.len())?;
            for e in &self.flight {
                writeln!(f, "  #{} [{:?}] {:?}", e.seq, e.at, e.event)?;
            }
        }
        Ok(())
    }
}

/// The every-mutation invariant auditor.
///
/// Owned by the [`crate::world::World`] when
/// [`crate::config::SimConfig::invariant_audit`] is set. It observes
/// every trace event into a bounded ring and re-checks the invariants
/// after each protocol callback.
#[derive(Debug, Default)]
pub struct InvariantAuditor {
    /// Last seen `(sn, fd)` per `(node, dest)` — the fd-monotonicity
    /// baseline.
    /// Ordered map: `retain` below iterates it, and a breach report must
    /// not depend on process-level hash state.
    baselines: BTreeMap<(NodeId, NodeId), (Option<u64>, u32)>,
    /// Bounded ring of recent trace events (all nodes).
    recent: VecDeque<(SimTime, TraceEvent)>,
    /// Checks performed.
    pub checks: u64,
    /// Breaches found (first one captured in `report`).
    pub breaches: u64,
    report: Option<ForensicReport>,
}

impl InvariantAuditor {
    /// A fresh auditor with no baselines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one trace event into the forensic ring.
    ///
    /// A [`TraceEvent::NodeRestarted`] additionally clears the restarted
    /// node's fd baselines: a restart loses the table legitimately, so a
    /// later re-learned route at a higher distance under an old sequence
    /// number must not be mistaken for an fd-monotonicity breach — only
    /// mutations *within* one incarnation are bound by Procedure 3.
    pub fn observe(&mut self, t: SimTime, event: &TraceEvent) {
        if let TraceEvent::NodeRestarted { node } = event {
            let node = *node;
            self.baselines.retain(|&(n, _), _| n != node);
        }
        if self.recent.len() == FORENSIC_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back((t, event.clone()));
    }

    /// The first-violation forensic report, if a breach occurred.
    pub fn report(&self) -> Option<&ForensicReport> {
        self.report.as_ref()
    }

    /// Attaches a flight-recorder dump to the captured report, if one
    /// exists and has no dump yet (the world calls this at the
    /// first-breach transition).
    pub fn attach_flight(&mut self, flight: Vec<FlightEntry>) {
        if let Some(r) = self.report.as_mut() {
            if r.flight.is_empty() {
                r.flight = flight;
            }
        }
    }

    /// Re-checks both invariants against fresh per-node snapshots.
    /// `dumps[i]`/`successors[i]` belong to node `i`. Returns the
    /// number of new breaches found by this check.
    pub fn check(
        &mut self,
        now: SimTime,
        seed: u64,
        dumps: &[Vec<RouteDump>],
        successors: &[Vec<(NodeId, NodeId)>],
    ) -> u64 {
        self.checks += 1;
        let mut found: Vec<InvariantBreach> = Vec::new();

        // 1. fd non-increasing per (node, dest) while sn is unchanged.
        for (i, dump) in dumps.iter().enumerate() {
            let node = NodeId(i as u16);
            for r in dump {
                let Some(fd) = r.feasible_dist else { continue };
                let key = (node, r.dest);
                if let Some(&(sn_old, fd_old)) = self.baselines.get(&key) {
                    if r.seqno == sn_old && fd > fd_old {
                        found.push(InvariantBreach::FdRaised {
                            node,
                            dest: r.dest,
                            seqno: r.seqno,
                            old_fd: fd_old,
                            new_fd: fd,
                        });
                    }
                }
                // Advance the baseline even past a breach so the same
                // regression is reported once, not at every later check.
                self.baselines.insert(key, (r.seqno, fd));
            }
        }

        // 2. Successor-graph acyclicity across all destinations.
        for v in find_loops(successors) {
            found.push(InvariantBreach::RoutingLoop(v));
        }

        let new = found.len() as u64;
        self.breaches += new;
        if self.report.is_none() {
            if let Some(breach) = found.into_iter().next() {
                self.report = Some(self.capture(now, seed, breach, dumps));
            }
        }
        new
    }

    fn capture(
        &self,
        now: SimTime,
        seed: u64,
        breach: InvariantBreach,
        dumps: &[Vec<RouteDump>],
    ) -> ForensicReport {
        let mut involved: Vec<NodeId> = match &breach {
            InvariantBreach::FdRaised { node, dest, .. } => vec![*node, *dest],
            InvariantBreach::RoutingLoop(v) => {
                let mut ns = v.cycle.clone();
                ns.push(v.destination);
                ns
            }
        };
        involved.sort_unstable();
        involved.dedup();
        let tables = involved
            .iter()
            .filter(|n| (n.index()) < dumps.len())
            .map(|&n| (n, dumps[n.index()].clone()))
            .collect();
        let timeline =
            self.recent.iter().filter(|(_, e)| involved.contains(&e.node())).cloned().collect();
        let recent = self.recent.iter().cloned().collect();
        ForensicReport {
            at: now,
            seed,
            breach,
            involved,
            tables,
            timeline,
            recent,
            flight: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump(dest: u16, fd: u32, sn: u64) -> RouteDump {
        RouteDump {
            dest: NodeId(dest),
            next: NodeId(1),
            dist: fd,
            feasible_dist: Some(fd),
            seqno: Some(sn),
            valid: true,
        }
    }

    #[test]
    fn fd_raise_under_fixed_sn_is_a_breach() {
        let mut a = InvariantAuditor::new();
        assert_eq!(a.check(SimTime::ZERO, 1, &[vec![dump(9, 3, 5)]], &[vec![]]), 0);
        // fd shrinking is fine.
        assert_eq!(a.check(SimTime::ZERO, 1, &[vec![dump(9, 2, 5)]], &[vec![]]), 0);
        // fd rising under the same sn is the breach.
        let n = a.check(SimTime::from_secs(1), 1, &[vec![dump(9, 4, 5)]], &[vec![]]);
        assert_eq!(n, 1);
        let r = a.report().expect("forensics captured");
        assert!(matches!(r.breach, InvariantBreach::FdRaised { old_fd: 2, new_fd: 4, .. }));
        assert_eq!(r.involved, vec![NodeId(0), NodeId(9)]);
        // Reported once: the baseline advanced past the regression.
        assert_eq!(a.check(SimTime::from_secs(2), 1, &[vec![dump(9, 4, 5)]], &[vec![]]), 0);
    }

    #[test]
    fn fd_reset_on_new_seqno_is_allowed() {
        let mut a = InvariantAuditor::new();
        a.check(SimTime::ZERO, 1, &[vec![dump(9, 2, 5)]], &[vec![]]);
        // Newer sn: fd may jump back up.
        assert_eq!(a.check(SimTime::ZERO, 1, &[vec![dump(9, 10, 6)]], &[vec![]]), 0);
        assert!(a.report().is_none());
    }

    #[test]
    fn successor_cycle_is_a_breach_with_cycle_forensics() {
        let mut a = InvariantAuditor::new();
        a.observe(
            SimTime::ZERO,
            &TraceEvent::RreqStart { node: NodeId(0), dest: NodeId(2), rreqid: 1, ttl: 3 },
        );
        let succ = vec![vec![(NodeId(2), NodeId(1))], vec![(NodeId(2), NodeId(0))], vec![]];
        let n = a.check(SimTime::from_secs(3), 42, &[vec![], vec![], vec![]], &succ);
        assert_eq!(n, 1);
        let r = a.report().expect("forensics captured");
        assert!(matches!(r.breach, InvariantBreach::RoutingLoop(_)));
        assert_eq!(r.involved, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(r.seed, 42);
        assert_eq!(r.timeline.len(), 1, "node 0's RreqStart is on the timeline");
        let rendered = r.to_string();
        assert!(rendered.contains("loop towards"));
        assert!(rendered.contains("seed 42"));
    }

    #[test]
    fn forensic_ring_is_bounded() {
        let mut a = InvariantAuditor::new();
        for i in 0..(FORENSIC_WINDOW + 50) {
            a.observe(SimTime::from_nanos(i as u64), &TraceEvent::RxCollision { node: NodeId(0) });
        }
        assert_eq!(a.recent.len(), FORENSIC_WINDOW);
        assert_eq!(a.recent.front().unwrap().0, SimTime::from_nanos(50));
    }

    #[test]
    fn flight_dump_attaches_once_and_renders() {
        let mut a = InvariantAuditor::new();
        // No report yet: attaching is a no-op.
        a.attach_flight(vec![FlightEntry {
            seq: 0,
            at: SimTime::ZERO,
            event: TraceEvent::RxCollision { node: NodeId(0) },
        }]);
        assert!(a.report().is_none());
        // Force a breach, then attach.
        a.check(SimTime::ZERO, 1, &[vec![dump(9, 2, 5)]], &[vec![]]);
        a.check(SimTime::from_secs(1), 1, &[vec![dump(9, 4, 5)]], &[vec![]]);
        let without = a.report().expect("breach captured").to_string();
        assert!(!without.contains("flight recorder"), "empty flight renders nothing");
        a.attach_flight(vec![FlightEntry {
            seq: 7,
            at: SimTime::from_secs(1),
            event: TraceEvent::RxCollision { node: NodeId(3) },
        }]);
        let rendered = a.report().expect("report kept").to_string();
        assert!(rendered.contains("flight recorder (1 events):"), "{rendered}");
        assert!(rendered.contains("#7"), "{rendered}");
        // A second attach must not clobber the first.
        a.attach_flight(vec![]);
        a.attach_flight(vec![FlightEntry {
            seq: 9,
            at: SimTime::from_secs(2),
            event: TraceEvent::RxCollision { node: NodeId(4) },
        }]);
        let kept = a.report().expect("report kept").to_string();
        assert!(kept.contains("#7") && !kept.contains("#9"), "{kept}");
    }
}
