//! Per-node MAC (medium access control) state.
//!
//! A simplified IEEE 802.11 DCF: carrier sense with a non-persistent
//! random backoff (DIFS + uniform slots from a binary-exponential
//! contention window), positive ACKs with a retry limit for unicast
//! frames, and a single jittered unreliable transmission for broadcast
//! frames. The state machine is *driven* by the simulator kernel in
//! [`crate::world`]; this module holds the data structures and the pure
//! transitions (queueing, contention-window evolution, retry budget),
//! which are unit-tested in isolation.

use crate::config::PhyConfig;
use crate::packet::{NodeId, Packet};
use crate::rng::SimRng;
use crate::time::SimTime;
use std::collections::VecDeque;

/// A frame waiting in (or at the head of) the interface queue.
#[derive(Clone, Debug)]
pub struct OutFrame {
    /// Network-layer payload.
    pub packet: Packet,
    /// Link destination; `None` is a broadcast.
    pub dst: Option<NodeId>,
    /// Whether the routing protocol wants a callback if all retries fail.
    pub notify_failure: bool,
    /// Transmission attempts so far.
    pub attempts: u32,
    /// Whether this frame was already counted as a hop-wise transmission.
    pub counted_tx: bool,
}

/// What the MAC is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacState {
    /// Nothing in service.
    Idle,
    /// Counting down DIFS + backoff; a kick is scheduled at `until`.
    Backoff {
        /// When the backoff expires.
        until: SimTime,
    },
    /// Radio busy sending frame `tx_id` until `until`.
    Transmitting {
        /// Transmission id.
        tx_id: u64,
        /// Airtime end.
        until: SimTime,
    },
    /// Unicast sent; waiting for the ACK until `until`.
    AwaitAck {
        /// Transmission id being acknowledged.
        tx_id: u64,
        /// ACK deadline.
        until: SimTime,
    },
}

/// What to do with the head frame after a failed attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetryVerdict {
    /// Back off and try again.
    Retry,
    /// Retries exhausted: drop the frame (and notify the protocol if
    /// `notify_failure`).
    GiveUp,
}

/// Per-node MAC state.
#[derive(Debug)]
pub struct Mac {
    /// Interface queue; head is in service.
    pub queue: VecDeque<OutFrame>,
    /// Current activity.
    pub state: MacState,
    /// Current contention window (backoff drawn uniformly from `0..=cw`).
    pub cw: u32,
    /// Radio occupied by an outgoing ACK until this time.
    pub ack_busy_until: SimTime,
    /// Backoff/jitter randomness.
    pub rng: SimRng,
    /// Frames dropped because the interface queue was full.
    pub ifq_drops: u64,
    /// Unicast frames abandoned after the retry limit.
    pub retry_failures: u64,
}

impl Mac {
    /// Creates an idle MAC with the minimum contention window.
    pub fn new(cw_min: u32, rng: SimRng) -> Self {
        Mac {
            queue: VecDeque::new(),
            state: MacState::Idle,
            cw: cw_min,
            ack_busy_until: SimTime::ZERO,
            rng,
            ifq_drops: 0,
            retry_failures: 0,
        }
    }

    /// Enqueues a frame, honouring the interface-queue capacity.
    /// Returns `false` (and counts the drop) if the queue was full.
    pub fn enqueue(&mut self, frame: OutFrame, cap: usize) -> bool {
        if self.queue.len() >= cap {
            self.ifq_drops += 1;
            return false;
        }
        self.queue.push_back(frame);
        true
    }

    /// Draws a DIFS + backoff interval for the current contention window.
    pub fn draw_backoff(&mut self, phy: &PhyConfig) -> crate::time::SimDuration {
        let slots = self.rng.below(u64::from(self.cw) + 1);
        phy.difs + phy.slot.saturating_mul(slots)
    }

    /// Doubles the contention window (binary exponential backoff).
    pub fn grow_cw(&mut self, phy: &PhyConfig) {
        self.cw = ((self.cw * 2) + 1).min(phy.cw_max);
    }

    /// Resets the contention window after a success or a final failure.
    pub fn reset_cw(&mut self, phy: &PhyConfig) {
        self.cw = phy.cw_min;
    }

    /// Registers a failed unicast attempt on the head frame and decides
    /// whether to retry. With an empty queue (a stale timeout after the
    /// frame already completed) there is nothing to retry: the attempt
    /// is ignored and the verdict is [`RetryVerdict::Retry`], which
    /// leaves the MAC idle without recording a failure.
    pub fn note_attempt_failed(&mut self, phy: &PhyConfig) -> RetryVerdict {
        let Some(head) = self.queue.front_mut() else { return RetryVerdict::Retry };
        head.attempts += 1;
        if head.attempts >= phy.retry_limit {
            self.retry_failures += 1;
            RetryVerdict::GiveUp
        } else {
            RetryVerdict::Retry
        }
    }

    /// Whether the radio itself is free at `now` (not transmitting a
    /// frame or an ACK). Carrier sensing of *other* stations is the
    /// kernel's job, since it requires radio-wide knowledge.
    pub fn radio_free(&self, now: SimTime) -> bool {
        let not_acking = now >= self.ack_busy_until;
        let not_txing = !matches!(self.state, MacState::Transmitting { until, .. } if now < until);
        not_acking && not_txing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ControlKind, ControlPacket, PacketBody};

    fn frame(uid: u64) -> OutFrame {
        OutFrame {
            packet: Packet {
                uid,
                origin: NodeId(0),
                body: PacketBody::Control(ControlPacket {
                    kind: ControlKind::Other,
                    bytes: vec![],
                }),
            },
            dst: Some(NodeId(1)),
            notify_failure: false,
            attempts: 0,
            counted_tx: false,
        }
    }

    fn mac() -> Mac {
        Mac::new(31, SimRng::from_seed(5))
    }

    #[test]
    fn enqueue_respects_capacity() {
        let mut m = mac();
        for i in 0..50 {
            assert!(m.enqueue(frame(i), 50));
        }
        assert!(!m.enqueue(frame(99), 50));
        assert_eq!(m.queue.len(), 50);
        assert_eq!(m.ifq_drops, 1);
    }

    #[test]
    fn backoff_within_window() {
        let phy = PhyConfig::default();
        let mut m = mac();
        for _ in 0..200 {
            let b = m.draw_backoff(&phy);
            assert!(b >= phy.difs);
            assert!(b <= phy.difs + phy.slot.saturating_mul(u64::from(m.cw)));
        }
    }

    #[test]
    fn cw_grows_and_saturates_then_resets() {
        let phy = PhyConfig::default();
        let mut m = mac();
        assert_eq!(m.cw, 31);
        m.grow_cw(&phy);
        assert_eq!(m.cw, 63);
        for _ in 0..10 {
            m.grow_cw(&phy);
        }
        assert_eq!(m.cw, phy.cw_max);
        m.reset_cw(&phy);
        assert_eq!(m.cw, phy.cw_min);
    }

    #[test]
    fn retry_budget_gives_up_at_limit() {
        let phy = PhyConfig::default();
        let mut m = mac();
        m.enqueue(frame(1), 50);
        for _ in 0..(phy.retry_limit - 1) {
            assert_eq!(m.note_attempt_failed(&phy), RetryVerdict::Retry);
        }
        assert_eq!(m.note_attempt_failed(&phy), RetryVerdict::GiveUp);
        assert_eq!(m.retry_failures, 1);
    }

    #[test]
    fn radio_free_accounts_for_ack_and_tx() {
        let mut m = mac();
        let t0 = SimTime::from_micros(100);
        assert!(m.radio_free(t0));
        m.ack_busy_until = SimTime::from_micros(200);
        assert!(!m.radio_free(t0));
        assert!(m.radio_free(SimTime::from_micros(200)));
        m.ack_busy_until = SimTime::ZERO;
        m.state = MacState::Transmitting { tx_id: 1, until: SimTime::from_micros(150) };
        assert!(!m.radio_free(t0));
        assert!(m.radio_free(SimTime::from_micros(150)));
    }
}
