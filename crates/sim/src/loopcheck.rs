//! Online routing-loop auditor.
//!
//! LDR's central claim (Theorem 4) is instantaneous loop-freedom: at no
//! instant may the per-destination successor graph implied by the
//! routing tables contain a cycle. The auditor snapshots every node's
//! `(destination, next hop)` pairs and follows successor chains; a
//! revisited node is a violation. The simulator can run it periodically
//! or after every protocol event.

use crate::packet::NodeId;
use std::collections::{BTreeMap, HashMap};

/// A routing loop found by the auditor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopViolation {
    /// Destination whose successor graph is cyclic.
    pub destination: NodeId,
    /// The cycle, as the sequence of nodes revisiting the first entry.
    pub cycle: Vec<NodeId>,
}

impl std::fmt::Display for LoopViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loop towards {}: ", self.destination)?;
        for (i, n) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

/// Checks the per-destination successor graphs for cycles.
///
/// `tables[i]` is node `i`'s list of `(destination, next_hop)` pairs for
/// its currently usable routes. Returns every distinct cycle found
/// (one per destination at most, reported from the smallest entry node).
pub fn find_loops(tables: &[Vec<(NodeId, NodeId)>]) -> Vec<LoopViolation> {
    // successor[dest] : node -> next hop. Ordered maps so the
    // destination sweep and start order are hash-state independent.
    let mut successor: BTreeMap<NodeId, BTreeMap<NodeId, NodeId>> = BTreeMap::new();
    for (i, entries) in tables.iter().enumerate() {
        let me = NodeId(i as u16);
        for &(dest, next) in entries {
            successor.entry(dest).or_default().insert(me, next);
        }
    }
    let mut violations = Vec::new();
    for (&dest, succ) in &successor {
        // Colour nodes: 0 unvisited, 1 on current path, 2 done.
        let mut colour: HashMap<NodeId, u8> = HashMap::new();
        let starts: Vec<NodeId> = succ.keys().copied().collect();
        'outer: for &start in &starts {
            if colour.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            loop {
                match colour.get(&cur).copied().unwrap_or(0) {
                    1 => {
                        // Found a cycle: trim the path to its start.
                        // Colour 1 is only ever given to nodes pushed
                        // onto `path`, so the search always succeeds;
                        // falling back to 0 keeps this panic-free.
                        let pos = path.iter().position(|&n| n == cur).unwrap_or(0);
                        let mut cycle: Vec<NodeId> = path[pos..].to_vec();
                        cycle.push(cur);
                        violations.push(LoopViolation { destination: dest, cycle });
                        for &n in &path {
                            colour.insert(n, 2);
                        }
                        continue 'outer;
                    }
                    2 => break,
                    _ => {}
                }
                colour.insert(cur, 1);
                path.push(cur);
                if cur == dest {
                    break;
                }
                match succ.get(&cur) {
                    Some(&next) => cur = next,
                    None => break,
                }
            }
            for &n in &path {
                colour.insert(n, 2);
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_tables_have_no_loops() {
        assert!(find_loops(&[vec![], vec![], vec![]]).is_empty());
    }

    #[test]
    fn straight_chain_is_loop_free() {
        // 0 -> 1 -> 2 -> 3 (dest 3)
        let tables = vec![vec![(n(3), n(1))], vec![(n(3), n(2))], vec![(n(3), n(3))], vec![]];
        assert!(find_loops(&tables).is_empty());
    }

    #[test]
    fn two_cycle_detected() {
        // 0 -> 1 -> 0 for dest 2.
        let tables = vec![vec![(n(2), n(1))], vec![(n(2), n(0))], vec![]];
        let v = find_loops(&tables);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].destination, n(2));
        assert_eq!(v[0].cycle.first(), v[0].cycle.last());
        assert!(v[0].cycle.len() == 3); // a, b, a
    }

    #[test]
    fn three_cycle_detected_with_tail() {
        // 3 -> 0 -> 1 -> 2 -> 0 for dest 9.
        let tables =
            vec![vec![(n(9), n(1))], vec![(n(9), n(2))], vec![(n(9), n(0))], vec![(n(9), n(0))]];
        let v = find_loops(&tables);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cycle.len(), 4);
    }

    #[test]
    fn loops_for_different_destinations_both_reported() {
        let tables = vec![vec![(n(5), n(1)), (n(6), n(1))], vec![(n(5), n(0)), (n(6), n(0))]];
        let v = find_loops(&tables);
        assert_eq!(v.len(), 2);
        let dests: Vec<NodeId> = v.iter().map(|x| x.destination).collect();
        assert_eq!(dests, vec![n(5), n(6)]);
    }

    #[test]
    fn self_successor_to_destination_is_fine() {
        // Node 0's next hop *is* the destination: no loop.
        let tables = vec![vec![(n(1), n(1))], vec![]];
        assert!(find_loops(&tables).is_empty());
    }

    #[test]
    fn diamond_converging_paths_are_loop_free() {
        // 0 -> {1}, 1 -> 3, 2 -> 1, all towards 3.
        let tables = vec![vec![(n(3), n(1))], vec![(n(3), n(3))], vec![(n(3), n(1))], vec![]];
        assert!(find_loops(&tables).is_empty());
    }

    #[test]
    fn display_is_readable() {
        let v = LoopViolation { destination: n(7), cycle: vec![n(1), n(2), n(1)] };
        assert_eq!(format!("{v}"), "loop towards n7: n1 -> n2 -> n1");
    }
}
